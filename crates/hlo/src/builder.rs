//! Append-only graph builder.

use std::collections::{HashMap, HashSet};

use crate::{
    BinaryKind, DType, DotDims, InstrId, Instruction, Module, ModuleAnalysis, Op, PadDim,
    ReplicaGroups, Shape, UnaryKind, WireFormat,
};

/// Builds a [`Module`] one instruction at a time.
///
/// Every method appends an instruction whose operands were built earlier,
/// so the arena order is topological by construction. Shapes are inferred
/// eagerly; misuse panics with a descriptive message (the resulting module
/// is additionally re-checked by [`Module::verify`]).
///
/// Compiler passes construct transformed modules with a fresh builder,
/// copying unaffected instructions via [`Builder::copy_of`].
///
/// # Example
///
/// ```
/// use overlap_hlo::{Builder, DType, DotDims, Shape};
/// let mut b = Builder::new("axpy", 1);
/// let x = b.parameter(Shape::new(DType::F32, vec![16]), "x");
/// let y = b.parameter(Shape::new(DType::F32, vec![16]), "y");
/// let s = b.add(x, y, "sum");
/// let m = b.build(vec![s]);
/// assert_eq!(m.len(), 3);
/// ```
#[derive(Debug)]
pub struct Builder {
    module: Module,
    names: HashSet<String>,
    /// Next suffix to probe per collided base name (names are never
    /// removed, so a suffix found occupied stays occupied and probing
    /// never needs to restart from 1).
    suffix_hint: HashMap<String, usize>,
    tag: Option<String>,
    next_param: usize,
    /// Users table maintained append-by-append, handed out through
    /// [`Builder::build_with_analysis`].
    users: Vec<Vec<InstrId>>,
    /// Epoch-stamped scratch for duplicate-destination checking in the
    /// permute appends; avoids an alloc+sort per appended permute.
    perm_seen: Vec<u64>,
    perm_epoch: u64,
    /// Append-time value numbering (see
    /// [`Builder::enable_value_numbering`]): key of every appended pure
    /// instruction, mapping structural duplicates to their first
    /// occurrence.
    value_numbering: Option<HashMap<Vec<u64>, InstrId>>,
}

impl Builder {
    /// Creates a builder for a module named `name` compiled for
    /// `num_partitions` SPMD partitions.
    ///
    /// # Panics
    ///
    /// Panics if `num_partitions == 0`.
    #[must_use]
    pub fn new(name: impl Into<String>, num_partitions: usize) -> Self {
        assert!(num_partitions > 0, "a module needs at least one partition");
        Builder {
            module: Module {
                name: name.into(),
                instrs: Vec::new(),
                outputs: Vec::new(),
                num_partitions,
                fusion_groups: Vec::new(),
            },
            names: HashSet::new(),
            suffix_hint: HashMap::new(),
            tag: None,
            next_param: 0,
            users: Vec::new(),
            perm_seen: Vec::new(),
            perm_epoch: 0,
            value_numbering: None,
        }
    }

    /// Merges structurally identical pure instructions at append time,
    /// exactly as a post-hoc [`crate::eliminate_common_subexpressions`]
    /// pass would: a pure append whose `(op, shape, operands)` was seen
    /// before returns the earlier id instead of growing the module. Name
    /// suffixes are still consumed for merged appends, so the built
    /// module is bit-identical — names included — to building without
    /// value numbering and running the CSE pass afterwards.
    pub fn enable_value_numbering(&mut self) {
        if self.value_numbering.is_none() {
            self.value_numbering = Some(HashMap::new());
        }
    }

    /// Number of SPMD partitions the module is compiled for.
    #[must_use]
    pub fn num_partitions(&self) -> usize {
        self.module.num_partitions
    }

    /// Number of instructions appended so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.module.instrs.len()
    }

    /// Whether no instructions have been appended.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.module.instrs.is_empty()
    }

    /// The shape of an already-appended instruction.
    #[must_use]
    pub fn shape_of(&self, id: InstrId) -> &Shape {
        self.module.instrs[id.index()].shape()
    }

    /// Sets the tag attached to subsequently appended instructions
    /// (`None` clears it). Passes use tags to mark emitted regions.
    pub fn set_tag(&mut self, tag: Option<&str>) {
        self.tag = tag.map(str::to_owned);
    }

    fn unique_name(&mut self, base: &str) -> String {
        if self.names.insert(base.to_string()) {
            return base.to_string();
        }
        let mut i = self.suffix_hint.get(base).copied().unwrap_or(1);
        loop {
            let candidate = format!("{base}.{i}");
            if self.names.insert(candidate.clone()) {
                self.suffix_hint.insert(base.to_string(), i + 1);
                return candidate;
            }
            i += 1;
        }
    }

    fn append(&mut self, op: Op, operands: Vec<InstrId>, shape: Shape, name: &str) -> InstrId {
        for &o in &operands {
            assert!(
                o.index() < self.module.instrs.len(),
                "operand {o} not yet built (use-after-def violation)"
            );
        }
        let mut vn_key = None;
        if self.value_numbering.is_some() {
            let mut key: Vec<u64> = Vec::with_capacity(8 + operands.len());
            if crate::transform::value_key_into(&op, &shape, &mut key) {
                key.extend(operands.iter().map(|o| o.index() as u64));
                let table = self.value_numbering.as_mut().expect("checked above");
                if let Some(&existing) = table.get(&key) {
                    // Consume the name this instruction would have taken so
                    // suffix numbering matches the build-then-CSE pipeline.
                    let _ = self.unique_name(name);
                    return existing;
                }
                vn_key = Some(key);
            }
        }
        let name = self.unique_name(name);
        let id = InstrId(self.module.instrs.len() as u32);
        // Maintain the users table as we go: same content and ordering as
        // a post-hoc `Module::users()` pass, since appends are in arena
        // order and operands are visited left to right.
        self.users.push(Vec::new());
        for &o in &operands {
            self.users[o.index()].push(id);
        }
        self.module.instrs.push(Instruction {
            name,
            shape,
            op,
            operands,
            tag: self.tag.clone(),
        });
        if let Some(key) = vn_key {
            self.value_numbering.as_mut().expect("key only built when enabled").insert(key, id);
        }
        id
    }

    /// Appends an entry parameter with the next parameter index.
    pub fn parameter(&mut self, shape: Shape, name: &str) -> InstrId {
        let index = self.next_param;
        self.next_param += 1;
        self.append(Op::Parameter { index }, vec![], shape, name)
    }

    /// Appends a constant splatted to `shape`.
    pub fn constant(&mut self, shape: Shape, value: f64, name: &str) -> InstrId {
        self.append(Op::Constant { value }, vec![], shape, name)
    }

    /// Appends a dense tensor constant with explicit row-major values.
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != shape.num_elements()`.
    pub fn constant_tensor(&mut self, shape: Shape, values: Vec<f64>, name: &str) -> InstrId {
        assert_eq!(
            values.len(),
            shape.num_elements(),
            "constant-tensor values do not match {shape}"
        );
        self.append(Op::ConstantTensor { values }, vec![], shape, name)
    }

    /// Appends a scalar `s32` constant.
    pub fn scalar_s32(&mut self, value: i64, name: &str) -> InstrId {
        self.constant(Shape::scalar(DType::S32), value as f64, name)
    }

    /// Appends an all-zeros tensor of the given shape.
    pub fn zeros(&mut self, shape: Shape, name: &str) -> InstrId {
        self.constant(shape, 0.0, name)
    }

    /// Appends an `Iota` of the given shape counting along `dim`.
    ///
    /// # Panics
    ///
    /// Panics if `dim` is out of range for `shape`.
    pub fn iota(&mut self, shape: Shape, dim: usize, name: &str) -> InstrId {
        assert!(dim < shape.rank(), "iota dim {dim} out of range for {shape}");
        self.append(Op::Iota { dim }, vec![], shape, name)
    }

    /// Appends a broadcast of `x` into `out_shape`: operand dimension `i`
    /// maps to output dimension `operand_dims[i]`.
    ///
    /// # Panics
    ///
    /// Panics if the mapping is not strictly increasing, out of range, or
    /// maps dimensions of unequal size.
    pub fn broadcast(
        &mut self,
        x: InstrId,
        out_shape: Shape,
        operand_dims: Vec<usize>,
        name: &str,
    ) -> InstrId {
        let xs = self.shape_of(x).clone();
        assert_eq!(operand_dims.len(), xs.rank(), "broadcast mapping arity");
        for (i, &d) in operand_dims.iter().enumerate() {
            assert!(d < out_shape.rank(), "broadcast target dim {d} out of range");
            assert!(i == 0 || operand_dims[i - 1] < d, "broadcast dims must increase");
            assert_eq!(xs.dim(i), out_shape.dim(d), "broadcast size mismatch at dim {i}");
        }
        assert_eq!(xs.dtype(), out_shape.dtype(), "broadcast dtype mismatch");
        self.append(Op::Broadcast { operand_dims }, vec![x], out_shape, name)
    }

    /// Appends a reshape of `x` to `dims` (element count must match).
    ///
    /// # Panics
    ///
    /// Panics if the element counts differ.
    pub fn reshape(&mut self, x: InstrId, dims: Vec<usize>, name: &str) -> InstrId {
        let xs = self.shape_of(x);
        let out = Shape::new(xs.dtype(), dims);
        assert_eq!(
            xs.num_elements(),
            out.num_elements(),
            "reshape element count mismatch: {xs} -> {out}"
        );
        self.append(Op::Reshape, vec![x], out, name)
    }

    /// Appends a transpose of `x`: output dim `i` is operand dim `perm[i]`.
    ///
    /// # Panics
    ///
    /// Panics if `perm` is not a permutation of `0..rank`.
    pub fn transpose(&mut self, x: InstrId, perm: Vec<usize>, name: &str) -> InstrId {
        let xs = self.shape_of(x).clone();
        let mut sorted = perm.clone();
        sorted.sort_unstable();
        assert_eq!(
            sorted,
            (0..xs.rank()).collect::<Vec<_>>(),
            "transpose perm must be a permutation of 0..{}",
            xs.rank()
        );
        let dims = perm.iter().map(|&p| xs.dim(p)).collect();
        self.append(Op::Transpose { perm }, vec![x], Shape::new(xs.dtype(), dims), name)
    }

    /// Appends a static slice `[starts, limits)` of `x`.
    ///
    /// # Panics
    ///
    /// Panics if the bounds are malformed.
    pub fn slice(
        &mut self,
        x: InstrId,
        starts: Vec<usize>,
        limits: Vec<usize>,
        name: &str,
    ) -> InstrId {
        let xs = self.shape_of(x).clone();
        assert_eq!(starts.len(), xs.rank(), "slice starts arity");
        assert_eq!(limits.len(), xs.rank(), "slice limits arity");
        let mut dims = Vec::with_capacity(xs.rank());
        for d in 0..xs.rank() {
            assert!(
                starts[d] <= limits[d] && limits[d] <= xs.dim(d),
                "slice bounds [{}, {}) invalid for dim {d} of {xs}",
                starts[d],
                limits[d]
            );
            dims.push(limits[d] - starts[d]);
        }
        self.append(Op::Slice { starts, limits }, vec![x], Shape::new(xs.dtype(), dims), name)
    }

    /// Appends a dynamic slice of `x` with runtime start `indices` (scalar
    /// integer instructions, one per dimension) and extents `sizes`.
    ///
    /// # Panics
    ///
    /// Panics on arity mismatch, non-integer indices, or oversized extents.
    pub fn dynamic_slice(
        &mut self,
        x: InstrId,
        indices: &[InstrId],
        sizes: Vec<usize>,
        name: &str,
    ) -> InstrId {
        let xs = self.shape_of(x).clone();
        assert_eq!(indices.len(), xs.rank(), "dynamic-slice index arity");
        assert_eq!(sizes.len(), xs.rank(), "dynamic-slice sizes arity");
        for (d, &size) in sizes.iter().enumerate() {
            assert!(size <= xs.dim(d), "dynamic-slice size {size} > dim {d} of {xs}");
        }
        for &i in indices {
            let s = self.shape_of(i);
            assert!(
                s.is_scalar() && s.dtype().is_integer(),
                "dynamic-slice index {i} must be an integer scalar, got {s}"
            );
        }
        let mut operands = vec![x];
        operands.extend_from_slice(indices);
        let out = Shape::new(xs.dtype(), sizes.clone());
        self.append(Op::DynamicSlice { sizes }, operands, out, name)
    }

    /// Appends a dynamic update of `update` into `x` at runtime `indices`.
    ///
    /// # Panics
    ///
    /// Panics on arity, dtype, or extent violations.
    pub fn dynamic_update_slice(
        &mut self,
        x: InstrId,
        update: InstrId,
        indices: &[InstrId],
        name: &str,
    ) -> InstrId {
        let xs = self.shape_of(x).clone();
        let us = self.shape_of(update).clone();
        assert_eq!(indices.len(), xs.rank(), "dynamic-update-slice index arity");
        assert_eq!(us.rank(), xs.rank(), "update rank must match data rank");
        assert_eq!(us.dtype(), xs.dtype(), "update dtype must match data dtype");
        for d in 0..xs.rank() {
            assert!(us.dim(d) <= xs.dim(d), "update dim {d} exceeds data");
        }
        for &i in indices {
            let s = self.shape_of(i);
            assert!(
                s.is_scalar() && s.dtype().is_integer(),
                "dynamic-update-slice index {i} must be an integer scalar, got {s}"
            );
        }
        let mut operands = vec![x, update];
        operands.extend_from_slice(indices);
        self.append(Op::DynamicUpdateSlice, operands, xs, name)
    }

    /// Appends a concatenation of `xs` along `dim`.
    ///
    /// # Panics
    ///
    /// Panics if operands disagree off-`dim` or `xs` is empty.
    pub fn concatenate(&mut self, xs: &[InstrId], dim: usize, name: &str) -> InstrId {
        assert!(!xs.is_empty(), "concatenate needs at least one operand");
        let first = self.shape_of(xs[0]).clone();
        assert!(dim < first.rank(), "concatenate dim {dim} out of range");
        let mut total = 0usize;
        for &x in xs {
            let s = self.shape_of(x);
            assert_eq!(s.rank(), first.rank(), "concatenate rank mismatch");
            assert_eq!(s.dtype(), first.dtype(), "concatenate dtype mismatch");
            for d in 0..first.rank() {
                if d != dim {
                    assert_eq!(s.dim(d), first.dim(d), "concatenate off-dim size mismatch");
                }
            }
            total += s.dim(dim);
        }
        let out = first.with_dim(dim, total);
        self.append(Op::Concatenate { dim }, xs.to_vec(), out, name)
    }

    /// Appends a pad of `x` with scalar `value` per `config`.
    ///
    /// # Panics
    ///
    /// Panics if `value` is not a scalar of the same dtype or `config` has
    /// the wrong arity.
    pub fn pad(&mut self, x: InstrId, value: InstrId, config: Vec<PadDim>, name: &str) -> InstrId {
        let xs = self.shape_of(x).clone();
        let vs = self.shape_of(value);
        assert!(vs.is_scalar() && vs.dtype() == xs.dtype(), "pad value must be scalar of same dtype");
        assert_eq!(config.len(), xs.rank(), "pad config arity");
        let dims = xs
            .dims()
            .iter()
            .zip(&config)
            .map(|(&d, p)| d + p.low + p.high)
            .collect();
        self.append(Op::Pad { config }, vec![x, value], Shape::new(xs.dtype(), dims), name)
    }

    /// Appends an elementwise binary op of the given kind (generic form
    /// of [`Builder::add`] and friends, for pass code that dispatches on
    /// [`BinaryKind`]).
    ///
    /// # Panics
    ///
    /// Panics if the operand shapes differ.
    pub fn binary_op(&mut self, kind: BinaryKind, a: InstrId, b: InstrId, name: &str) -> InstrId {
        self.binary(kind, a, b, name)
    }

    /// Appends an elementwise unary op of the given kind.
    pub fn unary_op(&mut self, kind: UnaryKind, x: InstrId, name: &str) -> InstrId {
        let s = self.shape_of(x).clone();
        self.append(Op::Unary(kind), vec![x], s, name)
    }

    fn binary(&mut self, kind: BinaryKind, a: InstrId, b: InstrId, name: &str) -> InstrId {
        let sa = self.shape_of(a).clone();
        let sb = self.shape_of(b);
        assert_eq!(&sa, sb, "binary {} operand shapes differ: {sa} vs {sb}", kind.name());
        self.append(Op::Binary(kind), vec![a, b], sa, name)
    }

    /// Appends an elementwise addition.
    pub fn add(&mut self, a: InstrId, b: InstrId, name: &str) -> InstrId {
        self.binary(BinaryKind::Add, a, b, name)
    }

    /// Appends an elementwise subtraction.
    pub fn sub(&mut self, a: InstrId, b: InstrId, name: &str) -> InstrId {
        self.binary(BinaryKind::Sub, a, b, name)
    }

    /// Appends an elementwise multiplication.
    pub fn mul(&mut self, a: InstrId, b: InstrId, name: &str) -> InstrId {
        self.binary(BinaryKind::Mul, a, b, name)
    }

    /// Appends an elementwise division.
    pub fn div(&mut self, a: InstrId, b: InstrId, name: &str) -> InstrId {
        self.binary(BinaryKind::Div, a, b, name)
    }

    /// Appends an elementwise maximum.
    pub fn max(&mut self, a: InstrId, b: InstrId, name: &str) -> InstrId {
        self.binary(BinaryKind::Max, a, b, name)
    }

    /// Appends an elementwise minimum.
    pub fn min(&mut self, a: InstrId, b: InstrId, name: &str) -> InstrId {
        self.binary(BinaryKind::Min, a, b, name)
    }

    /// Appends an elementwise remainder (index arithmetic).
    pub fn rem(&mut self, a: InstrId, b: InstrId, name: &str) -> InstrId {
        self.binary(BinaryKind::Rem, a, b, name)
    }

    /// Appends an elementwise negation.
    pub fn neg(&mut self, x: InstrId, name: &str) -> InstrId {
        let s = self.shape_of(x).clone();
        self.append(Op::Unary(UnaryKind::Neg), vec![x], s, name)
    }

    /// Appends an elementwise ReLU.
    pub fn relu(&mut self, x: InstrId, name: &str) -> InstrId {
        let s = self.shape_of(x).clone();
        self.append(Op::Unary(UnaryKind::Relu), vec![x], s, name)
    }

    /// Appends an elementwise Heaviside step (`1.0` where positive).
    pub fn step(&mut self, x: InstrId, name: &str) -> InstrId {
        let s = self.shape_of(x).clone();
        self.append(Op::Unary(UnaryKind::Step), vec![x], s, name)
    }

    /// Appends an identity copy.
    pub fn copy(&mut self, x: InstrId, name: &str) -> InstrId {
        let s = self.shape_of(x).clone();
        self.append(Op::Copy, vec![x], s, name)
    }

    /// Appends an einsum of `lhs` and `rhs` with the given dimension
    /// numbers.
    ///
    /// # Panics
    ///
    /// Panics if the dimension numbers are inconsistent with the operand
    /// shapes.
    pub fn einsum(&mut self, lhs: InstrId, rhs: InstrId, dims: DotDims, name: &str) -> InstrId {
        let ls = self.shape_of(lhs).clone();
        let rs = self.shape_of(rhs).clone();
        let out = dims
            .output_shape(&ls, &rs)
            .unwrap_or_else(|e| panic!("einsum {name}: {e} (lhs {ls}, rhs {rs})"));
        self.append(Op::Einsum(dims), vec![lhs, rhs], out, name)
    }

    /// Appends an `AllGather` of `x` along `dim` over `groups`.
    ///
    /// # Panics
    ///
    /// Panics if `dim` is out of range or the groups don't cover the
    /// module's partitions.
    pub fn all_gather(
        &mut self,
        x: InstrId,
        dim: usize,
        groups: ReplicaGroups,
        name: &str,
    ) -> InstrId {
        self.all_gather_wire(x, dim, groups, WireFormat::Lossless, name)
    }

    /// [`Builder::all_gather`] with an explicit wire encoding.
    ///
    /// # Panics
    ///
    /// Additionally panics if the wire format's parameters are invalid.
    pub fn all_gather_wire(
        &mut self,
        x: InstrId,
        dim: usize,
        groups: ReplicaGroups,
        wire: WireFormat,
        name: &str,
    ) -> InstrId {
        let xs = self.shape_of(x).clone();
        assert!(dim < xs.rank(), "all-gather dim {dim} out of range for {xs}");
        groups
            .validate(self.module.num_partitions)
            .unwrap_or_else(|e| panic!("all-gather {name}: {e}"));
        wire.validate().unwrap_or_else(|e| panic!("all-gather {name}: {e}"));
        let out = xs.with_dim_scaled(dim, groups.group_size());
        self.append(Op::AllGather { dim, groups, wire }, vec![x], out, name)
    }

    /// Appends a `ReduceScatter` of `x` along `dim` over `groups`.
    ///
    /// # Panics
    ///
    /// Panics if `dim` is out of range, the scattered dimension is not
    /// divisible by the group size, or the groups are invalid.
    pub fn reduce_scatter(
        &mut self,
        x: InstrId,
        dim: usize,
        groups: ReplicaGroups,
        name: &str,
    ) -> InstrId {
        self.reduce_scatter_wire(x, dim, groups, WireFormat::Lossless, name)
    }

    /// [`Builder::reduce_scatter`] with an explicit wire encoding.
    ///
    /// # Panics
    ///
    /// Additionally panics if the wire format's parameters are invalid.
    pub fn reduce_scatter_wire(
        &mut self,
        x: InstrId,
        dim: usize,
        groups: ReplicaGroups,
        wire: WireFormat,
        name: &str,
    ) -> InstrId {
        let xs = self.shape_of(x).clone();
        assert!(dim < xs.rank(), "reduce-scatter dim {dim} out of range for {xs}");
        groups
            .validate(self.module.num_partitions)
            .unwrap_or_else(|e| panic!("reduce-scatter {name}: {e}"));
        wire.validate().unwrap_or_else(|e| panic!("reduce-scatter {name}: {e}"));
        let out = xs.with_dim_divided(dim, groups.group_size());
        self.append(Op::ReduceScatter { dim, groups, wire }, vec![x], out, name)
    }

    /// Appends an `AllReduce` of `x` over `groups`.
    ///
    /// # Panics
    ///
    /// Panics if the groups are invalid.
    pub fn all_reduce(&mut self, x: InstrId, groups: ReplicaGroups, name: &str) -> InstrId {
        self.all_reduce_wire(x, groups, WireFormat::Lossless, name)
    }

    /// [`Builder::all_reduce`] with an explicit wire encoding.
    ///
    /// # Panics
    ///
    /// Additionally panics if the wire format's parameters are invalid.
    pub fn all_reduce_wire(
        &mut self,
        x: InstrId,
        groups: ReplicaGroups,
        wire: WireFormat,
        name: &str,
    ) -> InstrId {
        let xs = self.shape_of(x).clone();
        groups
            .validate(self.module.num_partitions)
            .unwrap_or_else(|e| panic!("all-reduce {name}: {e}"));
        wire.validate().unwrap_or_else(|e| panic!("all-reduce {name}: {e}"));
        self.append(Op::AllReduce { groups, wire }, vec![x], xs, name)
    }

    /// Appends an `AllToAll` of `x` over `groups`.
    ///
    /// # Panics
    ///
    /// Panics if the split dimension is not divisible by the group size or
    /// the groups are invalid.
    pub fn all_to_all(
        &mut self,
        x: InstrId,
        split_dim: usize,
        concat_dim: usize,
        groups: ReplicaGroups,
        name: &str,
    ) -> InstrId {
        let xs = self.shape_of(x).clone();
        let g = groups.group_size();
        assert!(split_dim < xs.rank() && concat_dim < xs.rank(), "all-to-all dims out of range");
        assert!(xs.dim(split_dim).is_multiple_of(g), "all-to-all split dim not divisible by group");
        groups
            .validate(self.module.num_partitions)
            .unwrap_or_else(|e| panic!("all-to-all {name}: {e}"));
        let out = xs.with_dim_divided(split_dim, g).with_dim_scaled(concat_dim, g);
        self.append(Op::AllToAll { split_dim, concat_dim, groups }, vec![x], out, name)
    }

    fn check_pairs(&mut self, pairs: &[(u32, u32)], what: &str) {
        let n = self.module.num_partitions as u32;
        if self.perm_seen.len() < n as usize {
            self.perm_seen.resize(n as usize, 0);
        }
        self.perm_epoch += 1;
        for &(s, d) in pairs {
            assert!(s < n && d < n, "{what}: pair ({s},{d}) out of range for {n} partitions");
            let slot = &mut self.perm_seen[d as usize];
            assert_ne!(*slot, self.perm_epoch, "{what}: duplicate destination");
            *slot = self.perm_epoch;
        }
    }

    /// Appends a synchronous `CollectivePermute` of `x`.
    ///
    /// # Panics
    ///
    /// Panics if a destination repeats or an id is out of range.
    pub fn collective_permute(
        &mut self,
        x: InstrId,
        pairs: Vec<(u32, u32)>,
        name: &str,
    ) -> InstrId {
        self.collective_permute_wire(x, pairs, WireFormat::Lossless, name)
    }

    /// [`Builder::collective_permute`] with an explicit wire encoding
    /// (the decompose pass uses this for quantized ring steps).
    ///
    /// # Panics
    ///
    /// Panics if a destination repeats, an id is out of range, or the
    /// wire format's parameters are invalid.
    pub fn collective_permute_wire(
        &mut self,
        x: InstrId,
        pairs: Vec<(u32, u32)>,
        wire: WireFormat,
        name: &str,
    ) -> InstrId {
        self.check_pairs(&pairs, "collective-permute");
        wire.validate().unwrap_or_else(|e| panic!("collective-permute {name}: {e}"));
        let xs = self.shape_of(x).clone();
        self.append(Op::CollectivePermute { pairs, wire }, vec![x], xs, name)
    }

    /// Appends an asynchronous `CollectivePermuteStart` of `x`.
    ///
    /// # Panics
    ///
    /// Panics if a destination repeats or an id is out of range.
    pub fn collective_permute_start(
        &mut self,
        x: InstrId,
        pairs: Vec<(u32, u32)>,
        name: &str,
    ) -> InstrId {
        self.collective_permute_start_wire(x, pairs, WireFormat::Lossless, name)
    }

    /// [`Builder::collective_permute_start`] with an explicit wire
    /// encoding.
    ///
    /// # Panics
    ///
    /// Additionally panics if the wire format's parameters are invalid.
    pub fn collective_permute_start_wire(
        &mut self,
        x: InstrId,
        pairs: Vec<(u32, u32)>,
        wire: WireFormat,
        name: &str,
    ) -> InstrId {
        self.check_pairs(&pairs, "collective-permute-start");
        wire.validate()
            .unwrap_or_else(|e| panic!("collective-permute-start {name}: {e}"));
        let xs = self.shape_of(x).clone();
        self.append(Op::CollectivePermuteStart { pairs, wire }, vec![x], xs, name)
    }

    /// Appends the `CollectivePermuteDone` consuming `start`.
    ///
    /// # Panics
    ///
    /// Panics if `start` is not a `CollectivePermuteStart`.
    pub fn collective_permute_done(&mut self, start: InstrId, name: &str) -> InstrId {
        let is_start = matches!(
            self.module.instrs[start.index()].op(),
            Op::CollectivePermuteStart { .. }
        );
        assert!(is_start, "collective-permute-done operand must be a start");
        let s = self.shape_of(start).clone();
        self.append(Op::CollectivePermuteDone, vec![start], s, name)
    }

    /// Appends the executing partition id (`u32` scalar).
    pub fn partition_id(&mut self, name: &str) -> InstrId {
        self.append(Op::PartitionId, vec![], Shape::scalar(DType::U32), name)
    }

    /// Copies an instruction from another module, remapping its operands.
    ///
    /// The copied instruction keeps its op, shape, name and tag. The caller
    /// must have already copied (or replaced, with shape-identical values)
    /// all of its operands.
    ///
    /// # Panics
    ///
    /// Panics if a remapped operand's shape differs from the original
    /// operand's shape.
    pub fn copy_of(
        &mut self,
        src_module: &Module,
        src: InstrId,
        mapped_operands: Vec<InstrId>,
    ) -> InstrId {
        let ins = src_module.instr(src);
        assert_eq!(mapped_operands.len(), ins.operands().len(), "operand arity changed");
        for (i, (&orig, &new)) in ins.operands().iter().zip(&mapped_operands).enumerate() {
            assert_eq!(
                src_module.shape_of(orig),
                self.shape_of(new),
                "copy_of {}: operand {i} shape changed",
                ins.name()
            );
        }
        let saved_tag = self.tag.clone();
        self.tag = ins.tag.clone();
        let id = self.append(ins.op().clone(), mapped_operands, ins.shape().clone(), ins.name());
        if let Op::Parameter { index } = ins.op() {
            // Preserve the original parameter numbering.
            self.module.instrs[id.index()].op = Op::Parameter { index: *index };
            self.next_param = self.next_param.max(index + 1);
        }
        self.tag = saved_tag;
        id
    }

    /// Finalizes the module with the given entry outputs.
    ///
    /// # Panics
    ///
    /// Panics if an output id is out of range.
    #[must_use]
    pub fn build(mut self, outputs: Vec<InstrId>) -> Module {
        for &o in &outputs {
            assert!(o.index() < self.module.instrs.len(), "output {o} not built");
        }
        self.module.outputs = outputs;
        self.module
    }

    /// Finalizes the module and returns it together with a
    /// [`ModuleAnalysis`] whose users table was accumulated append-by-
    /// append (no whole-module recomputation). The analysis' verified
    /// watermark covers the whole module, because every append already
    /// enforced the per-instruction invariants eagerly; the pipeline's
    /// incremental verifier (see [`Module::verify_incremental`]) then only
    /// re-checks the cheap global invariants.
    ///
    /// # Panics
    ///
    /// Panics if an output id is out of range.
    #[must_use]
    pub fn build_with_analysis(mut self, outputs: Vec<InstrId>) -> (Module, ModuleAnalysis) {
        for &o in &outputs {
            assert!(o.index() < self.module.instrs.len(), "output {o} not built");
        }
        self.module.outputs = outputs;
        let live = self.module.live_set();
        let analysis = ModuleAnalysis::from_builder(self.users, live);
        (self.module, analysis)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f32s(dims: &[usize]) -> Shape {
        Shape::new(DType::F32, dims.to_vec())
    }

    #[test]
    fn names_are_uniquified() {
        let mut b = Builder::new("m", 1);
        let a = b.parameter(f32s(&[2]), "x");
        let c = b.parameter(f32s(&[2]), "x");
        let m = b.build(vec![a, c]);
        assert_eq!(m.instr(a).name(), "x");
        assert_eq!(m.instr(c).name(), "x.1");
    }

    #[test]
    fn tags_apply_to_subsequent_instrs() {
        let mut b = Builder::new("m", 1);
        let a = b.parameter(f32s(&[2]), "x");
        b.set_tag(Some("lce"));
        let c = b.copy(a, "c");
        b.set_tag(None);
        let d = b.copy(c, "d");
        let m = b.build(vec![d]);
        assert_eq!(m.instr(a).tag(), None);
        assert_eq!(m.instr(c).tag(), Some("lce"));
        assert_eq!(m.instr(d).tag(), None);
    }

    #[test]
    fn collective_shapes() {
        let mut b = Builder::new("m", 4);
        let x = b.parameter(f32s(&[2, 8]), "x");
        let g = b.all_gather(x, 0, ReplicaGroups::full(4), "ag");
        assert_eq!(b.shape_of(g).dims(), &[8, 8]);
        let rs = b.reduce_scatter(g, 1, ReplicaGroups::full(4), "rs");
        assert_eq!(b.shape_of(rs).dims(), &[8, 2]);
        let ar = b.all_reduce(rs, ReplicaGroups::full(4), "ar");
        assert_eq!(b.shape_of(ar).dims(), &[8, 2]);
        let a2a = b.all_to_all(g, 0, 1, ReplicaGroups::full(4), "a2a");
        assert_eq!(b.shape_of(a2a).dims(), &[2, 32]);
        b.build(vec![a2a]).verify().unwrap();
    }

    #[test]
    fn permute_start_done() {
        let mut b = Builder::new("m", 2);
        let x = b.parameter(f32s(&[4]), "x");
        let s = b.collective_permute_start(x, vec![(0, 1), (1, 0)], "cps");
        let d = b.collective_permute_done(s, "cpd");
        let m = b.build(vec![d]);
        m.verify().unwrap();
        assert_eq!(m.shape_of(d).dims(), &[4]);
    }

    #[test]
    #[should_panic(expected = "duplicate destination")]
    fn duplicate_destination_panics() {
        let mut b = Builder::new("m", 2);
        let x = b.parameter(f32s(&[4]), "x");
        b.collective_permute(x, vec![(0, 1), (1, 1)], "cp");
    }

    #[test]
    #[should_panic(expected = "must be a start")]
    fn done_requires_start() {
        let mut b = Builder::new("m", 2);
        let x = b.parameter(f32s(&[4]), "x");
        b.collective_permute_done(x, "cpd");
    }

    #[test]
    fn dynamic_slice_and_update() {
        let mut b = Builder::new("m", 1);
        let x = b.parameter(f32s(&[8, 4]), "x");
        let zero = b.scalar_s32(0, "zero");
        let two = b.scalar_s32(2, "two");
        let ds = b.dynamic_slice(x, &[two, zero], vec![2, 4], "ds");
        assert_eq!(b.shape_of(ds).dims(), &[2, 4]);
        let dus = b.dynamic_update_slice(x, ds, &[zero, zero], "dus");
        assert_eq!(b.shape_of(dus).dims(), &[8, 4]);
        b.build(vec![dus]).verify().unwrap();
    }

    #[test]
    fn pad_and_concat_and_max() {
        let mut b = Builder::new("m", 1);
        let x = b.parameter(f32s(&[2, 3]), "x");
        let y = b.parameter(f32s(&[2, 3]), "y");
        let v = b.constant(Shape::scalar(DType::F32), f64::NEG_INFINITY, "ninf");
        let px = b.pad(x, v, vec![PadDim::none(), PadDim::new(0, 3)], "px");
        let py = b.pad(y, v, vec![PadDim::none(), PadDim::new(3, 0)], "py");
        let m = b.max(px, py, "m");
        assert_eq!(b.shape_of(m).dims(), &[2, 6]);
        let c = b.concatenate(&[x, y], 1, "c");
        assert_eq!(b.shape_of(c).dims(), &[2, 6]);
        b.build(vec![m, c]).verify().unwrap();
    }

    #[test]
    fn copy_of_preserves_parameter_index() {
        let mut b = Builder::new("m", 1);
        let x = b.parameter(f32s(&[2]), "x");
        let y = b.parameter(f32s(&[2]), "y");
        let s = b.add(x, y, "s");
        let m = b.build(vec![s]);

        let mut b2 = Builder::new("m2", 1);
        // Copy in reverse parameter order; indexes must survive.
        let y2 = b2.copy_of(&m, y, vec![]);
        let x2 = b2.copy_of(&m, x, vec![]);
        let s2 = b2.copy_of(&m, s, vec![x2, y2]);
        let m2 = b2.build(vec![s2]);
        m2.verify().unwrap();
        assert_eq!(m2.parameters(), vec![x2, y2]);
    }

    #[test]
    fn transpose_and_broadcast() {
        let mut b = Builder::new("m", 1);
        let x = b.parameter(f32s(&[2, 3]), "x");
        let t = b.transpose(x, vec![1, 0], "t");
        assert_eq!(b.shape_of(t).dims(), &[3, 2]);
        let bc = b.broadcast(x, f32s(&[2, 5, 3]), vec![0, 2], "bc");
        assert_eq!(b.shape_of(bc).dims(), &[2, 5, 3]);
        b.build(vec![t, bc]).verify().unwrap();
    }
}
