//! Error type for IR construction and verification.

use std::error::Error;
use std::fmt;

/// Errors produced while building or verifying a [`Module`](crate::Module).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum HloError {
    /// Einsum dimension numbers are malformed or inconsistent with the
    /// operand shapes.
    InvalidEinsum(String),
    /// An instruction references an operand id that does not exist.
    DanglingOperand {
        /// Name of the offending instruction.
        instr: String,
        /// The missing operand id (raw index).
        operand: usize,
    },
    /// An operand has the wrong shape, dtype or rank for its user.
    ShapeMismatch {
        /// Name of the offending instruction.
        instr: String,
        /// Human-readable description of the violated constraint.
        message: String,
    },
    /// Replica groups are malformed (empty, duplicated or out-of-range ids,
    /// or not a partition of the device set).
    InvalidReplicaGroups(String),
    /// Collective-permute source/destination pairs are malformed.
    InvalidPermutePairs(String),
    /// The graph contains a cycle or a use-before-def ordering violation.
    NotADag(String),
    /// A fusion group is malformed (unknown ids, duplicates across groups).
    InvalidFusion(String),
    /// Generic verification failure.
    Verification(String),
}

impl fmt::Display for HloError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HloError::InvalidEinsum(m) => write!(f, "invalid einsum: {m}"),
            HloError::DanglingOperand { instr, operand } => {
                write!(f, "instruction {instr} references missing operand %{operand}")
            }
            HloError::ShapeMismatch { instr, message } => {
                write!(f, "shape mismatch at {instr}: {message}")
            }
            HloError::InvalidReplicaGroups(m) => write!(f, "invalid replica groups: {m}"),
            HloError::InvalidPermutePairs(m) => write!(f, "invalid permute pairs: {m}"),
            HloError::NotADag(m) => write!(f, "graph is not a dag: {m}"),
            HloError::InvalidFusion(m) => write!(f, "invalid fusion group: {m}"),
            HloError::Verification(m) => write!(f, "verification failed: {m}"),
        }
    }
}

impl Error for HloError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty() {
        let errors = [
            HloError::InvalidEinsum("x".into()),
            HloError::DanglingOperand { instr: "a".into(), operand: 3 },
            HloError::ShapeMismatch { instr: "a".into(), message: "m".into() },
            HloError::InvalidReplicaGroups("g".into()),
            HloError::InvalidPermutePairs("p".into()),
            HloError::NotADag("c".into()),
            HloError::InvalidFusion("f".into()),
            HloError::Verification("v".into()),
        ];
        for e in errors {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<HloError>();
    }
}
