//! Generic module transformations: dead-code elimination, common
//! subexpression elimination, statistics and GraphViz export.
//!
//! The decomposition emits one rank table and a handful of scalar index
//! constants per pattern; [`eliminate_common_subexpressions`] merges the
//! duplicates across patterns, and [`eliminate_dead_code`] drops anything
//! a rewrite orphaned. Both preserve program semantics and are verified
//! by the cross-crate equivalence tests.

use std::collections::HashMap;
use std::fmt::Write as _;

use crate::{Builder, InstrId, Module, ModuleAnalysis, Op};

/// Removes instructions not reachable from the module outputs.
///
/// Fusion groups are filtered to their live members (a group whose root
/// died is dropped entirely).
///
/// # Example
///
/// ```
/// use overlap_hlo::{eliminate_dead_code, Builder, DType, Shape};
///
/// let mut b = Builder::new("m", 1);
/// let x = b.parameter(Shape::new(DType::F32, vec![4]), "x");
/// let _dead = b.copy(x, "dead");
/// let live = b.neg(x, "live");
/// let m = b.build(vec![live]);
/// assert_eq!(eliminate_dead_code(&m).len(), 2);
/// ```
///
/// # Panics
///
/// Panics if the module is malformed (operands after users).
#[must_use]
pub fn eliminate_dead_code(module: &Module) -> Module {
    let live = module.live_set();
    let mut b = Builder::new(module.name().to_string(), module.num_partitions());
    let mut map: Vec<Option<InstrId>> = vec![None; module.len()];
    for (id, ins) in module.iter() {
        if !live[id.index()] {
            continue;
        }
        let operands = ins
            .operands()
            .iter()
            .map(|o| map[o.index()].expect("live operands precede users"))
            .collect();
        map[id.index()] = Some(b.copy_of(module, id, operands));
    }
    let outputs = module
        .outputs()
        .iter()
        .map(|o| map[o.index()].expect("outputs are live"))
        .collect();
    let rebuilt = b.build(outputs);
    let groups: Vec<_> = module
        .fusion_groups()
        .iter()
        .filter(|g| live[g.root.index()] && g.members.iter().all(|m| live[m.index()]))
        .map(|g| crate::FusionGroup {
            members: g.members.iter().map(|m| map[m.index()].expect("live")).collect(),
            root: map[g.root.index()].expect("live"),
        })
        .collect();
    rebuilt.with_fusion_groups(groups).expect("dce preserves fusion validity")
}

/// Encodes the mergeable part of an instruction — op variant, payload
/// and shape — as a token stream, returning `false` for ops that must
/// never merge. Variable-length payloads are length-prefixed so distinct
/// instructions can never encode to the same stream. Shared between the
/// CSE pass and the builder's append-time value numbering.
pub(crate) fn value_key_into(op: &Op, shape: &crate::Shape, key: &mut Vec<u64>) -> bool {
    // Only pure, deterministic ops may merge. Collectives and parameters
    // stay; Copy stays (it models a real buffer copy the schedulers see).
    match op {
        Op::Constant { value } => {
            key.push(0);
            key.push(value.to_bits());
        }
        Op::ConstantTensor { values } => {
            key.push(1);
            key.push(values.len() as u64);
            key.extend(values.iter().map(|v| v.to_bits()));
        }
        Op::Iota { dim } => {
            key.push(2);
            key.push(*dim as u64);
        }
        Op::PartitionId => key.push(3),
        Op::Binary(k) => {
            key.push(4);
            key.push(*k as u64);
        }
        Op::Unary(k) => {
            key.push(5);
            key.push(*k as u64);
        }
        Op::Reshape => key.push(6),
        Op::Transpose { perm } => {
            key.push(7);
            key.push(perm.len() as u64);
            key.extend(perm.iter().map(|&d| d as u64));
        }
        Op::Slice { starts, limits } => {
            key.push(8);
            key.push(starts.len() as u64);
            key.extend(starts.iter().map(|&d| d as u64));
            key.extend(limits.iter().map(|&d| d as u64));
        }
        Op::Broadcast { operand_dims } => {
            key.push(9);
            key.push(operand_dims.len() as u64);
            key.extend(operand_dims.iter().map(|&d| d as u64));
        }
        _ => return false,
    }
    key.push(shape.dtype() as u64);
    key.push(shape.rank() as u64);
    key.extend(shape.dims().iter().map(|&d| d as u64));
    true
}

/// Structural key for CSE: the value token stream plus the (remapped)
/// operand ids.
fn cse_key(module: &Module, id: InstrId, map: &[Option<InstrId>]) -> Option<Vec<u64>> {
    let ins = module.instr(id);
    let mut key: Vec<u64> = Vec::with_capacity(8 + ins.operands().len());
    if !value_key_into(ins.op(), ins.shape(), &mut key) {
        return None;
    }
    for o in ins.operands() {
        let mapped = map[o.index()].expect("operands precede users");
        key.push(mapped.index() as u64);
    }
    Some(key)
}

/// Merges structurally identical pure instructions (constants, partition
/// ids, scalar index arithmetic, reshapes/slices of the same value).
///
/// Instructions inside fusion groups are left untouched so group
/// structure survives; everything else merges by `(op, shape, operands)`.
///
/// # Panics
///
/// Panics if the module is malformed.
#[must_use]
pub fn eliminate_common_subexpressions(module: &Module) -> Module {
    let in_fusion = module.fusion_of();
    cse_impl(module, &in_fusion).0
}

/// Analysis-threaded variant of [`eliminate_common_subexpressions`]: uses
/// the maintained fusion table instead of recomputing it and returns the
/// rebuilt module together with its builder-maintained
/// [`ModuleAnalysis`].
///
/// # Panics
///
/// Panics if `analysis` does not cover `module`, or the module is
/// malformed.
#[must_use]
pub fn eliminate_common_subexpressions_with(
    module: &Module,
    analysis: &ModuleAnalysis,
) -> (Module, ModuleAnalysis) {
    assert_eq!(analysis.len(), module.len(), "analysis does not cover module");
    cse_impl(module, analysis.fusion())
}

fn cse_impl(
    module: &Module,
    in_fusion: &[Option<crate::FusionId>],
) -> (Module, ModuleAnalysis) {
    let mut b = Builder::new(module.name().to_string(), module.num_partitions());
    let mut map: Vec<Option<InstrId>> = vec![None; module.len()];
    let mut seen: HashMap<Vec<u64>, InstrId> = HashMap::new();
    let mut old_for_new: HashMap<InstrId, InstrId> = HashMap::new();
    for (id, ins) in module.iter() {
        if in_fusion[id.index()].is_none() {
            if let Some(key) = cse_key(module, id, &map) {
                if let Some(&existing) = seen.get(&key) {
                    map[id.index()] = Some(existing);
                    continue;
                }
                let operands = ins
                    .operands()
                    .iter()
                    .map(|o| map[o.index()].expect("operands precede users"))
                    .collect();
                let new_id = b.copy_of(module, id, operands);
                seen.insert(key, new_id);
                map[id.index()] = Some(new_id);
                old_for_new.insert(new_id, id);
                continue;
            }
        }
        let operands = ins
            .operands()
            .iter()
            .map(|o| map[o.index()].expect("operands precede users"))
            .collect();
        let new_id = b.copy_of(module, id, operands);
        map[id.index()] = Some(new_id);
        old_for_new.insert(new_id, id);
    }
    let outputs = module
        .outputs()
        .iter()
        .map(|o| map[o.index()].expect("outputs mapped"))
        .collect();
    let (rebuilt, mut analysis) = b.build_with_analysis(outputs);
    let groups: Vec<_> = module
        .fusion_groups()
        .iter()
        .map(|g| crate::FusionGroup {
            members: g.members.iter().map(|m| map[m.index()].expect("mapped")).collect(),
            root: map[g.root.index()].expect("mapped"),
        })
        .collect();
    let rebuilt = rebuilt.with_fusion_groups(groups).expect("cse preserves fusion validity");
    analysis.refresh_fusion(&rebuilt);
    (rebuilt, analysis)
}

/// Per-opcode instruction counts and aggregate statistics of a module.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ModuleStats {
    /// Instruction count per mnemonic, sorted by name.
    pub op_counts: Vec<(String, usize)>,
    /// Total live instructions.
    pub live: usize,
    /// Total instructions (including dead ones).
    pub total: usize,
    /// Total einsum FLOPs (live).
    pub einsum_flops: u64,
    /// Total bytes moved by live collectives (operand sizes).
    pub collective_bytes: usize,
}

/// Computes [`ModuleStats`] for a module.
#[must_use]
pub fn module_stats(module: &Module) -> ModuleStats {
    let live = module.live_set();
    let mut counts: HashMap<&'static str, usize> = HashMap::new();
    let mut collective_bytes = 0usize;
    for (id, ins) in module.iter() {
        if !live[id.index()] {
            continue;
        }
        *counts.entry(ins.op().mnemonic()).or_insert(0) += 1;
        if ins.op().is_collective() && !ins.operands().is_empty() {
            collective_bytes += module.shape_of(ins.operands()[0]).byte_size();
        }
    }
    let mut op_counts: Vec<(String, usize)> =
        counts.into_iter().map(|(k, v)| (k.to_string(), v)).collect();
    op_counts.sort();
    ModuleStats {
        op_counts,
        live: live.iter().filter(|&&l| l).count(),
        total: module.len(),
        einsum_flops: module.total_einsum_flops(),
        collective_bytes,
    }
}

/// Renders the module as a GraphViz `dot` digraph (live instructions
/// only). Collectives are drawn as ellipses, einsums as double boxes,
/// everything else as plain boxes; fusion groups become clusters.
#[must_use]
pub fn to_dot(module: &Module) -> String {
    let live = module.live_set();
    let mut out = String::from("digraph module {\n  rankdir=TB;\n");
    // Emit fusion clusters first.
    for (gi, g) in module.fusion_groups().iter().enumerate() {
        let _ = writeln!(out, "  subgraph cluster_{gi} {{ label=\"fusion {gi}\";");
        for &m in &g.members {
            if live[m.index()] {
                let _ = writeln!(out, "    n{};", m.index());
            }
        }
        let _ = writeln!(out, "  }}");
    }
    for (id, ins) in module.iter() {
        if !live[id.index()] {
            continue;
        }
        let shape = if ins.op().is_collective() {
            "ellipse"
        } else if matches!(ins.op(), Op::Einsum(_)) {
            "doubleoctagon"
        } else {
            "box"
        };
        let _ = writeln!(
            out,
            "  n{} [label=\"{}\\n{}\", shape={shape}];",
            id.index(),
            ins.name(),
            ins.shape()
        );
        for o in ins.operands() {
            let _ = writeln!(out, "  n{} -> n{};", o.index(), id.index());
        }
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DType, DotDims, ReplicaGroups, Shape};

    fn f32s(dims: &[usize]) -> Shape {
        Shape::new(DType::F32, dims.to_vec())
    }

    #[test]
    fn dce_drops_unreachable() {
        let mut b = Builder::new("m", 1);
        let x = b.parameter(f32s(&[4]), "x");
        let _dead = b.copy(x, "dead");
        let live = b.neg(x, "live");
        let m = b.build(vec![live]);
        let out = eliminate_dead_code(&m);
        out.verify().unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(out.count_live(|i| matches!(i.op(), Op::Copy)), 0);
    }

    #[test]
    fn cse_merges_duplicate_constants_and_arithmetic() {
        let mut b = Builder::new("m", 2);
        let p1 = b.partition_id("p1");
        let p2 = b.partition_id("p2");
        let c1 = b.constant(Shape::scalar(DType::U32), 3.0, "c1");
        let c2 = b.constant(Shape::scalar(DType::U32), 3.0, "c2");
        let a1 = b.add(p1, c1, "a1");
        let a2 = b.add(p2, c2, "a2");
        let x = b.parameter(f32s(&[4]), "x");
        let m = b.build(vec![a1, a2, x]);
        let out = eliminate_common_subexpressions(&m);
        out.verify().unwrap();
        // p1==p2, c1==c2, a1==a2: 6 scalar instrs collapse to 3.
        assert_eq!(out.len(), 4);
    }

    #[test]
    fn cse_never_merges_collectives() {
        let mut b = Builder::new("m", 2);
        let x = b.parameter(f32s(&[2]), "x");
        let g1 = b.all_gather(x, 0, ReplicaGroups::full(2), "g1");
        let g2 = b.all_gather(x, 0, ReplicaGroups::full(2), "g2");
        let m = b.build(vec![g1, g2]);
        let out = eliminate_common_subexpressions(&m);
        assert_eq!(
            out.count_live(|i| matches!(i.op(), Op::AllGather { .. })),
            2,
            "collectives must not merge"
        );
    }

    #[test]
    fn stats_count_ops_and_flops() {
        let mut b = Builder::new("m", 2);
        let x = b.parameter(f32s(&[2, 3]), "x");
        let w = b.parameter(f32s(&[3, 2]), "w");
        let wg = b.all_gather(w, 1, ReplicaGroups::full(2), "wg");
        // Dead instruction: excluded from stats.
        let _dead = b.copy(x, "dead");
        let y = b.einsum(x, wg, DotDims::new(vec![], vec![(1, 0)]).unwrap(), "y");
        let m = b.build(vec![y]);
        let stats = module_stats(&m);
        assert_eq!(stats.total, 5);
        assert_eq!(stats.live, 4);
        assert_eq!(stats.einsum_flops, 2 * 2 * 3 * 4);
        assert_eq!(stats.collective_bytes, 3 * 2 * 4);
        assert!(stats.op_counts.iter().any(|(k, v)| k == "einsum" && *v == 1));
        assert!(!stats.op_counts.iter().any(|(k, _)| k == "copy"));
    }

    #[test]
    fn dot_export_mentions_nodes_and_edges() {
        let mut b = Builder::new("m", 2);
        let x = b.parameter(f32s(&[2, 3]), "x");
        let w = b.parameter(f32s(&[3, 4]), "w");
        let y = b.einsum(x, w, DotDims::matmul(), "y");
        let m = b.build(vec![y]);
        let dot = to_dot(&m);
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains("doubleoctagon"));
        assert!(dot.contains("->"));
    }

    #[test]
    fn cse_preserves_semantics_under_fusion() {
        let mut b = Builder::new("m", 1);
        let x = b.parameter(f32s(&[4]), "x");
        let c = b.constant(f32s(&[4]), 2.0, "c");
        let c2 = b.constant(f32s(&[4]), 2.0, "c_dup");
        let s1 = b.add(x, c, "s1");
        let s2 = b.add(s1, c2, "s2");
        let m = b.build(vec![s2]);
        let out = eliminate_common_subexpressions(&m);
        out.verify().unwrap();
        assert!(out.len() < m.len());
    }
}
