//! Instructions: nodes of the dataflow graph.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{Op, Shape};

/// Identifier of an [`Instruction`] within its [`Module`](crate::Module).
///
/// Ids are arena indices; an instruction's operands always have smaller ids
/// than the instruction itself (the builder enforces use-after-def), so the
/// arena order is a valid topological order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct InstrId(pub(crate) u32);

impl InstrId {
    /// The raw arena index.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Creates an id from a raw arena index.
    ///
    /// Prefer ids returned by the [`Builder`](crate::Builder); this exists
    /// for tables keyed by dense indices.
    #[must_use]
    pub fn from_index(index: usize) -> Self {
        InstrId(index as u32)
    }
}

impl fmt::Display for InstrId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "%{}", self.0)
    }
}

/// One node of the dataflow graph: an operation, its operands and its
/// result shape, plus a human-readable name and an optional pass-assigned
/// tag used for reporting (e.g. `"lce.partial_einsum"` on instructions
/// emitted by the decomposition).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Instruction {
    pub(crate) name: String,
    pub(crate) shape: Shape,
    pub(crate) op: Op,
    pub(crate) operands: Vec<InstrId>,
    pub(crate) tag: Option<String>,
}

impl Instruction {
    /// The instruction's name (unique within its module).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The result shape.
    #[must_use]
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// The operation payload.
    #[must_use]
    pub fn op(&self) -> &Op {
        &self.op
    }

    /// The operand ids, in order.
    #[must_use]
    pub fn operands(&self) -> &[InstrId] {
        &self.operands
    }

    /// The pass-assigned tag, if any.
    #[must_use]
    pub fn tag(&self) -> Option<&str> {
        self.tag.as_deref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_round_trip() {
        let id = InstrId::from_index(7);
        assert_eq!(id.index(), 7);
        assert_eq!(id.to_string(), "%7");
    }

    #[test]
    fn ids_order_by_index() {
        assert!(InstrId::from_index(1) < InstrId::from_index(2));
    }
}
