//! Lossless JSON encoding of the IR via `overlap-json`.
//!
//! This is the wire format `overlapc` and the on-disk artifact cache
//! exchange modules in. The layout deliberately mirrors what derived
//! serde would produce — externally tagged enums, struct fields in
//! declaration order, newtypes transparent — so documents written by
//! real-serde builds of this workspace parse unchanged, and tooling
//! that pokes paths like `v["instrs"][3]["operands"][0]` keeps working.
//!
//! Decoding performs **no graph validation**: a decoded [`Module`] is
//! untrusted and must pass [`Module::verify`] before use. Structural
//! invariants simply cannot be enforced at the wire layer (that is what
//! the verifier is for), and the tamper tests rely on corrupt documents
//! decoding into rejectable modules rather than failing opaquely.

use overlap_json::{FromJson, Json, ToJson};

use crate::{
    BinaryKind, DType, DotDims, FusionGroup, InstrId, Instruction, Module, Op, PadDim,
    ReplicaGroups, Shape, UnaryKind, WireFormat,
};

impl ToJson for DType {
    fn to_json(&self) -> Json {
        Json::from(format!("{self:?}"))
    }
}

impl FromJson for DType {
    fn from_json(v: &Json) -> Result<DType, String> {
        match v.as_str() {
            Some("F32") => Ok(DType::F32),
            Some("BF16") => Ok(DType::BF16),
            Some("S32") => Ok(DType::S32),
            Some("U32") => Ok(DType::U32),
            Some("Pred") => Ok(DType::Pred),
            _ => Err(format!("unknown dtype {v}")),
        }
    }
}

impl ToJson for Shape {
    fn to_json(&self) -> Json {
        Json::obj().with("dtype", self.dtype().to_json()).with("dims", self.dims().to_json())
    }
}

impl FromJson for Shape {
    fn from_json(v: &Json) -> Result<Shape, String> {
        Ok(Shape::new(v.decode_field("dtype")?, v.decode_field("dims")?))
    }
}

impl ToJson for DotDims {
    fn to_json(&self) -> Json {
        Json::obj()
            .with("batch", self.batch().to_json())
            .with("contracting", self.contracting().to_json())
    }
}

impl FromJson for DotDims {
    fn from_json(v: &Json) -> Result<DotDims, String> {
        // Unvalidated, like a derived Deserialize: einsum shape inference
        // in the verifier rejects inconsistent dimension numbers.
        Ok(DotDims::from_raw(v.decode_field("batch")?, v.decode_field("contracting")?))
    }
}

impl ToJson for PadDim {
    fn to_json(&self) -> Json {
        Json::obj().with("low", self.low.to_json()).with("high", self.high.to_json())
    }
}

impl FromJson for PadDim {
    fn from_json(v: &Json) -> Result<PadDim, String> {
        Ok(PadDim { low: v.decode_field("low")?, high: v.decode_field("high")? })
    }
}

impl ToJson for BinaryKind {
    fn to_json(&self) -> Json {
        Json::from(format!("{self:?}"))
    }
}

impl FromJson for BinaryKind {
    fn from_json(v: &Json) -> Result<BinaryKind, String> {
        match v.as_str() {
            Some("Add") => Ok(BinaryKind::Add),
            Some("Sub") => Ok(BinaryKind::Sub),
            Some("Mul") => Ok(BinaryKind::Mul),
            Some("Div") => Ok(BinaryKind::Div),
            Some("Max") => Ok(BinaryKind::Max),
            Some("Min") => Ok(BinaryKind::Min),
            Some("Rem") => Ok(BinaryKind::Rem),
            _ => Err(format!("unknown binary kind {v}")),
        }
    }
}

impl ToJson for UnaryKind {
    fn to_json(&self) -> Json {
        Json::from(format!("{self:?}"))
    }
}

impl FromJson for UnaryKind {
    fn from_json(v: &Json) -> Result<UnaryKind, String> {
        match v.as_str() {
            Some("Neg") => Ok(UnaryKind::Neg),
            Some("Relu") => Ok(UnaryKind::Relu),
            Some("Step") => Ok(UnaryKind::Step),
            _ => Err(format!("unknown unary kind {v}")),
        }
    }
}

/// Newtype-transparent: serializes as the bare group array.
impl ToJson for ReplicaGroups {
    fn to_json(&self) -> Json {
        self.groups().to_json()
    }
}

impl FromJson for ReplicaGroups {
    fn from_json(v: &Json) -> Result<ReplicaGroups, String> {
        // Unvalidated construction (verify() re-checks coverage); the
        // wire layer only guarantees the element types.
        Ok(ReplicaGroups::from_raw(Vec::<Vec<u32>>::from_json(v)?))
    }
}

/// Newtype-transparent: serializes as the bare arena index.
impl ToJson for InstrId {
    fn to_json(&self) -> Json {
        Json::from(self.0)
    }
}

impl FromJson for InstrId {
    fn from_json(v: &Json) -> Result<InstrId, String> {
        Ok(InstrId(u32::from_json(v)?))
    }
}

/// One externally-tagged struct variant: `{"Tag": {fields…}}`.
fn variant(tag: &str, payload: Json) -> Json {
    Json::obj().with(tag, payload)
}

/// Appends a collective's `wire` field, mirroring the serde
/// `skip_serializing_if`: lossless is the default and stays implicit so
/// pre-annotation serialized modules re-encode byte-identically.
fn with_wire(payload: Json, wire: WireFormat) -> Json {
    if wire.is_lossless() {
        payload
    } else {
        payload.with("wire", wire.to_json())
    }
}

/// Reads a collective's optional `wire` field (absent ⇒ lossless).
fn decode_wire(payload: &Json) -> Result<WireFormat, String> {
    match payload.get("wire") {
        None => Ok(WireFormat::Lossless),
        Some(v) => WireFormat::from_json(v).map_err(|e| format!("field \"wire\": {e}")),
    }
}

impl ToJson for Op {
    fn to_json(&self) -> Json {
        match self {
            // Unit variants are bare strings, like derived serde.
            Op::Reshape
            | Op::DynamicUpdateSlice
            | Op::Copy
            | Op::CollectivePermuteDone
            | Op::PartitionId => Json::from(unit_name(self)),
            Op::Parameter { index } => {
                variant("Parameter", Json::obj().with("index", index.to_json()))
            }
            Op::Constant { value } => {
                // JSON has no ±inf/NaN tokens (the writer would emit
                // `null`), and the §5.4.3 pad-max-concat join pads with
                // -inf — round-trip non-finite values as strings.
                let v = if value.is_finite() {
                    value.to_json()
                } else {
                    Json::from(format!("{value}"))
                };
                variant("Constant", Json::obj().with("value", v))
            }
            Op::ConstantTensor { values } => {
                variant("ConstantTensor", Json::obj().with("values", values.to_json()))
            }
            Op::Iota { dim } => variant("Iota", Json::obj().with("dim", dim.to_json())),
            Op::Broadcast { operand_dims } => {
                variant("Broadcast", Json::obj().with("operand_dims", operand_dims.to_json()))
            }
            Op::Transpose { perm } => {
                variant("Transpose", Json::obj().with("perm", perm.to_json()))
            }
            Op::Slice { starts, limits } => variant(
                "Slice",
                Json::obj().with("starts", starts.to_json()).with("limits", limits.to_json()),
            ),
            Op::DynamicSlice { sizes } => {
                variant("DynamicSlice", Json::obj().with("sizes", sizes.to_json()))
            }
            Op::Concatenate { dim } => {
                variant("Concatenate", Json::obj().with("dim", dim.to_json()))
            }
            Op::Pad { config } => variant("Pad", Json::obj().with("config", config.to_json())),
            Op::Binary(kind) => variant("Binary", kind.to_json()),
            Op::Unary(kind) => variant("Unary", kind.to_json()),
            Op::Einsum(dims) => variant("Einsum", dims.to_json()),
            Op::AllGather { dim, groups, wire } => variant(
                "AllGather",
                with_wire(
                    Json::obj().with("dim", dim.to_json()).with("groups", groups.to_json()),
                    *wire,
                ),
            ),
            Op::ReduceScatter { dim, groups, wire } => variant(
                "ReduceScatter",
                with_wire(
                    Json::obj().with("dim", dim.to_json()).with("groups", groups.to_json()),
                    *wire,
                ),
            ),
            Op::AllReduce { groups, wire } => variant(
                "AllReduce",
                with_wire(Json::obj().with("groups", groups.to_json()), *wire),
            ),
            Op::AllToAll { split_dim, concat_dim, groups } => variant(
                "AllToAll",
                Json::obj()
                    .with("split_dim", split_dim.to_json())
                    .with("concat_dim", concat_dim.to_json())
                    .with("groups", groups.to_json()),
            ),
            Op::CollectivePermute { pairs, wire } => variant(
                "CollectivePermute",
                with_wire(Json::obj().with("pairs", pairs.to_json()), *wire),
            ),
            Op::CollectivePermuteStart { pairs, wire } => variant(
                "CollectivePermuteStart",
                with_wire(Json::obj().with("pairs", pairs.to_json()), *wire),
            ),
        }
    }
}

fn unit_name(op: &Op) -> &'static str {
    match op {
        Op::Reshape => "Reshape",
        Op::DynamicUpdateSlice => "DynamicUpdateSlice",
        Op::Copy => "Copy",
        Op::CollectivePermuteDone => "CollectivePermuteDone",
        Op::PartitionId => "PartitionId",
        _ => unreachable!("not a unit variant"),
    }
}

impl FromJson for Op {
    fn from_json(v: &Json) -> Result<Op, String> {
        if let Some(name) = v.as_str() {
            return match name {
                "Reshape" => Ok(Op::Reshape),
                "DynamicUpdateSlice" => Ok(Op::DynamicUpdateSlice),
                "Copy" => Ok(Op::Copy),
                "CollectivePermuteDone" => Ok(Op::CollectivePermuteDone),
                "PartitionId" => Ok(Op::PartitionId),
                other => Err(format!("unknown op {other:?}")),
            };
        }
        let (tag, payload) = match v {
            Json::Obj(fields) if fields.len() == 1 => (&fields[0].0, &fields[0].1),
            other => return Err(format!("expected op tag, got {other}")),
        };
        let op = match tag.as_str() {
            "Parameter" => Op::Parameter { index: payload.decode_field("index")? },
            "Constant" => {
                let v = payload.get("value").ok_or("Constant missing value")?;
                let value = match v.as_str() {
                    Some(s) => s
                        .parse::<f64>()
                        .map_err(|e| format!("field \"value\": bad non-finite literal: {e}"))?,
                    None => f64::from_json(v).map_err(|e| format!("field \"value\": {e}"))?,
                };
                Op::Constant { value }
            }
            "ConstantTensor" => {
                Op::ConstantTensor { values: payload.decode_field("values")? }
            }
            "Iota" => Op::Iota { dim: payload.decode_field("dim")? },
            "Broadcast" => Op::Broadcast { operand_dims: payload.decode_field("operand_dims")? },
            "Transpose" => Op::Transpose { perm: payload.decode_field("perm")? },
            "Slice" => Op::Slice {
                starts: payload.decode_field("starts")?,
                limits: payload.decode_field("limits")?,
            },
            "DynamicSlice" => Op::DynamicSlice { sizes: payload.decode_field("sizes")? },
            "Concatenate" => Op::Concatenate { dim: payload.decode_field("dim")? },
            "Pad" => Op::Pad { config: payload.decode_field("config")? },
            "Binary" => Op::Binary(BinaryKind::from_json(payload)?),
            "Unary" => Op::Unary(UnaryKind::from_json(payload)?),
            "Einsum" => Op::Einsum(DotDims::from_json(payload)?),
            "AllGather" => Op::AllGather {
                dim: payload.decode_field("dim")?,
                groups: payload.decode_field("groups")?,
                wire: decode_wire(payload)?,
            },
            "ReduceScatter" => Op::ReduceScatter {
                dim: payload.decode_field("dim")?,
                groups: payload.decode_field("groups")?,
                wire: decode_wire(payload)?,
            },
            "AllReduce" => Op::AllReduce {
                groups: payload.decode_field("groups")?,
                wire: decode_wire(payload)?,
            },
            "AllToAll" => Op::AllToAll {
                split_dim: payload.decode_field("split_dim")?,
                concat_dim: payload.decode_field("concat_dim")?,
                groups: payload.decode_field("groups")?,
            },
            "CollectivePermute" => Op::CollectivePermute {
                pairs: payload.decode_field("pairs")?,
                wire: decode_wire(payload)?,
            },
            "CollectivePermuteStart" => Op::CollectivePermuteStart {
                pairs: payload.decode_field("pairs")?,
                wire: decode_wire(payload)?,
            },
            other => return Err(format!("unknown op {other:?}")),
        };
        Ok(op)
    }
}

impl ToJson for Instruction {
    fn to_json(&self) -> Json {
        Json::obj()
            .with("name", self.name.to_json())
            .with("shape", self.shape.to_json())
            .with("op", self.op.to_json())
            .with("operands", self.operands.to_json())
            .with("tag", self.tag.to_json())
    }
}

impl FromJson for Instruction {
    fn from_json(v: &Json) -> Result<Instruction, String> {
        Ok(Instruction {
            name: v.decode_field("name")?,
            shape: v.decode_field("shape")?,
            op: v.decode_field("op")?,
            operands: v.decode_field("operands")?,
            tag: v.decode_field("tag")?,
        })
    }
}

impl ToJson for FusionGroup {
    fn to_json(&self) -> Json {
        Json::obj().with("members", self.members.to_json()).with("root", self.root.to_json())
    }
}

impl FromJson for FusionGroup {
    fn from_json(v: &Json) -> Result<FusionGroup, String> {
        Ok(FusionGroup { members: v.decode_field("members")?, root: v.decode_field("root")? })
    }
}

impl ToJson for Module {
    fn to_json(&self) -> Json {
        Json::obj()
            .with("name", self.name.to_json())
            .with("instrs", self.instrs.to_json())
            .with("outputs", self.outputs.to_json())
            .with("num_partitions", self.num_partitions.to_json())
            .with("fusion_groups", self.fusion_groups.to_json())
    }
}

impl FromJson for Module {
    fn from_json(v: &Json) -> Result<Module, String> {
        Ok(Module {
            name: v.decode_field("name")?,
            instrs: v.decode_field("instrs")?,
            outputs: v.decode_field("outputs")?,
            num_partitions: v.decode_field("num_partitions")?,
            fusion_groups: v.decode_field("fusion_groups")?,
        })
    }
}

impl Module {
    /// Parses a module from JSON text. The result is **untrusted**:
    /// call [`Module::verify`] before using it.
    ///
    /// # Errors
    ///
    /// Returns a message on malformed JSON or a layout mismatch.
    pub fn from_json_str(text: &str) -> Result<Module, String> {
        Module::from_json(&Json::parse(text)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Builder;

    /// A module touching every op payload kind the compiler can emit.
    fn vocabulary_module() -> Module {
        let n = 4;
        let mut b = Builder::new("vocab", n);
        let f32v = |dims: Vec<usize>| Shape::new(DType::F32, dims);
        let x = b.parameter(f32v(vec![8, 8]), "x");
        let w = b.parameter(f32v(vec![8, 8]), "w");
        let c = b.constant(f32v(vec![8, 8]), 1.5, "c");
        let t = b.constant_tensor(f32v(vec![4]), vec![0.0, 1.0, 2.0, 3.0], "table");
        let iota = b.iota(Shape::new(DType::S32, vec![8]), 0, "iota");
        let bc = b.broadcast(iota, Shape::new(DType::S32, vec![8, 8]), vec![0], "bc");
        let rs = b.reshape(t, vec![2, 2], "rs");
        let tp = b.transpose(x, vec![1, 0], "tp");
        let sl = b.slice(x, vec![0, 0], vec![4, 8], "sl");
        let pid = b.partition_id("pid");
        let zero = b.scalar_s32(0, "zero");
        let ds = b.dynamic_slice(x, &[pid, zero], vec![2, 8], "ds");
        let dus = b.dynamic_update_slice(x, ds, &[pid, zero], "dus");
        let cat = b.concatenate(&[sl, sl], 0, "cat");
        let zf = zero_f32(&mut b);
        let pad = b.pad(ds, zf, vec![PadDim::new(1, 5), PadDim::none()], "pad");
        let add = b.binary_op(BinaryKind::Add, x, w, "add");
        let neg = b.unary_op(UnaryKind::Neg, add, "neg");
        let cp = b.copy(neg, "cp");
        let ein = b.einsum(tp, cp, DotDims::matmul(), "ein");
        let groups = ReplicaGroups::new(vec![vec![0, 1], vec![2, 3]]).unwrap();
        let ag = b.all_gather(ein, 0, groups.clone(), "ag");
        let rsc = b.reduce_scatter(ag, 0, groups.clone(), "rsc");
        let ar = b.all_reduce(rsc, groups.clone(), "ar");
        let a2a = b.all_to_all(ar, 0, 1, groups, "a2a");
        let pairs = vec![(0u32, 1u32), (1, 2), (2, 3), (3, 0)];
        let perm = b.collective_permute(a2a, pairs.clone(), "perm");
        let start = b.collective_permute_start(perm, pairs, "start");
        let done = b.collective_permute_done(start, "done");
        let module = b.build(vec![done, dus, bc, cat, pad, rs, c]);
        module.verify().expect("vocabulary module verifies");
        module
    }

    fn zero_f32(b: &mut Builder) -> InstrId {
        b.constant(Shape::scalar(DType::F32), 0.0, "zf")
    }

    #[test]
    fn full_vocabulary_roundtrips_losslessly() {
        let m = vocabulary_module();
        let text = m.to_json().to_string();
        let back = Module::from_json_str(&text).expect("parses");
        assert_eq!(back, m);
        back.verify().expect("roundtripped module verifies");
        // And through the pretty printer too (the on-disk cache layout).
        let back2 = Module::from_json_str(&m.to_json().to_pretty()).expect("parses");
        assert_eq!(back2, m);
    }

    #[test]
    fn non_finite_constants_roundtrip() {
        // The §5.4.3 pad-max-concat join pads with -inf; a plain number
        // token would serialize as `null` and the module would decode
        // corrupt out of the artifact cache.
        let mut b = Builder::new("ninf", 1);
        let c = b.constant(Shape::scalar(DType::BF16), f64::NEG_INFINITY, "ninf");
        let m = b.build(vec![c]);
        let text = m.to_json().to_string();
        assert!(text.contains("\"value\":\"-inf\""), "{text}");
        let back = Module::from_json_str(&text).expect("parses");
        assert_eq!(back, m);
    }

    #[test]
    fn layout_matches_derive_conventions() {
        let m = vocabulary_module();
        let v = m.to_json();
        // Paths the tamper tests and external tooling rely on.
        assert_eq!(v["num_partitions"].as_u64(), Some(4));
        assert_eq!(v["instrs"][0]["op"]["Parameter"]["index"].as_u64(), Some(0));
        assert!(v["instrs"][0]["tag"].is_null());
        assert_eq!(v["instrs"][5]["shape"]["dims"][1].as_u64(), Some(8));
        // Unit variants are bare strings, newtypes transparent.
        let text = v.to_string();
        assert!(text.contains("\"op\":\"DynamicUpdateSlice\""), "{text}");
        assert!(text.contains("\"groups\":[[0,1],[2,3]]"), "{text}");
    }

    #[test]
    fn decode_rejects_layout_garbage() {
        for bad in [
            "{}",
            "{\"name\":\"m\",\"instrs\":0,\"outputs\":[],\"num_partitions\":1,\"fusion_groups\":[]}",
            "{\"name\":\"m\",\"instrs\":[{\"name\":\"x\",\"shape\":{\"dtype\":\"F99\",\"dims\":[]},\
             \"op\":\"Copy\",\"operands\":[],\"tag\":null}],\"outputs\":[],\"num_partitions\":1,\
             \"fusion_groups\":[]}",
        ] {
            assert!(Module::from_json_str(bad).is_err(), "{bad} must not decode");
        }
    }
}
