//! A minimal HLO-like dataflow intermediate representation.
//!
//! This crate provides the substrate IR on which the *looped
//! collective-einsum* transformation (the ASPLOS'23 paper's contribution,
//! implemented in `overlap-core`) operates. It deliberately mirrors the
//! subset of XLA HLO that the paper's compiler passes touch:
//!
//! * dense tensor [`Shape`]s with a small set of [`DType`]s,
//! * `Einsum` (XLA `DotGeneral`) with explicit batch/contracting
//!   dimension numbers ([`DotDims`]),
//! * the MPI-style collectives of §2.1 — `AllGather`, `ReduceScatter`,
//!   `AllReduce`, `AllToAll` and point-to-point `CollectivePermute`,
//!   including the asynchronous `CollectivePermuteStart`/`Done` pair of
//!   §5.2,
//! * the data-movement ops used by the decomposition — `DynamicSlice`,
//!   `DynamicUpdateSlice`, `Concatenate`, `Pad`, `Slice`, `Broadcast` —
//!   plus scalar index arithmetic (`PartitionId`, constants, `+`, `*`, `%`).
//!
//! A [`Module`] is a flat arena of [`Instruction`]s forming a DAG; the
//! [`Builder`] appends instructions in topological order and the
//! [`verify`](Module::verify) method re-checks all shape and dataflow
//! invariants after a pass has rewritten the graph.
//!
//! # Example
//!
//! ```
//! use overlap_hlo::{Builder, DType, DotDims, ReplicaGroups, Shape};
//!
//! // One shard of an [F, H] weight matrix, 4-way partitioned on F,
//! // all-gathered and contracted with a local activation.
//! let mut b = Builder::new("mlp_layer", 4);
//! let x = b.parameter(Shape::new(DType::F32, vec![8, 64]), "x");
//! let w = b.parameter(Shape::new(DType::F32, vec![16, 32]), "w_shard");
//! let groups = ReplicaGroups::full(4);
//! let w_full = b.all_gather(w, 0, groups, "w_full");
//! let dims = DotDims::matmul();
//! let y = b.einsum(x, w_full, dims, "y");
//! let module = b.build(vec![y]);
//! module.verify().unwrap();
//! assert_eq!(module.shape_of(y).dims(), &[8, 32]);
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

mod analysis;
mod autodiff;
mod builder;
mod dtype;
mod einsum;
mod error;
mod fingerprint;
mod instr;
mod json;
mod layers;
mod module;
mod ops;
mod print;
mod shape;
mod transform;
mod verify;

pub use analysis::ModuleAnalysis;
pub use autodiff::{gradients, GradModule};
pub use builder::Builder;
pub use dtype::DType;
pub use einsum::DotDims;
pub use error::HloError;
pub use instr::{InstrId, Instruction};
pub use layers::LayerTags;
pub use module::{FusionGroup, FusionId, Module};
pub use ops::{BinaryKind, CollectiveOp, Op, PadDim, ReplicaGroups, UnaryKind};
// Re-exported so IR consumers can annotate collectives without a direct
// `overlap-quant` dependency.
pub use overlap_quant::WireFormat;
pub use shape::Shape;
pub use transform::{
    eliminate_common_subexpressions, eliminate_common_subexpressions_with, eliminate_dead_code,
    module_stats, to_dot, ModuleStats,
};
pub use verify::FULL_VERIFY_ENV;
