//! Shared, incrementally maintained module analyses.
//!
//! Every compiler pass needs some mix of the same three whole-module
//! tables — users (reverse use-def edges), liveness, and fusion
//! membership. Recomputing them per pass is `O(passes * module)` work;
//! [`ModuleAnalysis`] computes them once and is *maintained* across the
//! pipeline instead:
//!
//! * [`Builder::build_with_analysis`](crate::Builder::build_with_analysis)
//!   returns the analysis alongside the rebuilt module, with the users
//!   table accumulated append-by-append (so a rebuild pass pays nothing
//!   extra for it);
//! * [`ModuleAnalysis::refresh_fusion`] re-derives only the dense fusion
//!   table after a fusion pass attaches groups;
//! * [`Module::verify_incremental`](crate::Module::verify_incremental)
//!   advances the analysis' *verified watermark* so later verification
//!   only checks instructions appended since the last verified point.
//!
//! The tables are dense and `InstrId`-indexed; contents are defined to be
//! identical (including user ordering) to the from-scratch accessors
//! [`Module::users`], [`Module::live_set`] and [`Module::fusion_of`],
//! which property tests assert across the whole pipeline.

use crate::{FusionId, InstrId, Module};

/// Dense use-def/users, liveness and fusion-membership tables for one
/// [`Module`], plus the incremental-verification watermark.
///
/// An analysis is only meaningful for the module it was computed from (or
/// maintained alongside); [`ModuleAnalysis::len`] must equal
/// [`Module::len`] whenever the two are used together, and the
/// analysis-threaded entry points assert exactly that.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModuleAnalysis {
    users: Vec<Vec<InstrId>>,
    fusion: Vec<Option<FusionId>>,
    live: Vec<bool>,
    /// Instructions `0..verified` have passed per-instruction checks.
    verified: usize,
}

impl ModuleAnalysis {
    /// Computes all tables from scratch for `module`.
    ///
    /// The result starts with a verified watermark of zero: nothing is
    /// trusted until [`Module::verify_incremental`] (or a full
    /// [`Module::verify`] followed by [`ModuleAnalysis::mark_verified`])
    /// has run. For that reason this constructor tolerates out-of-range
    /// ids (it drops the broken edges instead of panicking), so an
    /// analysis of an untrusted module can be handed straight to the
    /// incremental verifier, which rejects exactly what [`Module::verify`]
    /// rejects. On a valid module the tables are identical to the exact
    /// accessors.
    #[must_use]
    pub fn of(module: &Module) -> Self {
        let n = module.len();
        let mut users: Vec<Vec<InstrId>> = vec![Vec::new(); n];
        for (id, ins) in module.iter() {
            for &op in ins.operands() {
                if op.index() < n {
                    users[op.index()].push(id);
                }
            }
        }
        let mut fusion = vec![None; n];
        for (gi, g) in module.fusion_groups().iter().enumerate() {
            for &m in &g.members {
                if m.index() < n {
                    fusion[m.index()] = Some(FusionId(gi as u32));
                }
            }
        }
        let mut live = vec![false; n];
        let mut stack: Vec<InstrId> = module
            .outputs()
            .iter()
            .copied()
            .filter(|o| o.index() < n)
            .collect();
        while let Some(id) = stack.pop() {
            if live[id.index()] {
                continue;
            }
            live[id.index()] = true;
            stack.extend(module.instr(id).operands().iter().copied().filter(|o| o.index() < n));
        }
        ModuleAnalysis { users, fusion, live, verified: 0 }
    }

    /// Builds an analysis from parts the [`Builder`](crate::Builder)
    /// maintained incrementally. The fusion table is all-`None` (fresh
    /// modules carry no groups) and the watermark covers the whole module:
    /// builder appends enforce the per-instruction invariants eagerly.
    pub(crate) fn from_builder(users: Vec<Vec<InstrId>>, live: Vec<bool>) -> Self {
        let n = users.len();
        ModuleAnalysis { users, fusion: vec![None; n], live, verified: n }
    }

    /// Number of instructions the tables cover.
    #[must_use]
    pub fn len(&self) -> usize {
        self.users.len()
    }

    /// Whether the analysis covers an empty module.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.users.is_empty()
    }

    /// Users of every instruction, `InstrId`-indexed; identical to
    /// [`Module::users`].
    #[must_use]
    pub fn users(&self) -> &[Vec<InstrId>] {
        &self.users
    }

    /// Users of one instruction.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[must_use]
    pub fn users_of(&self, id: InstrId) -> &[InstrId] {
        &self.users[id.index()]
    }

    /// Dense fusion-membership table; identical to [`Module::fusion_of`].
    #[must_use]
    pub fn fusion(&self) -> &[Option<FusionId>] {
        &self.fusion
    }

    /// The fusion group containing `id`, if any.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[must_use]
    pub fn fusion_of(&self, id: InstrId) -> Option<FusionId> {
        self.fusion[id.index()]
    }

    /// Liveness (output-reachability) table; identical to
    /// [`Module::live_set`].
    #[must_use]
    pub fn live(&self) -> &[bool] {
        &self.live
    }

    /// Whether `id` is reachable from the module outputs.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[must_use]
    pub fn is_live(&self, id: InstrId) -> bool {
        self.live[id.index()]
    }

    /// Instructions `0..verified_len()` have passed the per-instruction
    /// verifier checks (shape inference, operand ordering).
    #[must_use]
    pub fn verified_len(&self) -> usize {
        self.verified
    }

    /// Records that all instructions of `module` have passed full
    /// verification (used after an explicit [`Module::verify`]).
    ///
    /// # Panics
    ///
    /// Panics if the analysis does not cover `module`.
    pub fn mark_verified(&mut self, module: &Module) {
        assert_eq!(self.len(), module.len(), "analysis does not cover module");
        self.verified = module.len();
    }

    pub(crate) fn set_verified(&mut self, upto: usize) {
        self.verified = upto;
    }

    /// Re-derives the dense fusion table from `module`'s attached groups
    /// (call after [`Module::with_fusion_groups`]). Users and liveness are
    /// untouched — attaching fusion groups rewires nothing.
    ///
    /// # Panics
    ///
    /// Panics if the analysis does not cover `module`.
    pub fn refresh_fusion(&mut self, module: &Module) {
        assert_eq!(self.len(), module.len(), "analysis does not cover module");
        self.fusion = module.fusion_of();
    }

    /// Recomputes liveness from `module`'s outputs (call if the outputs
    /// were edited after the analysis was built).
    ///
    /// # Panics
    ///
    /// Panics if the analysis does not cover `module`.
    pub fn refresh_liveness(&mut self, module: &Module) {
        assert_eq!(self.len(), module.len(), "analysis does not cover module");
        self.live = module.live_set();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Builder, DType, DotDims, FusionGroup, Shape};

    fn sample() -> (Module, ModuleAnalysis) {
        let mut b = Builder::new("m", 1);
        let x = b.parameter(Shape::new(DType::F32, vec![2, 3]), "x");
        let w = b.parameter(Shape::new(DType::F32, vec![3, 4]), "w");
        let y = b.einsum(x, w, DotDims::matmul(), "y");
        let dead = b.copy(x, "dead");
        let _ = dead;
        b.build_with_analysis(vec![y])
    }

    #[test]
    fn builder_analysis_matches_from_scratch() {
        let (m, a) = sample();
        let fresh = ModuleAnalysis::of(&m);
        assert_eq!(a.users(), fresh.users());
        assert_eq!(a.fusion(), fresh.fusion());
        assert_eq!(a.live(), fresh.live());
        assert_eq!(a.verified_len(), m.len());
        assert_eq!(fresh.verified_len(), 0);
    }

    #[test]
    fn refresh_fusion_tracks_attached_groups() {
        let (m, mut a) = sample();
        let y = InstrId::from_index(2);
        let m = m
            .with_fusion_groups(vec![FusionGroup { members: vec![y], root: y }])
            .unwrap();
        a.refresh_fusion(&m);
        assert_eq!(a.fusion(), m.fusion_of());
        assert!(a.fusion_of(y).is_some());
    }
}
