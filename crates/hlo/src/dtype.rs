//! Element types supported by the IR.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Element type of a tensor [`Shape`](crate::Shape).
///
/// Only the types that appear in the paper's transformation are modeled:
/// floating-point activations/weights (`F32`, `BF16`), signed integers for
/// index arithmetic (`S32`), unsigned partition ids (`U32`) and booleans
/// (`Pred`).
///
/// # Example
///
/// ```
/// use overlap_hlo::DType;
/// assert_eq!(DType::BF16.size_bytes(), 2);
/// assert!(DType::F32.is_float());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum DType {
    /// 32-bit IEEE-754 float.
    F32,
    /// 16-bit brain float (storage/traffic modeling; numerics use f32 math).
    BF16,
    /// 32-bit signed integer (index arithmetic).
    S32,
    /// 32-bit unsigned integer (partition ids).
    U32,
    /// Boolean predicate.
    Pred,
}

impl DType {
    /// Size of one element in bytes.
    #[must_use]
    pub fn size_bytes(self) -> usize {
        match self {
            DType::F32 | DType::S32 | DType::U32 => 4,
            DType::BF16 => 2,
            DType::Pred => 1,
        }
    }

    /// Whether this is a floating-point type.
    #[must_use]
    pub fn is_float(self) -> bool {
        matches!(self, DType::F32 | DType::BF16)
    }

    /// Whether this is an integer type usable for index arithmetic.
    #[must_use]
    pub fn is_integer(self) -> bool {
        matches!(self, DType::S32 | DType::U32)
    }

    /// Lowercase HLO-style name (`f32`, `bf16`, `s32`, `u32`, `pred`).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            DType::F32 => "f32",
            DType::BF16 => "bf16",
            DType::S32 => "s32",
            DType::U32 => "u32",
            DType::Pred => "pred",
        }
    }
}

impl fmt::Display for DType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes() {
        assert_eq!(DType::F32.size_bytes(), 4);
        assert_eq!(DType::BF16.size_bytes(), 2);
        assert_eq!(DType::S32.size_bytes(), 4);
        assert_eq!(DType::U32.size_bytes(), 4);
        assert_eq!(DType::Pred.size_bytes(), 1);
    }

    #[test]
    fn classification() {
        assert!(DType::F32.is_float());
        assert!(DType::BF16.is_float());
        assert!(!DType::S32.is_float());
        assert!(DType::S32.is_integer());
        assert!(DType::U32.is_integer());
        assert!(!DType::Pred.is_integer());
        assert!(!DType::Pred.is_float());
    }

    #[test]
    fn display_matches_name() {
        for d in [DType::F32, DType::BF16, DType::S32, DType::U32, DType::Pred] {
            assert_eq!(d.to_string(), d.name());
        }
    }
}
