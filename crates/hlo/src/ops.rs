//! Operation kinds: the instruction set of the IR.

use std::fmt;

use overlap_quant::WireFormat;
use serde::{Deserialize, Serialize};

use crate::{DotDims, HloError};

/// Elementwise binary operation kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BinaryKind {
    /// Elementwise addition (also the reduction operator of `AllReduce` and
    /// `ReduceScatter`).
    Add,
    /// Elementwise subtraction.
    Sub,
    /// Elementwise multiplication.
    Mul,
    /// Elementwise division.
    Div,
    /// Elementwise maximum (used by the fusion-friendly
    /// `Max(PadLow, PadHigh)` rewrite of §5.4.3).
    Max,
    /// Elementwise minimum.
    Min,
    /// Remainder (index arithmetic: `(partition_id + k) % n`).
    Rem,
}

impl BinaryKind {
    /// Lowercase mnemonic.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            BinaryKind::Add => "add",
            BinaryKind::Sub => "subtract",
            BinaryKind::Mul => "multiply",
            BinaryKind::Div => "divide",
            BinaryKind::Max => "maximum",
            BinaryKind::Min => "minimum",
            BinaryKind::Rem => "remainder",
        }
    }
}

/// Elementwise unary operation kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum UnaryKind {
    /// Numeric negation.
    Neg,
    /// Rectified linear unit `max(x, 0)` (the MLP activation).
    Relu,
    /// Heaviside step `1 if x > 0 else 0` (ReLU's derivative mask).
    Step,
}

impl UnaryKind {
    /// Lowercase mnemonic.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            UnaryKind::Neg => "negate",
            UnaryKind::Relu => "relu",
            UnaryKind::Step => "step",
        }
    }
}

/// One dimension of a `Pad` configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct PadDim {
    /// Elements of padding inserted before the data.
    pub low: usize,
    /// Elements of padding inserted after the data.
    pub high: usize,
}

impl PadDim {
    /// No padding on this dimension.
    #[must_use]
    pub fn none() -> Self {
        PadDim::default()
    }

    /// Padding of `low` before and `high` after the data.
    #[must_use]
    pub fn new(low: usize, high: usize) -> Self {
        PadDim { low, high }
    }
}

/// Replica groups of a collective: a partition of the device-partition ids
/// into disjoint groups, each of which runs the collective independently
/// (XLA's `replica_groups`). Subgroup collectives along one mesh axis (the
/// `(x)`/`(y)` annotations of Fig. 3) are expressed this way.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ReplicaGroups(Vec<Vec<u32>>);

impl ReplicaGroups {
    /// A single group containing partitions `0..n` in order.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[must_use]
    pub fn full(n: usize) -> Self {
        assert!(n > 0, "replica group must be non-empty");
        ReplicaGroups(vec![(0..n as u32).collect()])
    }

    /// Creates replica groups from explicit id lists.
    ///
    /// # Errors
    ///
    /// Returns [`HloError::InvalidReplicaGroups`] if any group is empty, the
    /// groups have unequal sizes, or an id appears more than once.
    pub fn new(groups: Vec<Vec<u32>>) -> Result<Self, HloError> {
        if groups.is_empty() {
            return Err(HloError::InvalidReplicaGroups("no groups".into()));
        }
        let size = groups[0].len();
        if size == 0 {
            return Err(HloError::InvalidReplicaGroups("empty group".into()));
        }
        let mut all: Vec<u32> = Vec::new();
        for g in &groups {
            if g.len() != size {
                return Err(HloError::InvalidReplicaGroups("unequal group sizes".into()));
            }
            all.extend_from_slice(g);
        }
        let before = all.len();
        all.sort_unstable();
        all.dedup();
        if all.len() != before {
            return Err(HloError::InvalidReplicaGroups("duplicate partition id".into()));
        }
        Ok(ReplicaGroups(groups))
    }

    /// Unchecked construction for the wire layer (`crate::json`): a
    /// decoded module is untrusted and `Module::verify` re-checks group
    /// invariants, mirroring what a derived `Deserialize` would permit.
    pub(crate) fn from_raw(groups: Vec<Vec<u32>>) -> Self {
        ReplicaGroups(groups)
    }

    /// Number of partitions per group.
    #[must_use]
    pub fn group_size(&self) -> usize {
        self.0[0].len()
    }

    /// Number of groups.
    #[must_use]
    pub fn num_groups(&self) -> usize {
        self.0.len()
    }

    /// The groups as id slices.
    #[must_use]
    pub fn groups(&self) -> &[Vec<u32>] {
        &self.0
    }

    /// The group containing partition `pid`, if any.
    #[must_use]
    pub fn group_containing(&self, pid: u32) -> Option<&[u32]> {
        self.0.iter().find(|g| g.contains(&pid)).map(Vec::as_slice)
    }

    /// Rank of `pid` within its group, if present.
    #[must_use]
    pub fn rank_in_group(&self, pid: u32) -> Option<usize> {
        self.group_containing(pid)?.iter().position(|&p| p == pid)
    }

    /// Verifies that the groups exactly cover `0..num_partitions`.
    ///
    /// # Errors
    ///
    /// Returns [`HloError::InvalidReplicaGroups`] on incomplete coverage or
    /// out-of-range ids.
    pub fn validate(&self, num_partitions: usize) -> Result<(), HloError> {
        let mut all: Vec<u32> = self.0.iter().flatten().copied().collect();
        all.sort_unstable();
        let expect: Vec<u32> = (0..num_partitions as u32).collect();
        if all != expect {
            return Err(HloError::InvalidReplicaGroups(format!(
                "groups do not partition 0..{num_partitions}"
            )));
        }
        Ok(())
    }
}

/// Classification of collective operations (used by cost models and the
/// schedulers, which treat all collectives uniformly by kind).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CollectiveOp {
    /// Many-to-many gather-and-concatenate.
    AllGather,
    /// Elementwise-reduce then scatter (inverse pattern of `AllGather`).
    ReduceScatter,
    /// `ReduceScatter` followed by `AllGather`.
    AllReduce,
    /// Per-pair exchange along split/concat dimensions.
    AllToAll,
    /// Synchronous point-to-point permute.
    CollectivePermute,
    /// Asynchronous permute initiation (non-blocking, §5.2).
    CollectivePermuteStart,
    /// Asynchronous permute completion marker.
    CollectivePermuteDone,
}

/// Operation payload of an [`Instruction`](crate::Instruction).
///
/// Operand arity and shape rules are enforced by
/// [`Module::verify`](crate::Module::verify); see that method for the full
/// list of invariants.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Op {
    /// Entry-computation input number `index`.
    Parameter {
        /// Position among the module's parameters.
        index: usize,
    },
    /// A scalar constant, splatted to the instruction shape if non-scalar.
    Constant {
        /// The value (stored as `f64`; integer dtypes truncate).
        value: f64,
    },
    /// A dense tensor constant with explicit row-major values (used for
    /// the per-partition rank lookup tables the decomposition emits).
    ConstantTensor {
        /// Row-major element values.
        values: Vec<f64>,
    },
    /// A rank-n tensor whose elements count up along `dim`.
    Iota {
        /// Dimension along which values increase.
        dim: usize,
    },
    /// Broadcast: output dimension `operand_dims[i]` is filled from operand
    /// dimension `i`; all other output dimensions replicate.
    Broadcast {
        /// Mapping of operand dimensions into output dimensions (strictly
        /// increasing).
        operand_dims: Vec<usize>,
    },
    /// Bit-preserving reshape to the instruction shape.
    Reshape,
    /// Dimension permutation: output dim `i` is operand dim `perm[i]`.
    Transpose {
        /// The permutation.
        perm: Vec<usize>,
    },
    /// Static slice `[starts, limits)` per dimension, stride 1.
    Slice {
        /// Inclusive start per dimension.
        starts: Vec<usize>,
        /// Exclusive limit per dimension.
        limits: Vec<usize>,
    },
    /// Slice with runtime start indices (one scalar operand per dimension
    /// after the data operand), clamped in bounds.
    DynamicSlice {
        /// Result extent per dimension.
        sizes: Vec<usize>,
    },
    /// Overwrite a slice of operand 0 with operand 1 at runtime indices
    /// (one scalar operand per dimension after data and update).
    DynamicUpdateSlice,
    /// Concatenate operands along `dim`.
    Concatenate {
        /// The concatenation dimension.
        dim: usize,
    },
    /// Pad operand 0 with the scalar operand 1 according to `config`.
    Pad {
        /// Per-dimension low/high padding.
        config: Vec<PadDim>,
    },
    /// Elementwise binary operation on same-shaped operands.
    Binary(BinaryKind),
    /// Elementwise unary operation.
    Unary(UnaryKind),
    /// Identity copy (models the loop-carried-aliasing copies that the
    /// non-unrolled looped collective-einsum incurs, §5.4.1).
    Copy,
    /// Einsum / general dot product.
    Einsum(DotDims),
    /// Gather shards from all partitions in each group and concatenate along
    /// `dim` (output `dim` is `group_size` × larger).
    AllGather {
        /// Concatenation dimension.
        dim: usize,
        /// Participating partition groups.
        groups: ReplicaGroups,
        /// Wire encoding of the transferred shards (lossless by
        /// default; quantized formats shrink wire bytes at a bounded
        /// accuracy cost, see `overlap-quant`).
        #[serde(default, skip_serializing_if = "WireFormat::is_lossless")]
        wire: WireFormat,
    },
    /// Elementwise-sum over the group, then keep this partition's shard of
    /// `dim` (output `dim` is `group_size` × smaller).
    ReduceScatter {
        /// Scatter dimension.
        dim: usize,
        /// Participating partition groups.
        groups: ReplicaGroups,
        /// Wire encoding of the transferred partial sums. Quantized
        /// reductions encode each participant's contribution once
        /// before summation (EQuARX-style), so error grows with the
        /// group size, not with ring hops.
        #[serde(default, skip_serializing_if = "WireFormat::is_lossless")]
        wire: WireFormat,
    },
    /// Elementwise-sum over the group, replicated result.
    AllReduce {
        /// Participating partition groups.
        groups: ReplicaGroups,
        /// Wire encoding of the transferred contributions (see
        /// [`Op::ReduceScatter`]'s `wire`).
        #[serde(default, skip_serializing_if = "WireFormat::is_lossless")]
        wire: WireFormat,
    },
    /// Split along `split_dim`, exchange shards within the group, and
    /// concatenate along `concat_dim` (shape-preserving when the dims match).
    AllToAll {
        /// Dimension split into `group_size` shards.
        split_dim: usize,
        /// Dimension along which received shards concatenate.
        concat_dim: usize,
        /// Participating partition groups.
        groups: ReplicaGroups,
    },
    /// Synchronous point-to-point exchange: partition `src` sends its
    /// operand to `dst` for each pair. Partitions that are not a destination
    /// receive zeros (XLA semantics).
    CollectivePermute {
        /// `(source, destination)` pairs; destinations must be distinct.
        pairs: Vec<(u32, u32)>,
        /// Wire encoding of the exchanged shards.
        #[serde(default, skip_serializing_if = "WireFormat::is_lossless")]
        wire: WireFormat,
    },
    /// Non-blocking start of a collective permute (§5.2). The result is an
    /// in-flight token consumed by exactly one `CollectivePermuteDone`.
    CollectivePermuteStart {
        /// `(source, destination)` pairs; destinations must be distinct.
        pairs: Vec<(u32, u32)>,
        /// Wire encoding of the in-flight transfer; the paired
        /// `CollectivePermuteDone` observes the dequantized data.
        #[serde(default, skip_serializing_if = "WireFormat::is_lossless")]
        wire: WireFormat,
    },
    /// Blocks until the paired start's transfer has completed; yields the
    /// received data.
    CollectivePermuteDone,
    /// The executing device-partition id as a `u32` scalar.
    PartitionId,
}

impl Op {
    /// Short lowercase mnemonic used by the printer.
    #[must_use]
    pub fn mnemonic(&self) -> &'static str {
        match self {
            Op::Parameter { .. } => "parameter",
            Op::Constant { .. } => "constant",
            Op::ConstantTensor { .. } => "constant-tensor",
            Op::Iota { .. } => "iota",
            Op::Broadcast { .. } => "broadcast",
            Op::Reshape => "reshape",
            Op::Transpose { .. } => "transpose",
            Op::Slice { .. } => "slice",
            Op::DynamicSlice { .. } => "dynamic-slice",
            Op::DynamicUpdateSlice => "dynamic-update-slice",
            Op::Concatenate { .. } => "concatenate",
            Op::Pad { .. } => "pad",
            Op::Binary(k) => k.name(),
            Op::Unary(k) => k.name(),
            Op::Copy => "copy",
            Op::Einsum(_) => "einsum",
            Op::AllGather { .. } => "all-gather",
            Op::ReduceScatter { .. } => "reduce-scatter",
            Op::AllReduce { .. } => "all-reduce",
            Op::AllToAll { .. } => "all-to-all",
            Op::CollectivePermute { .. } => "collective-permute",
            Op::CollectivePermuteStart { .. } => "collective-permute-start",
            Op::CollectivePermuteDone => "collective-permute-done",
            Op::PartitionId => "partition-id",
        }
    }

    /// Collective classification, or `None` for non-collective ops.
    #[must_use]
    pub fn collective_kind(&self) -> Option<CollectiveOp> {
        match self {
            Op::AllGather { .. } => Some(CollectiveOp::AllGather),
            Op::ReduceScatter { .. } => Some(CollectiveOp::ReduceScatter),
            Op::AllReduce { .. } => Some(CollectiveOp::AllReduce),
            Op::AllToAll { .. } => Some(CollectiveOp::AllToAll),
            Op::CollectivePermute { .. } => Some(CollectiveOp::CollectivePermute),
            Op::CollectivePermuteStart { .. } => Some(CollectiveOp::CollectivePermuteStart),
            Op::CollectivePermuteDone => Some(CollectiveOp::CollectivePermuteDone),
            _ => None,
        }
    }

    /// Whether this op communicates between partitions (any collective).
    #[must_use]
    pub fn is_collective(&self) -> bool {
        self.collective_kind().is_some()
    }

    /// Whether this is an elementwise op (unary, binary or copy), i.e. a
    /// fusion-friendly op for the §5.4.3 fusion pass.
    #[must_use]
    pub fn is_elementwise(&self) -> bool {
        matches!(self, Op::Binary(_) | Op::Unary(_) | Op::Copy)
    }

    /// The permute pairs of a (synchronous or asynchronous-start) collective
    /// permute, if this is one.
    #[must_use]
    pub fn permute_pairs(&self) -> Option<&[(u32, u32)]> {
        match self {
            Op::CollectivePermute { pairs, .. } | Op::CollectivePermuteStart { pairs, .. } => {
                Some(pairs)
            }
            _ => None,
        }
    }

    /// The wire encoding this op transfers data in. Non-collective ops,
    /// `AllToAll`, and `CollectivePermuteDone` (which observes whatever
    /// its paired start put on the wire) report `Lossless`.
    #[must_use]
    pub fn wire(&self) -> WireFormat {
        match self {
            Op::AllGather { wire, .. }
            | Op::ReduceScatter { wire, .. }
            | Op::AllReduce { wire, .. }
            | Op::CollectivePermute { wire, .. }
            | Op::CollectivePermuteStart { wire, .. } => *wire,
            _ => WireFormat::Lossless,
        }
    }

    /// Returns this op with its wire encoding replaced.
    ///
    /// # Errors
    ///
    /// Returns [`HloError::Verification`] for ops that carry no wire
    /// annotation (only `AllGather`, `ReduceScatter`, `AllReduce` and
    /// the synchronous/start collective permutes do).
    pub fn with_wire(mut self, new_wire: WireFormat) -> Result<Op, HloError> {
        match &mut self {
            Op::AllGather { wire, .. }
            | Op::ReduceScatter { wire, .. }
            | Op::AllReduce { wire, .. }
            | Op::CollectivePermute { wire, .. }
            | Op::CollectivePermuteStart { wire, .. } => {
                *wire = new_wire;
                Ok(self)
            }
            other => Err(HloError::Verification(format!(
                "{} carries no wire annotation",
                other.mnemonic()
            ))),
        }
    }
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replica_groups_full() {
        let g = ReplicaGroups::full(4);
        assert_eq!(g.group_size(), 4);
        assert_eq!(g.num_groups(), 1);
        assert_eq!(g.rank_in_group(2), Some(2));
        g.validate(4).unwrap();
        assert!(g.validate(8).is_err());
    }

    #[test]
    fn replica_groups_subgroups() {
        let g = ReplicaGroups::new(vec![vec![0, 2], vec![1, 3]]).unwrap();
        assert_eq!(g.group_size(), 2);
        assert_eq!(g.num_groups(), 2);
        assert_eq!(g.group_containing(3), Some(&[1u32, 3][..]));
        assert_eq!(g.rank_in_group(3), Some(1));
        g.validate(4).unwrap();
    }

    #[test]
    fn replica_groups_reject_malformed() {
        assert!(ReplicaGroups::new(vec![]).is_err());
        assert!(ReplicaGroups::new(vec![vec![]]).is_err());
        assert!(ReplicaGroups::new(vec![vec![0, 1], vec![2]]).is_err());
        assert!(ReplicaGroups::new(vec![vec![0, 1], vec![1, 2]]).is_err());
    }

    #[test]
    fn collective_classification() {
        let ag = Op::AllGather {
            dim: 0,
            groups: ReplicaGroups::full(2),
            wire: WireFormat::Lossless,
        };
        assert_eq!(ag.collective_kind(), Some(CollectiveOp::AllGather));
        assert!(ag.is_collective());
        assert!(!Op::Copy.is_collective());
        assert!(Op::Copy.is_elementwise());
        assert!(!ag.is_elementwise());
    }

    #[test]
    fn permute_pairs_accessor() {
        let pairs = vec![(0, 1), (1, 0)];
        let cp = Op::CollectivePermute { pairs: pairs.clone(), wire: WireFormat::Lossless };
        let cps =
            Op::CollectivePermuteStart { pairs: pairs.clone(), wire: WireFormat::Lossless };
        assert_eq!(cp.permute_pairs(), Some(pairs.as_slice()));
        assert_eq!(cps.permute_pairs(), Some(pairs.as_slice()));
        assert_eq!(Op::CollectivePermuteDone.permute_pairs(), None);
    }

    #[test]
    fn wire_accessor_and_rewrite() {
        let pairs = vec![(0u32, 1u32), (1, 0)];
        let cp = Op::CollectivePermute { pairs, wire: WireFormat::Lossless };
        assert_eq!(cp.wire(), WireFormat::Lossless);
        let q = cp.with_wire(WireFormat::Bf16).unwrap();
        assert_eq!(q.wire(), WireFormat::Bf16);
        assert!(Op::Copy.with_wire(WireFormat::Bf16).is_err());
        assert!(Op::CollectivePermuteDone.with_wire(WireFormat::Bf16).is_err());
        assert_eq!(Op::CollectivePermuteDone.wire(), WireFormat::Lossless);
    }

    #[test]
    fn mnemonics_nonempty() {
        assert_eq!(Op::Reshape.mnemonic(), "reshape");
        assert_eq!(Op::Binary(BinaryKind::Add).to_string(), "add");
    }
}
