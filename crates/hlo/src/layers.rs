//! Cross-layer structure recovered from instruction names.
//!
//! The stacked window modules built by `overlap-models` prefix every
//! instruction of layer *k* with `L<k>.` (e.g. `L2.fwd_qkv`); every pass
//! in the pipeline derives generated names from the source instruction's
//! name (`L2.fwd_qkv.partial`, `L2.fwd_qkv.cp.1`, …), so the prefix —
//! and hence the layer structure — survives decomposition, asyncify,
//! fusion and CSE. [`LayerTags`] parses the prefixes back out and
//! normalizes them into a *monotone* per-instruction layer tag the
//! cross-layer windowed schedulers (`overlap-core`) can bound their
//! lookahead with.
//!
//! Monotonicity is the load-bearing invariant: after normalization,
//! `tag[user] >= tag[operand]` for every dataflow edge. It guarantees a
//! windowed scheduler can never deadlock — the dependence-minimal
//! unscheduled instruction of the lowest (resp. highest) incomplete
//! layer is always both ready and inside the window.

use crate::{InstrId, Module};

/// Per-instruction layer tags for one module, parsed from `L<k>.` name
/// prefixes and normalized to be monotone along dataflow edges.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LayerTags {
    tag: Vec<u32>,
    num_layers: u32,
}

/// Parses a leading `L<digits>.` prefix from an instruction name.
fn parse_prefix(name: &str) -> Option<u32> {
    let rest = name.strip_prefix('L')?;
    let digits: usize = rest.bytes().take_while(u8::is_ascii_digit).count();
    if digits == 0 || rest.as_bytes().get(digits) != Some(&b'.') {
        return None;
    }
    rest[..digits].parse().ok()
}

impl LayerTags {
    /// Derives the tags for `module`. Instructions without an `L<k>.`
    /// prefix inherit the maximum tag of their operands (layer 0 when
    /// they have none — parameters, index constants); prefixed
    /// instructions are also raised to that maximum, so the result is
    /// monotone even if a pass moved a value across the nominal
    /// boundary. Single-layer modules (no prefixes anywhere) come out
    /// with every tag 0 and [`LayerTags::num_layers`] = 1.
    #[must_use]
    pub fn of(module: &Module) -> Self {
        let n = module.len();
        let mut tag = vec![0u32; n];
        let mut num_layers = 1u32;
        for (id, ins) in module.iter() {
            let mut t = parse_prefix(ins.name()).unwrap_or(0);
            for &op in ins.operands() {
                if op.index() < n {
                    t = t.max(tag[op.index()]);
                }
            }
            tag[id.index()] = t;
            num_layers = num_layers.max(t + 1);
        }
        LayerTags { tag, num_layers }
    }

    /// The normalized layer of one instruction.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[must_use]
    pub fn layer_of(&self, id: InstrId) -> u32 {
        self.tag[id.index()]
    }

    /// Dense `InstrId`-indexed tag table.
    #[must_use]
    pub fn tags(&self) -> &[u32] {
        &self.tag
    }

    /// Number of distinct layers (`max tag + 1`; `1` for untagged
    /// modules, where a windowed scheduler has nothing to do).
    #[must_use]
    pub fn num_layers(&self) -> u32 {
        self.num_layers
    }

    /// Cross-layer dependence slack: the number of instructions whose
    /// operands all live in *strictly earlier* layers. These are exactly
    /// the instructions a cross-layer window can hoist ahead of the
    /// producing layer's stragglers (weight-ring permute chains, shard
    /// slices of already-final values), so the count is a cheap upper
    /// bound on how much a window > 1 can possibly help. Instructions
    /// with no operands (parameters, constants) are not counted.
    #[must_use]
    pub fn cross_layer_slack(&self, module: &Module) -> usize {
        let n = module.len();
        module
            .iter()
            .filter(|(id, ins)| {
                !ins.operands().is_empty()
                    && ins.operands().iter().all(|&op| {
                        op.index() < n && self.tag[op.index()] < self.tag[id.index()]
                    })
            })
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Builder, DType, DotDims, Shape};

    fn f32s(dims: &[usize]) -> Shape {
        Shape::new(DType::F32, dims.to_vec())
    }

    #[test]
    fn prefix_parsing_is_strict() {
        assert_eq!(parse_prefix("L0.fwd_qkv"), Some(0));
        assert_eq!(parse_prefix("L12.bwd_qkv_dw.cp.3"), Some(12));
        assert_eq!(parse_prefix("fwd_qkv"), None);
        assert_eq!(parse_prefix("L.x"), None);
        assert_eq!(parse_prefix("L3x"), None);
        assert_eq!(parse_prefix("Layer3.x"), None);
    }

    #[test]
    fn untagged_modules_are_single_layer() {
        let mut b = Builder::new("m", 1);
        let x = b.parameter(f32s(&[2, 3]), "x");
        let w = b.parameter(f32s(&[3, 4]), "w");
        let y = b.einsum(x, w, DotDims::matmul(), "y");
        let m = b.build(vec![y]);
        let tags = LayerTags::of(&m);
        assert_eq!(tags.num_layers(), 1);
        assert!(tags.tags().iter().all(|&t| t == 0));
        assert_eq!(tags.cross_layer_slack(&m), 0);
    }

    #[test]
    fn tags_are_monotone_along_edges() {
        // L1's einsum consumes an L0 value; an unprefixed copy of an L1
        // value must inherit the L1 tag (monotone normalization).
        let mut b = Builder::new("m", 1);
        let x = b.parameter(f32s(&[2, 3]), "L0.x");
        let w0 = b.parameter(f32s(&[3, 3]), "L0.w");
        let h = b.einsum(x, w0, DotDims::matmul(), "L0.h");
        let w1 = b.parameter(f32s(&[3, 4]), "L1.w");
        let y = b.einsum(h, w1, DotDims::matmul(), "L1.y");
        let c = b.copy(y, "untagged_copy");
        let m = b.build(vec![c]);
        let tags = LayerTags::of(&m);
        assert_eq!(tags.num_layers(), 2);
        assert_eq!(tags.layer_of(h), 0);
        assert_eq!(tags.layer_of(y), 1);
        assert_eq!(tags.layer_of(c), 1);
        for (id, ins) in m.iter() {
            for &op in ins.operands() {
                assert!(tags.layer_of(op) <= tags.layer_of(id));
            }
        }
        // Slack: only L1.y has all operands strictly below its layer?
        // No — its lhs `h` is L0 but `w1` is L1 (parameter prefixed L1),
        // and parameters have no operands. w1 is a parameter (skipped);
        // y's operands are h (L0) and w1 (L1) -> not all strictly lower.
        assert_eq!(tags.cross_layer_slack(&m), 0);
    }

    #[test]
    fn slack_counts_hoistable_instructions() {
        let mut b = Builder::new("m", 1);
        let x = b.parameter(f32s(&[2, 3]), "L0.x");
        let w0 = b.parameter(f32s(&[3, 3]), "L0.w");
        let h = b.einsum(x, w0, DotDims::matmul(), "L0.h");
        // An L1 op whose only operand is the finished L0 output: pure
        // cross-layer slack (a window >= 2 can issue it during L0).
        let c = b.copy(h, "L1.stage");
        let w1 = b.parameter(f32s(&[3, 4]), "L1.w");
        let y = b.einsum(c, w1, DotDims::matmul(), "L1.y");
        let m = b.build(vec![y]);
        let tags = LayerTags::of(&m);
        assert_eq!(tags.cross_layer_slack(&m), 1);
    }
}
