//! Structural fingerprints: the content-addressed identity of a module.
//!
//! The artifact cache (in `overlap-core`) keys compiled artifacts by
//! *what a module computes*, not how its arena happens to be laid out,
//! so the key must be:
//!
//! - **stable across serde round-trips** — the hash reads semantic
//!   fields only, never pointer identities or iteration order of
//!   anything unordered;
//! - **stable under renaming** — instruction names and pass tags are
//!   reporting metadata; two modules differing only in names compute
//!   the same function and may share compiled artifacts (the cache
//!   separately guards exact identity before serving a hit, see
//!   [`Module::identity_fingerprint`]);
//! - **independent of arena order** — each instruction hashes as
//!   `H(op payload, shape, operand hashes…)`, a Merkle hash of its
//!   dataflow cone, so any topological re-numbering of the same DAG
//!   fingerprints identically;
//! - **sensitive to every structural edit** — op payloads hash all
//!   their fields (dot dims, replica groups, permute pairs, constants
//!   by exact `f64` bits), shapes hash dtype and dims, and the module
//!   hash covers the instruction multiset, the ordered outputs, the
//!   partition count and the fusion partition.
//!
//! Fingerprinting never panics, even on garbage: operand ids that are
//! out of range or violate use-after-def hash as a marker plus the raw
//! id (such modules fail [`Module::verify`]; they still need a distinct
//! fingerprint so a corrupt cache file can be detected by mismatch).

use overlap_json::{Fingerprint, StableHasher};

use crate::{DotDims, Module, Op, ReplicaGroups, Shape, WireFormat};

fn hash_shape(h: &mut StableHasher, shape: &Shape) {
    h.write_str("shape");
    h.write_str(&format!("{:?}", shape.dtype()));
    h.write_usize(shape.rank());
    for &d in shape.dims() {
        h.write_usize(d);
    }
}

fn hash_groups(h: &mut StableHasher, groups: &ReplicaGroups) {
    // Group order and within-group order are semantic (they define ring
    // neighbors and ranks), so both hash in order.
    h.write_usize(groups.num_groups());
    for g in groups.groups() {
        h.write_usize(g.len());
        for &pid in g {
            h.write_u32(pid);
        }
    }
}

fn hash_dot_dims(h: &mut StableHasher, dims: &DotDims) {
    // Pair order is semantic: it fixes the output dimension layout.
    h.write_usize(dims.batch().len());
    for &(l, r) in dims.batch() {
        h.write_usize(l);
        h.write_usize(r);
    }
    h.write_usize(dims.contracting().len());
    for &(l, r) in dims.contracting() {
        h.write_usize(l);
        h.write_usize(r);
    }
}

fn hash_pairs(h: &mut StableHasher, pairs: &[(u32, u32)]) {
    h.write_usize(pairs.len());
    for &(s, d) in pairs {
        h.write_u32(s);
        h.write_u32(d);
    }
}

/// Hashes a collective's wire encoding. Lossless (the only encoding that
/// existed before precision annotations) contributes no bytes, so every
/// pre-existing fingerprint is preserved verbatim.
fn hash_wire(h: &mut StableHasher, wire: WireFormat) {
    if !wire.is_lossless() {
        h.write_str("wire");
        wire.write_to(h);
    }
}

/// Hashes the op discriminant and every payload field (never operands).
fn hash_op(h: &mut StableHasher, op: &Op) {
    h.write_str(op.mnemonic());
    match op {
        Op::Parameter { index } => h.write_usize(*index),
        Op::Constant { value } => h.write_f64(*value),
        Op::ConstantTensor { values } => {
            h.write_usize(values.len());
            for &v in values {
                h.write_f64(v);
            }
        }
        Op::Iota { dim } | Op::Concatenate { dim } => h.write_usize(*dim),
        Op::Broadcast { operand_dims } => {
            h.write_usize(operand_dims.len());
            for &d in operand_dims {
                h.write_usize(d);
            }
        }
        Op::Transpose { perm } => {
            h.write_usize(perm.len());
            for &d in perm {
                h.write_usize(d);
            }
        }
        Op::Slice { starts, limits } => {
            h.write_usize(starts.len());
            for (&s, &l) in starts.iter().zip(limits) {
                h.write_usize(s);
                h.write_usize(l);
            }
        }
        Op::DynamicSlice { sizes } => {
            h.write_usize(sizes.len());
            for &s in sizes {
                h.write_usize(s);
            }
        }
        Op::Pad { config } => {
            h.write_usize(config.len());
            for p in config {
                h.write_usize(p.low);
                h.write_usize(p.high);
            }
        }
        // Binary/Unary kinds are covered by the mnemonic (each kind has
        // a distinct one).
        Op::Binary(_) | Op::Unary(_) => {}
        Op::Einsum(dims) => hash_dot_dims(h, dims),
        Op::AllGather { dim, groups, wire } | Op::ReduceScatter { dim, groups, wire } => {
            h.write_usize(*dim);
            hash_groups(h, groups);
            hash_wire(h, *wire);
        }
        Op::AllReduce { groups, wire } => {
            hash_groups(h, groups);
            hash_wire(h, *wire);
        }
        Op::AllToAll { split_dim, concat_dim, groups } => {
            h.write_usize(*split_dim);
            h.write_usize(*concat_dim);
            hash_groups(h, groups);
        }
        Op::CollectivePermute { pairs, wire } | Op::CollectivePermuteStart { pairs, wire } => {
            hash_pairs(h, pairs);
            hash_wire(h, *wire);
        }
        Op::Reshape
        | Op::DynamicUpdateSlice
        | Op::Copy
        | Op::CollectivePermuteDone
        | Op::PartitionId => {}
    }
}

/// Merkle hashes of every instruction's dataflow cone, in arena order.
/// `hashes[i]` depends only on instruction `i`'s op payload, shape, and
/// its operands' hashes — not on names, tags or arena positions.
fn instruction_hashes(module: &Module) -> Vec<Fingerprint> {
    let mut hashes: Vec<Fingerprint> = Vec::with_capacity(module.len());
    for (i, ins) in module.instrs.iter().enumerate() {
        let mut h = StableHasher::new("overlap-instr-v1");
        hash_op(&mut h, &ins.op);
        hash_shape(&mut h, &ins.shape);
        h.write_usize(ins.operands.len());
        for &op in &ins.operands {
            if op.index() < i {
                h.write_fingerprint(hashes[op.index()]);
            } else {
                // Forward or self reference: verify() rejects these, but
                // the fingerprint must still be total and distinct.
                h.write_str("!bad-operand");
                h.write_usize(op.index());
            }
        }
        hashes.push(h.finish());
    }
    hashes
}

impl Module {
    /// The module's structural fingerprint: a stable 128-bit content
    /// hash of the computation — instructions (as a multiset of Merkle
    /// cone hashes), ordered entry outputs, partition count and fusion
    /// grouping. Stable across serde round-trips, instruction renaming
    /// and topological arena re-numbering; changed by any structural
    /// edit (shapes, op payloads, operand wiring, replica groups, dot
    /// dims, outputs, fusion membership).
    ///
    /// This is the artifact cache's key component. It deliberately
    /// ignores names/tags; callers needing exact-bytes identity (the
    /// cache's hit guard) use [`Module::identity_fingerprint`].
    #[must_use]
    pub fn fingerprint(&self) -> Fingerprint {
        let hashes = instruction_hashes(self);
        let mut h = StableHasher::new("overlap-module-v1");
        h.write_usize(self.num_partitions);
        // The instruction multiset, order-independently: XOR-fold the
        // cone hashes (count separately, so duplicating an instruction
        // pair can't cancel out).
        h.write_usize(self.instrs.len());
        let folded = hashes
            .iter()
            .fold(Fingerprint::neutral(), |acc, &fp| acc.fold_unordered(fp));
        h.write_fingerprint(folded);
        // Entry outputs, in order (output order is semantic).
        h.write_usize(self.outputs.len());
        for &out in &self.outputs {
            match hashes.get(out.index()) {
                Some(&fp) => h.write_fingerprint(fp),
                None => {
                    h.write_str("!bad-output");
                    h.write_usize(out.index());
                }
            }
        }
        // Fusion groups: membership is a partition of the instruction
        // set, so groups fold order-independently; members within a
        // group hash in order (their topological execution order).
        h.write_usize(self.fusion_groups.len());
        let mut fused = Fingerprint::neutral();
        for g in &self.fusion_groups {
            let mut gh = StableHasher::new("overlap-fusion-v1");
            gh.write_usize(g.members.len());
            for &m in &g.members {
                match hashes.get(m.index()) {
                    Some(&fp) => gh.write_fingerprint(fp),
                    None => {
                        gh.write_str("!bad-member");
                        gh.write_usize(m.index());
                    }
                }
            }
            match hashes.get(g.root.index()) {
                Some(&fp) => gh.write_fingerprint(fp),
                None => {
                    gh.write_str("!bad-root");
                    gh.write_usize(g.root.index());
                }
            }
            fused = fused.fold_unordered(gh.finish());
        }
        h.write_fingerprint(fused);
        h.finish()
    }

    /// Exact-identity fingerprint: hashes *every* serialized field —
    /// names, tags, raw operand ids, arena order, outputs, fusion
    /// groups. Two modules share this fingerprint iff they are `==`
    /// (up to hash collision). The artifact cache re-checks this on
    /// every hit so a structural-key collision or a renamed lookalike
    /// recompiles instead of returning a not-bit-identical artifact.
    #[must_use]
    pub fn identity_fingerprint(&self) -> Fingerprint {
        let mut h = StableHasher::new("overlap-module-identity-v1");
        h.write_str(&self.name);
        h.write_usize(self.num_partitions);
        h.write_usize(self.instrs.len());
        for ins in &self.instrs {
            h.write_str(&ins.name);
            match &ins.tag {
                Some(tag) => {
                    h.write_bool(true);
                    h.write_str(tag);
                }
                None => h.write_bool(false),
            }
            hash_op(&mut h, &ins.op);
            hash_shape(&mut h, &ins.shape);
            h.write_usize(ins.operands.len());
            for &op in &ins.operands {
                h.write_usize(op.index());
            }
        }
        h.write_usize(self.outputs.len());
        for &out in &self.outputs {
            h.write_usize(out.index());
        }
        h.write_usize(self.fusion_groups.len());
        for g in &self.fusion_groups {
            h.write_usize(g.members.len());
            for &m in &g.members {
                h.write_usize(m.index());
            }
            h.write_usize(g.root.index());
        }
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Builder, DType, FusionGroup, InstrId};

    fn sample(names: [&str; 4]) -> Module {
        let mut b = Builder::new("fp", 4);
        let x = b.parameter(Shape::new(DType::F32, vec![16, 8]), names[0]);
        let w = b.parameter(Shape::new(DType::F32, vec![8, 32]), names[1]);
        let wf = b.all_gather(w, 1, crate::ReplicaGroups::full(4), names[2]);
        let y = b.einsum(x, wf, DotDims::matmul(), names[3]);
        b.build(vec![y])
    }

    #[test]
    fn renaming_preserves_structural_but_not_identity() {
        let a = sample(["x", "w", "wf", "y"]);
        let b = sample(["alpha", "beta", "gamma", "delta"]);
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_ne!(a.identity_fingerprint(), b.identity_fingerprint());
        assert_eq!(a.identity_fingerprint(), sample(["x", "w", "wf", "y"]).identity_fingerprint());
    }

    #[test]
    fn structural_edits_change_the_fingerprint() {
        let base = sample(["x", "w", "wf", "y"]);
        let fp = base.fingerprint();

        // Different partition count (identical graph text otherwise).
        let plain = |n: usize| {
            let mut b = Builder::new("fp", n);
            let x = b.parameter(Shape::new(DType::F32, vec![16, 8]), "x");
            let w = b.parameter(Shape::new(DType::F32, vec![8, 32]), "w");
            let y = b.einsum(x, w, DotDims::matmul(), "y");
            b.build(vec![y])
        };
        assert_ne!(plain(4).fingerprint(), plain(8).fingerprint());

        // Different shape.
        let mut b = Builder::new("fp", 4);
        let x = b.parameter(Shape::new(DType::F32, vec![16, 8]), "x");
        let w = b.parameter(Shape::new(DType::BF16, vec![8, 32]), "w");
        let wf = b.all_gather(w, 1, crate::ReplicaGroups::full(4), "wf");
        let _ = x;
        assert_ne!(b.build(vec![wf]).fingerprint(), fp);

        // Fusion grouping participates.
        let grouped = base
            .clone()
            .with_fusion_groups(vec![FusionGroup {
                members: vec![InstrId::from_index(3)],
                root: InstrId::from_index(3),
            }])
            .unwrap();
        assert_ne!(grouped.fingerprint(), base.fingerprint());
    }

    #[test]
    fn corrupt_modules_fingerprint_without_panicking() {
        let mut m = sample(["x", "w", "wf", "y"]);
        let fp = m.fingerprint();
        // Dangling operand and out-of-range output: verify() rejects
        // both, and each must still hash, distinctly from the original.
        m.instrs[3].operands[0] = InstrId::from_index(99);
        let dangling = m.fingerprint();
        assert_ne!(dangling, fp);
        m.outputs[0] = InstrId::from_index(77);
        assert_ne!(m.fingerprint(), dangling);
    }
}
