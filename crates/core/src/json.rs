//! JSON codecs for the pipeline's [`Compiled`] bundle.
//!
//! The artifact cache persists compiled bundles to disk through these
//! impls (see [`crate::ArtifactCache`]); the layout mirrors what
//! `#[derive(Serialize)]` would emit — externally tagged enums, fields in
//! declaration order — so the files read naturally next to the other
//! JSON the workspace writes.
//!
//! Decoding is defensive, not trusting: a decoded bundle comes from an
//! arbitrary file, so the cache re-verifies the module and re-checks
//! fingerprints before serving it (see `cache.rs`). Nothing here
//! validates cross-references like instruction ids.

use overlap_hlo::WireFormat;
use overlap_json::{FromJson, Json, ToJson};

use crate::costgate::GateDecision;
use crate::decompose::{DecomposeOptions, DecomposeSummary};
use crate::fusion::FusionOptions;
use crate::pattern::{AgCase, Pattern, PatternKind};
use crate::pipeline::{FallbackRecord, OverlapOptions, SchedulerKind};
use crate::profile::{PhaseTiming, PhaseTimings};
use crate::strategy::{
    FusionAggressiveness, PartitionHint, PatternStrategy, RingDirection, StrategySpec,
};

impl ToJson for AgCase {
    fn to_json(&self) -> Json {
        Json::from(match self {
            AgCase::Free => "Free",
            AgCase::Contracting => "Contracting",
            AgCase::Batch => "Batch",
        })
    }
}

impl FromJson for AgCase {
    fn from_json(v: &Json) -> Result<AgCase, String> {
        match v.as_str() {
            Some("Free") => Ok(AgCase::Free),
            Some("Contracting") => Ok(AgCase::Contracting),
            Some("Batch") => Ok(AgCase::Batch),
            _ => Err(format!("expected AgCase, got {v}")),
        }
    }
}

impl ToJson for PatternKind {
    fn to_json(&self) -> Json {
        match self {
            PatternKind::AllGatherEinsum { gathered_is_lhs, case } => Json::obj().with(
                "AllGatherEinsum",
                Json::obj()
                    .with("gathered_is_lhs", *gathered_is_lhs)
                    .with("case", case.to_json()),
            ),
            PatternKind::EinsumReduceScatter { sliced_is_lhs, sliced_dim } => Json::obj().with(
                "EinsumReduceScatter",
                Json::obj()
                    .with("sliced_is_lhs", *sliced_is_lhs)
                    .with("sliced_dim", *sliced_dim as u64),
            ),
        }
    }
}

impl FromJson for PatternKind {
    fn from_json(v: &Json) -> Result<PatternKind, String> {
        if let Some(p) = v.get("AllGatherEinsum") {
            return Ok(PatternKind::AllGatherEinsum {
                gathered_is_lhs: p.decode_field("gathered_is_lhs")?,
                case: p.decode_field("case")?,
            });
        }
        if let Some(p) = v.get("EinsumReduceScatter") {
            return Ok(PatternKind::EinsumReduceScatter {
                sliced_is_lhs: p.decode_field("sliced_is_lhs")?,
                sliced_dim: p.decode_field("sliced_dim")?,
            });
        }
        Err(format!("expected PatternKind, got {v}"))
    }
}

impl ToJson for Pattern {
    fn to_json(&self) -> Json {
        Json::obj()
            .with("einsum", self.einsum.to_json())
            .with("collective", self.collective.to_json())
            .with("kind", self.kind.to_json())
    }
}

impl FromJson for Pattern {
    fn from_json(v: &Json) -> Result<Pattern, String> {
        Ok(Pattern {
            einsum: v.decode_field("einsum")?,
            collective: v.decode_field("collective")?,
            kind: v.decode_field("kind")?,
        })
    }
}

impl ToJson for GateDecision {
    fn to_json(&self) -> Json {
        Json::obj()
            .with("pattern", self.pattern.to_json())
            .with("comp_t", self.comp_t)
            .with("comm_t", self.comm_t)
            .with("comm_t_ring", self.comm_t_ring)
            .with("extra_t", self.extra_t)
            .with("comp_d", self.comp_d)
            .with("beneficial", self.beneficial)
            .with("bidirectional", self.bidirectional)
    }
}

impl FromJson for GateDecision {
    fn from_json(v: &Json) -> Result<GateDecision, String> {
        Ok(GateDecision {
            pattern: v.decode_field("pattern")?,
            comp_t: v.decode_field("comp_t")?,
            comm_t: v.decode_field("comm_t")?,
            comm_t_ring: v.decode_field("comm_t_ring")?,
            extra_t: v.decode_field("extra_t")?,
            comp_d: v.decode_field("comp_d")?,
            beneficial: v.decode_field("beneficial")?,
            bidirectional: v.decode_field("bidirectional")?,
        })
    }
}

impl ToJson for DecomposeSummary {
    fn to_json(&self) -> Json {
        Json::obj()
            .with("einsum", self.einsum.as_str())
            .with("group_size", self.group_size as u64)
            .with("partial_einsums", self.partial_einsums as u64)
            .with("permutes", self.permutes as u64)
            .with("bidirectional", self.bidirectional)
            .with("unrolled", self.unrolled)
            .with("chunk", self.chunk as u64)
            .with("unroll_fallback", self.unroll_fallback.to_json())
            .with("bidirectional_fallback", self.bidirectional_fallback.to_json())
            .with("chunk_fallback", self.chunk_fallback.to_json())
    }
}

impl FromJson for DecomposeSummary {
    fn from_json(v: &Json) -> Result<DecomposeSummary, String> {
        // The chunk/fallback fields decode leniently (absent => the
        // pre-strategy defaults): the cache's VERSION bump already
        // invalidates old disk entries, but hand-written summaries in
        // tests and tools stay valid.
        let opt_reason = |field: &str| -> Result<Option<String>, String> {
            match v.get(field) {
                None => Ok(None),
                Some(j) => Option::<String>::from_json(j),
            }
        };
        Ok(DecomposeSummary {
            einsum: v.decode_field("einsum")?,
            group_size: v.decode_field("group_size")?,
            partial_einsums: v.decode_field("partial_einsums")?,
            permutes: v.decode_field("permutes")?,
            bidirectional: v.decode_field("bidirectional")?,
            unrolled: v.decode_field("unrolled")?,
            chunk: match v.get("chunk") {
                None => 1,
                Some(j) => usize::from_json(j)?,
            },
            unroll_fallback: opt_reason("unroll_fallback")?,
            bidirectional_fallback: opt_reason("bidirectional_fallback")?,
            chunk_fallback: opt_reason("chunk_fallback")?,
        })
    }
}

impl ToJson for FallbackRecord {
    fn to_json(&self) -> Json {
        Json::obj()
            .with("einsum", self.einsum.as_str())
            .with("reason", self.reason.as_str())
    }
}

impl FromJson for FallbackRecord {
    fn from_json(v: &Json) -> Result<FallbackRecord, String> {
        Ok(FallbackRecord {
            einsum: v.decode_field("einsum")?,
            reason: v.decode_field("reason")?,
        })
    }
}

impl ToJson for DecomposeOptions {
    fn to_json(&self) -> Json {
        let j = Json::obj()
            .with("unroll", self.unroll)
            .with("bidirectional", self.bidirectional)
            .with("pad_max_concat", self.pad_max_concat)
            .with("chunk", self.chunk as u64);
        // Emitted only when quantized so lossless option files and cached
        // bundles stay byte-identical to pre-precision ones.
        if self.wire.is_lossless() {
            j
        } else {
            j.with("wire", self.wire.to_json())
        }
    }
}

impl FromJson for DecomposeOptions {
    fn from_json(v: &Json) -> Result<DecomposeOptions, String> {
        Ok(DecomposeOptions {
            unroll: v.decode_field("unroll")?,
            bidirectional: v.decode_field("bidirectional")?,
            pad_max_concat: v.decode_field("pad_max_concat")?,
            chunk: match v.get("chunk") {
                None => 1,
                Some(j) => usize::from_json(j)?,
            },
            wire: decode_wire(v)?,
        })
    }
}

/// Reads an optional `wire` field (absent ⇒ lossless).
fn decode_wire(v: &Json) -> Result<WireFormat, String> {
    match v.get("wire") {
        None => Ok(WireFormat::Lossless),
        Some(j) => WireFormat::from_json(j).map_err(|e| format!("field \"wire\": {e}")),
    }
}

impl ToJson for FusionOptions {
    fn to_json(&self) -> Json {
        Json::obj().with("overlap_aware", self.overlap_aware)
    }
}

impl FromJson for FusionOptions {
    fn from_json(v: &Json) -> Result<FusionOptions, String> {
        Ok(FusionOptions { overlap_aware: v.decode_field("overlap_aware")? })
    }
}

impl ToJson for RingDirection {
    fn to_json(&self) -> Json {
        Json::from(match self {
            RingDirection::Unidirectional => "Unidirectional",
            RingDirection::Bidirectional => "Bidirectional",
        })
    }
}

impl FromJson for RingDirection {
    fn from_json(v: &Json) -> Result<RingDirection, String> {
        match v.as_str() {
            Some("Unidirectional") => Ok(RingDirection::Unidirectional),
            Some("Bidirectional") => Ok(RingDirection::Bidirectional),
            _ => Err(format!("expected RingDirection, got {v}")),
        }
    }
}

impl ToJson for FusionAggressiveness {
    fn to_json(&self) -> Json {
        Json::from(match self {
            FusionAggressiveness::Off => "Off",
            FusionAggressiveness::Conservative => "Conservative",
            FusionAggressiveness::OverlapAware => "OverlapAware",
        })
    }
}

impl FromJson for FusionAggressiveness {
    fn from_json(v: &Json) -> Result<FusionAggressiveness, String> {
        match v.as_str() {
            Some("Off") => Ok(FusionAggressiveness::Off),
            Some("Conservative") => Ok(FusionAggressiveness::Conservative),
            Some("OverlapAware") => Ok(FusionAggressiveness::OverlapAware),
            _ => Err(format!("expected FusionAggressiveness, got {v}")),
        }
    }
}

impl ToJson for PartitionHint {
    fn to_json(&self) -> Json {
        Json::from(match self {
            PartitionHint::Auto => "Auto",
            PartitionHint::OneD => "OneD",
            PartitionHint::TwoD => "TwoD",
        })
    }
}

impl FromJson for PartitionHint {
    fn from_json(v: &Json) -> Result<PartitionHint, String> {
        match v.as_str() {
            Some("Auto") => Ok(PartitionHint::Auto),
            Some("OneD") => Ok(PartitionHint::OneD),
            Some("TwoD") => Ok(PartitionHint::TwoD),
            _ => Err(format!("expected PartitionHint, got {v}")),
        }
    }
}

impl ToJson for PatternStrategy {
    fn to_json(&self) -> Json {
        let j = Json::obj()
            .with("chunk", self.chunk as u64)
            .with("unroll", self.unroll)
            .with("ring", self.ring.to_json())
            .with("pad_max_concat", self.pad_max_concat);
        // Emitted only when quantized so lossless strategy files stay
        // byte-identical to pre-precision ones.
        if self.wire.is_lossless() {
            j
        } else {
            j.with("wire", self.wire.to_json())
        }
    }
}

impl FromJson for PatternStrategy {
    fn from_json(v: &Json) -> Result<PatternStrategy, String> {
        Ok(PatternStrategy {
            chunk: v.decode_field("chunk")?,
            unroll: v.decode_field("unroll")?,
            ring: v.decode_field("ring")?,
            pad_max_concat: v.decode_field("pad_max_concat")?,
            wire: decode_wire(v)?,
        })
    }
}

impl ToJson for StrategySpec {
    fn to_json(&self) -> Json {
        let j = Json::obj()
            .with("all_gather", self.all_gather.to_json())
            .with("reduce_scatter", self.reduce_scatter.to_json())
            .with("fusion", self.fusion.to_json())
            .with("partitioning", self.partitioning.to_json());
        // Emitted only when widened so `window_layers = 1` strategy files
        // and cached bundles stay byte-identical to pre-window ones.
        if self.window_layers > 1 {
            j.with("window_layers", self.window_layers as u64)
        } else {
            j
        }
    }
}

impl FromJson for StrategySpec {
    fn from_json(v: &Json) -> Result<StrategySpec, String> {
        Ok(StrategySpec {
            all_gather: v.decode_field("all_gather")?,
            reduce_scatter: v.decode_field("reduce_scatter")?,
            fusion: v.decode_field("fusion")?,
            partitioning: v.decode_field("partitioning")?,
            window_layers: match v.get("window_layers") {
                None => 1,
                Some(j) => usize::from_json(j)?,
            },
        })
    }
}

impl ToJson for SchedulerKind {
    fn to_json(&self) -> Json {
        Json::from(match self {
            SchedulerKind::BottomUp => "BottomUp",
            SchedulerKind::TopDown => "TopDown",
            SchedulerKind::Original => "Original",
        })
    }
}

impl FromJson for SchedulerKind {
    fn from_json(v: &Json) -> Result<SchedulerKind, String> {
        match v.as_str() {
            Some("BottomUp") => Ok(SchedulerKind::BottomUp),
            Some("TopDown") => Ok(SchedulerKind::TopDown),
            Some("Original") => Ok(SchedulerKind::Original),
            _ => Err(format!("expected SchedulerKind, got {v}")),
        }
    }
}

impl ToJson for OverlapOptions {
    fn to_json(&self) -> Json {
        let j = Json::obj()
            .with("strategy", self.strategy.to_json())
            .with("scheduler", self.scheduler.to_json())
            .with("disable_cost_gate", self.disable_cost_gate)
            .with("split_all_reduce", self.split_all_reduce);
        // Emitted only when set so budget-free option files stay
        // byte-identical to pre-precision ones.
        match self.error_budget {
            None => j,
            Some(b) => j.with("error_budget", b),
        }
    }
}

impl FromJson for OverlapOptions {
    fn from_json(v: &Json) -> Result<OverlapOptions, String> {
        Ok(OverlapOptions {
            strategy: v.decode_field("strategy")?,
            scheduler: v.decode_field("scheduler")?,
            disable_cost_gate: v.decode_field("disable_cost_gate")?,
            split_all_reduce: v.decode_field("split_all_reduce")?,
            error_budget: match v.get("error_budget") {
                None => None,
                Some(j) => Some(f64::from_json(j).map_err(|e| {
                    format!("field \"error_budget\": {e}")
                })?),
            },
        })
    }
}

impl ToJson for PhaseTiming {
    fn to_json(&self) -> Json {
        Json::obj().with("phase", self.phase.as_str()).with("seconds", self.seconds)
    }
}

impl FromJson for PhaseTiming {
    fn from_json(v: &Json) -> Result<PhaseTiming, String> {
        Ok(PhaseTiming { phase: v.decode_field("phase")?, seconds: v.decode_field("seconds")? })
    }
}

impl ToJson for PhaseTimings {
    fn to_json(&self) -> Json {
        Json::obj().with("phases", self.phases().to_json())
    }
}

impl FromJson for PhaseTimings {
    fn from_json(v: &Json) -> Result<PhaseTimings, String> {
        let phases: Vec<PhaseTiming> = v.decode_field("phases")?;
        let mut out = PhaseTimings::new();
        for p in phases {
            out.record(&p.phase, p.seconds);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use overlap_hlo::InstrId;

    use super::*;

    fn sample_decisions() -> Vec<GateDecision> {
        vec![
            GateDecision {
                pattern: Pattern {
                    einsum: InstrId::from_json(&Json::from(3u64)).unwrap(),
                    collective: InstrId::from_json(&Json::from(2u64)).unwrap(),
                    kind: PatternKind::AllGatherEinsum {
                        gathered_is_lhs: false,
                        case: AgCase::Contracting,
                    },
                },
                comp_t: 1.25e-3,
                comm_t: 7.5e-4,
                comm_t_ring: 9.1e-4,
                extra_t: 3.0e-5,
                comp_d: 1.3e-3,
                beneficial: true,
                bidirectional: true,
            },
            GateDecision {
                pattern: Pattern {
                    einsum: InstrId::from_json(&Json::from(9u64)).unwrap(),
                    collective: InstrId::from_json(&Json::from(11u64)).unwrap(),
                    kind: PatternKind::EinsumReduceScatter {
                        sliced_is_lhs: true,
                        sliced_dim: 1,
                    },
                },
                comp_t: 0.5,
                comm_t: 0.25,
                comm_t_ring: 0.5,
                extra_t: 0.125,
                comp_d: 0.5,
                beneficial: false,
                bidirectional: false,
            },
        ]
    }

    #[test]
    fn bundle_parts_roundtrip_losslessly() {
        let decisions = sample_decisions();
        let text = decisions.to_json().to_string();
        let back = Vec::<GateDecision>::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, decisions);

        let summaries = vec![DecomposeSummary {
            einsum: "y".into(),
            group_size: 8,
            partial_einsums: 8,
            permutes: 9,
            bidirectional: true,
            unrolled: true,
            chunk: 2,
            unroll_fallback: None,
            bidirectional_fallback: Some("even group required".into()),
            chunk_fallback: None,
        }];
        let text = summaries.to_json().to_string();
        let back = Vec::<DecomposeSummary>::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, summaries);

        let mut timings = PhaseTimings::new();
        timings.record("decompose", 0.125);
        timings.record("schedule", 3.5e-2);
        let text = timings.to_json().to_string();
        let back = PhaseTimings::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, timings);
    }

    #[test]
    fn overlap_options_roundtrip_and_fingerprint_agree() {
        use crate::pipeline::OverlapOptions;
        let base = OverlapOptions::paper_default();
        let variants = [
            base,
            OverlapOptions::default(),
            OverlapOptions {
                scheduler: crate::SchedulerKind::TopDown,
                disable_cost_gate: true,
                ..base
            },
            OverlapOptions {
                strategy: StrategySpec::paper_default()
                    .with_ring(RingDirection::Unidirectional)
                    .with_unroll(false)
                    .with_pad_max_concat(true)
                    .with_chunk(4),
                scheduler: crate::SchedulerKind::Original,
                split_all_reduce: true,
                ..base
            },
        ];
        for o in variants {
            let text = o.to_json().to_string();
            let back = OverlapOptions::from_json(&Json::parse(&text).unwrap()).unwrap();
            assert_eq!(back, o);
            assert_eq!(back.fingerprint(), o.fingerprint());
        }
        assert!(OverlapOptions::from_json(&Json::obj()).is_err());
        let bad = base.to_json().with("scheduler", "Sideways");
        assert!(OverlapOptions::from_json(&bad).is_err());
    }

    #[test]
    fn strategy_spec_fingerprint_survives_json_roundtrip() {
        // Satellite: a StrategySpec's fingerprint must be stable across a
        // JSON round-trip (the autotuner memoizes verdicts by it), and
        // every distinct spec must decode back to an equal value.
        let specs = [
            StrategySpec::default(),
            StrategySpec::paper_default(),
            StrategySpec::paper_default()
                .with_ring(RingDirection::Unidirectional)
                .with_chunk(4),
            StrategySpec::paper_default()
                .with_fusion(FusionAggressiveness::Conservative)
                .with_pad_max_concat(true),
            StrategySpec {
                partitioning: PartitionHint::OneD,
                ..StrategySpec::paper_default()
            },
            StrategySpec::paper_default().with_window_layers(4),
        ];
        for s in specs {
            let text = s.to_json().to_string();
            let back = StrategySpec::from_json(&Json::parse(&text).unwrap()).unwrap();
            assert_eq!(back, s);
            assert_eq!(back.fingerprint(), s.fingerprint());
        }
        assert!(StrategySpec::from_json(&Json::obj()).is_err());
        let bad = StrategySpec::default().to_json().with("partitioning", "Diagonal");
        assert!(StrategySpec::from_json(&bad).is_err());
        // `window_layers = 1` is omitted from the encoding (pre-window
        // files must stay byte-identical) and decodes back to 1.
        let one = StrategySpec::paper_default().to_json();
        assert!(one.get("window_layers").is_none());
        assert_eq!(StrategySpec::from_json(&one).unwrap().window_layers, 1);
    }

    #[test]
    fn decode_rejects_wrong_layouts() {
        assert!(AgCase::from_json(&Json::from("Diagonal")).is_err());
        assert!(PatternKind::from_json(&Json::obj().with("Unknown", Json::obj())).is_err());
        // A float smuggled into a count is a decode error, not truncation.
        let v = Json::parse(
            "{\"einsum\":\"y\",\"group_size\":1.5,\"partial_einsums\":1,\
             \"permutes\":1,\"bidirectional\":true,\"unrolled\":false}",
        )
        .unwrap();
        assert!(DecomposeSummary::from_json(&v).is_err());
    }
}
