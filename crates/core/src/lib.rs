//! The paper's contribution: overlap communication with dependent
//! computation via decomposition.
//!
//! This crate implements, as module-to-module compiler passes over the
//! `overlap-hlo` IR, the full technique of *"Overlap Communication with
//! Dependent Computation via Decomposition in Large Deep Learning Models"*
//! (ASPLOS 2023):
//!
//! * [`find_patterns`] — identifies `AllGather → Einsum` and
//!   `Einsum → ReduceScatter` pairs and classifies the AllGather cases
//!   1–3 of §5.1 (free / contracting / batch partitioned dimension),
//! * [`decompose`] — the **looped collective-einsum** rewrite
//!   (Algorithm 1): each selected pair becomes a sequence of partial
//!   einsums and single-hop `CollectivePermute`s, with the loop-unrolling
//!   (§5.4.1, two interleaved accumulation chains) and bidirectional
//!   transfer (§5.4.2, prologue/epilogue shifts) optimizations,
//! * [`asyncify`] — splits each emitted `CollectivePermute` into the
//!   non-blocking `CollectivePermuteStart`/`Done` pair (§5.2),
//! * [`schedule_bottom_up`] (Algorithm 2) and [`schedule_top_down`] —
//!   the two latency-hiding instruction schedulers of §5.2,
//! * [`fuse`] — the fusion pass with the overlap-aware heuristic of
//!   §5.4.3 / Fig. 11,
//! * [`split_all_reduces`] — the §2.1 identity
//!   `AllReduce = ReduceScatter + AllGather` as a pre-pass, exposing
//!   Megatron-style `Einsum → AllReduce` pairs to the decomposition
//!   (an extension beyond the paper's evaluated configuration),
//! * [`CostModel`] — the §5.5 enablement gate
//!   (`comp_t + comm_t >= max(comp_t, comm_t_ring) + extra_t`) and the
//!   candidate-selection rule when an einsum has two collectives,
//! * [`OverlapPipeline`] — ties everything together and produces a
//!   [`Compiled`] module plus the linear instruction order to execute,
//! * [`ArtifactCache`] — a content-addressed, two-tier (memory + disk)
//!   cache of [`Compiled`] bundles keyed by structural module, machine
//!   and option fingerprints; repeated compilations within a sweep and
//!   across process runs are served bit-identically without rerunning
//!   the passes ([`OverlapPipeline::compile_cached`]); compilations for
//!   degraded machines additionally key on the fault-spec fingerprint,
//! * **graceful degradation** under a
//!   [`FaultSpec`](overlap_mesh::FaultSpec)
//!   ([`OverlapPipeline::with_faults`]): the gate is re-evaluated with
//!   fault-stretched terms ([`FaultGateAdjust`]) so patterns whose
//!   decomposed form regresses on the degraded machine fall back to the
//!   original collective, and a post-compile faulted smoke simulation
//!   abandons the whole transformed module when it cannot execute at all
//!   (unroutable links, watchdog); every fallback is recorded in
//!   [`Compiled::fallbacks`].
//!
//! Every rewrite is semantically equivalent to the original module; the
//! integration tests check this bit-for-bit (up to float reassociation)
//! with the `overlap-numerics` SPMD interpreter.

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

mod asyncify;
mod cache;
mod costgate;
mod decompose;
mod fusion;
mod json;
mod pattern;
mod pipeline;
mod profile;
mod reassociate;
mod report;
mod schedule;
mod strategy;

pub use asyncify::{asyncify, asyncify_with};
pub use cache::{artifact_key, artifact_key_faulted, ArtifactCache, CacheOutcome, CacheStats};
pub use costgate::{CostModel, FaultGateAdjust, GateDecision};
pub use decompose::{
    decompose, decompose_each, decompose_each_with, DecomposeOptions, DecomposeSummary,
};
pub use fusion::{fuse, fuse_with, FusionOptions};
pub use pattern::{find_patterns, find_patterns_with, AgCase, Pattern, PatternKind};
pub use pipeline::{Compiled, FallbackRecord, OverlapOptions, OverlapPipeline, SchedulerKind};
pub use profile::{PhaseTiming, PhaseTimings};
pub use reassociate::{split_all_reduces, split_all_reduces_with, REASSOC_TAG};
pub use report::CompileReport;
pub use schedule::{
    schedule_bottom_up, schedule_bottom_up_ctx, schedule_bottom_up_with, schedule_top_down,
    schedule_top_down_ctx, ScheduleContext, ScheduleWindow,
};
pub use strategy::{
    FusionAggressiveness, PartitionHint, PatternStrategy, RingDirection, StrategySpec,
};
