//! First-class decomposition strategies (ROADMAP item 3).
//!
//! The paper applies one fixed strategy everywhere: loop decomposition
//! with unroll degree 2, bidirectional rings, plain concatenation,
//! overlap-aware fusion. [`StrategySpec`] promotes every one of those
//! hard-coded knobs into a searchable, serializable, fingerprint-hashed
//! configuration — per-pattern chunk width, unrolling, ring direction,
//! pad-vs-concat, fusion aggressiveness, and a 1D/2D partitioning hint —
//! so the `overlap-autotune` driver can enumerate the space and let the
//! cached simulator pick the winner per model × machine × fault spec.
//!
//! [`StrategySpec::paper_default`] lowers bit-exactly to the options the
//! pipeline used before strategies existed; artifacts compiled under it
//! are byte-identical to the historical figures.

use overlap_hlo::WireFormat;
use overlap_json::{Fingerprint, StableHasher};

use crate::decompose::DecomposeOptions;
use crate::fusion::FusionOptions;
use crate::pattern::PatternKind;

/// Which way shards (or accumulators) circulate around the ring.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RingDirection {
    /// One direction only (Algorithm 1's single ring).
    Unidirectional,
    /// Both directions at once (§5.4.2): half the shards each way,
    /// doubling usable link bandwidth. Requires an even group; odd
    /// groups fall back to unidirectional (recorded in the
    /// [`DecomposeSummary`](crate::DecomposeSummary)).
    #[default]
    Bidirectional,
}

/// How hard the §5.4.3 fusion pass works.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FusionAggressiveness {
    /// No fusion pass at all.
    Off,
    /// Fuse, but without the overlap-aware grouping heuristic.
    Conservative,
    /// The paper's overlap-aware fusion (the default).
    #[default]
    OverlapAware,
}

/// A 1D-vs-2D partitioning hint for the layers *above* the pipeline.
///
/// The pipeline itself consumes an already-partitioned module, so this
/// knob cannot change the rewrite — it is honored by the model-building
/// layer (`overlap-models`) when the hyperparameters divide both ways,
/// and it is hashed here so strategies that differ only in partitioning
/// never share artifact-cache keys.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PartitionHint {
    /// Keep the model's published partitioning.
    #[default]
    Auto,
    /// Prefer one partitioned dimension over a ring (Fig. 2).
    OneD,
    /// Prefer two partitioned dimensions over a 2-D mesh (Fig. 3).
    TwoD,
}

/// Per-pattern decomposition knobs (applied to `AllGather → Einsum` and
/// `Einsum → ReduceScatter` pairs independently).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PatternStrategy {
    /// Number of consecutive ring shards joined into one wide partial
    /// einsum per loop super-step. `1` is the paper's shard-at-a-time
    /// loop. Widths `> 1` apply only to the unidirectional AllGather
    /// loop and must divide the group size; infeasible widths fall back
    /// to `1` with the reason recorded in the decompose summary.
    pub chunk: usize,
    /// Loop unrolling (§5.4.1): drops loop-carried copies; even-group
    /// ReduceScatter chains split in two.
    pub unroll: bool,
    /// Ring direction (§5.4.2).
    pub ring: RingDirection,
    /// Emit shard joins as `Max(PadLow, PadHigh)` instead of
    /// `Concatenate` (§5.4.3's fusion-friendly form).
    pub pad_max_concat: bool,
    /// Wire encoding for the pattern's collective traffic (the precision
    /// axis): decomposed rings annotate their `CollectivePermute` steps,
    /// kept collectives carry it directly. `Lossless` (the default)
    /// reproduces the paper's exact arithmetic and hashes/describes as
    /// the historical knob-free strategy.
    pub wire: WireFormat,
}

impl Default for PatternStrategy {
    fn default() -> Self {
        PatternStrategy {
            chunk: 1,
            unroll: true,
            ring: RingDirection::Bidirectional,
            pad_max_concat: false,
            wire: WireFormat::Lossless,
        }
    }
}

impl PatternStrategy {
    /// Lowers to the decompose pass's option set.
    #[must_use]
    pub fn decompose_options(&self) -> DecomposeOptions {
        DecomposeOptions {
            unroll: self.unroll,
            bidirectional: self.ring == RingDirection::Bidirectional,
            pad_max_concat: self.pad_max_concat,
            chunk: self.chunk,
            wire: self.wire,
        }
    }

    fn write_to(&self, h: &mut StableHasher) {
        h.write_usize(self.chunk);
        h.write_bool(self.unroll);
        h.write_str(match self.ring {
            RingDirection::Unidirectional => "uni",
            RingDirection::Bidirectional => "bidi",
        });
        h.write_bool(self.pad_max_concat);
        // Hashed only when quantized: lossless strategies must keep the
        // exact pre-precision fingerprints so every historical
        // artifact-cache key and committed figure stays byte-identical.
        if !self.wire.is_lossless() {
            h.write_str("wire");
            self.wire.write_to(h);
        }
    }

    /// Compact human form, e.g. `chunk=2,unroll,uni,concat` (plus a
    /// `,bf16`/`,int8x64` suffix when quantized).
    #[must_use]
    pub fn describe(&self) -> String {
        let wire = if self.wire.is_lossless() {
            String::new()
        } else {
            format!(",{}", self.wire.describe())
        };
        format!(
            "chunk={},{},{},{}{wire}",
            self.chunk,
            if self.unroll { "unroll" } else { "rolled" },
            match self.ring {
                RingDirection::Unidirectional => "uni",
                RingDirection::Bidirectional => "bidi",
            },
            if self.pad_max_concat { "padmax" } else { "concat" },
        )
    }
}

/// The full decomposition strategy: per-pattern knobs plus fusion
/// aggressiveness and the partitioning hint. This is the searchable
/// configuration the autotuner enumerates; it hangs off
/// [`OverlapOptions`](crate::OverlapOptions) and is hashed into every
/// artifact-cache key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StrategySpec {
    /// Knobs for `AllGather → Einsum` loops.
    pub all_gather: PatternStrategy,
    /// Knobs for `Einsum → ReduceScatter` loops.
    pub reduce_scatter: PatternStrategy,
    /// Fusion pass aggressiveness (§5.4.3).
    pub fusion: FusionAggressiveness,
    /// 1D-vs-2D partitioning hint for the model-building layer.
    pub partitioning: PartitionHint,
    /// Cross-layer scheduling window, in layers. The schedulers may
    /// interleave instructions of up to this many consecutive layers of
    /// a layer-tagged module (`L<k>.`-prefixed names, as built by
    /// `overlap-models`' stacked window modules): collectives issued in
    /// layer `k+1` can overlap compute of layer `k`, and vice versa in
    /// the bottom-up pass. `1` keeps strict per-layer barriers and is
    /// the default; on modules without layer tags (every single-layer
    /// figure module) the knob is inert. Only values `> 1` are hashed
    /// into the fingerprint, so `window_layers = 1` artifacts stay
    /// byte-identical to pre-window ones.
    pub window_layers: usize,
}

impl Default for StrategySpec {
    /// Paper-default decomposition knobs but **no fusion pass** — the
    /// historical `OverlapOptions::default()` semantics (its `fusion`
    /// field was an `Option` defaulting to `None`).
    fn default() -> Self {
        StrategySpec { fusion: FusionAggressiveness::Off, ..Self::paper_default() }
    }
}

impl StrategySpec {
    /// The paper's production strategy: bidirectional unrolled rings,
    /// shard-at-a-time loops, plain concatenation, overlap-aware fusion.
    #[must_use]
    pub fn paper_default() -> Self {
        StrategySpec {
            all_gather: PatternStrategy::default(),
            reduce_scatter: PatternStrategy::default(),
            fusion: FusionAggressiveness::OverlapAware,
            partitioning: PartitionHint::Auto,
            window_layers: 1,
        }
    }

    /// The decompose options for one pattern kind.
    #[must_use]
    pub fn options_for(&self, kind: &PatternKind) -> DecomposeOptions {
        match kind {
            PatternKind::AllGatherEinsum { .. } => self.all_gather.decompose_options(),
            PatternKind::EinsumReduceScatter { .. } => self.reduce_scatter.decompose_options(),
        }
    }

    /// Lowers the fusion aggressiveness to the fusion pass's options
    /// (`None` skips the pass).
    #[must_use]
    pub fn fusion_options(&self) -> Option<FusionOptions> {
        match self.fusion {
            FusionAggressiveness::Off => None,
            FusionAggressiveness::Conservative => Some(FusionOptions { overlap_aware: false }),
            FusionAggressiveness::OverlapAware => Some(FusionOptions { overlap_aware: true }),
        }
    }

    /// Checks the strategy for statically-nonsensical combinations.
    /// Per-module infeasibilities (odd group sizes, non-dividing chunk
    /// widths) are *not* errors — the decompose pass falls back and
    /// records the reason — but widths that can never work are rejected
    /// here so strategy files fail loudly.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violation.
    pub fn validate(&self) -> Result<(), String> {
        for (what, p) in [("all_gather", &self.all_gather), ("reduce_scatter", &self.reduce_scatter)]
        {
            if p.chunk == 0 {
                return Err(format!("{what}.chunk: width must be at least 1 (got 0)"));
            }
            if p.chunk > 64 {
                return Err(format!(
                    "{what}.chunk: width {} is unreasonably large (max 64)",
                    p.chunk
                ));
            }
            if let Err(e) = p.wire.validate() {
                return Err(format!("{what}.wire: {e}"));
            }
        }
        if self.reduce_scatter.chunk > 1 {
            return Err(
                "reduce_scatter: chunk widths > 1 are not implementable — each partial \
                 feeds a traveling accumulator, so the chain cannot batch shards"
                    .to_string(),
            );
        }
        if self.all_gather.chunk > 1 && self.all_gather.ring == RingDirection::Bidirectional {
            return Err(
                "all_gather: chunk widths > 1 require a unidirectional ring (the \
                 bidirectional loop already joins two shards per step)"
                    .to_string(),
            );
        }
        if self.window_layers == 0 {
            return Err("window_layers: must be at least 1 (got 0)".to_string());
        }
        if self.window_layers > 8 {
            return Err(format!(
                "window_layers {} is unreasonably large (max 8): the stacked window \
                 modules keep at most a handful of layers in flight",
                self.window_layers
            ));
        }
        Ok(())
    }

    /// A stable fingerprint over every knob. Folded into
    /// [`OverlapOptions::fingerprint`](crate::OverlapOptions::fingerprint)
    /// and hence into every artifact-cache key: two strategies that
    /// differ in any field — including per-pattern differences and the
    /// partitioning hint — never share cached artifacts.
    #[must_use]
    pub fn fingerprint(&self) -> Fingerprint {
        let mut h = StableHasher::new("overlap-strategy-v1");
        self.all_gather.write_to(&mut h);
        self.reduce_scatter.write_to(&mut h);
        h.write_str(match self.fusion {
            FusionAggressiveness::Off => "off",
            FusionAggressiveness::Conservative => "conservative",
            FusionAggressiveness::OverlapAware => "overlap-aware",
        });
        h.write_str(match self.partitioning {
            PartitionHint::Auto => "auto",
            PartitionHint::OneD => "1d",
            PartitionHint::TwoD => "2d",
        });
        // Hashed only when widened: `window_layers = 1` strategies must
        // keep the exact pre-window fingerprints so every historical
        // artifact-cache key and committed figure stays byte-identical.
        if self.window_layers > 1 {
            h.write_str("window");
            h.write_usize(self.window_layers);
        }
        h.finish()
    }

    /// Compact human form for banners and leaderboards.
    #[must_use]
    pub fn describe(&self) -> String {
        let fusion = match self.fusion {
            FusionAggressiveness::Off => "off",
            FusionAggressiveness::Conservative => "conservative",
            FusionAggressiveness::OverlapAware => "overlap-aware",
        };
        let part = match self.partitioning {
            PartitionHint::Auto => String::new(),
            PartitionHint::OneD => " part=1d".to_string(),
            PartitionHint::TwoD => " part=2d".to_string(),
        };
        let window = if self.window_layers > 1 {
            format!(" window={}", self.window_layers)
        } else {
            String::new()
        };
        format!(
            "ag[{}] rs[{}] fusion={fusion}{part}{window}",
            self.all_gather.describe(),
            self.reduce_scatter.describe(),
        )
    }

    // Builder helpers (applied to both pattern kinds) so grids and tests
    // read declaratively.

    /// Sets the ring direction for both pattern kinds.
    #[must_use]
    pub fn with_ring(mut self, ring: RingDirection) -> Self {
        self.all_gather.ring = ring;
        self.reduce_scatter.ring = ring;
        self
    }

    /// Sets unrolling for both pattern kinds.
    #[must_use]
    pub fn with_unroll(mut self, unroll: bool) -> Self {
        self.all_gather.unroll = unroll;
        self.reduce_scatter.unroll = unroll;
        self
    }

    /// Sets the pad-max-concat rewrite for both pattern kinds.
    #[must_use]
    pub fn with_pad_max_concat(mut self, pad_max_concat: bool) -> Self {
        self.all_gather.pad_max_concat = pad_max_concat;
        self.reduce_scatter.pad_max_concat = pad_max_concat;
        self
    }

    /// Sets the AllGather chunk width (ReduceScatter chains cannot
    /// chunk; see [`StrategySpec::validate`]).
    #[must_use]
    pub fn with_chunk(mut self, chunk: usize) -> Self {
        self.all_gather.chunk = chunk;
        self
    }

    /// Sets the fusion aggressiveness.
    #[must_use]
    pub fn with_fusion(mut self, fusion: FusionAggressiveness) -> Self {
        self.fusion = fusion;
        self
    }

    /// Sets the cross-layer scheduling window (in layers).
    #[must_use]
    pub fn with_window_layers(mut self, window_layers: usize) -> Self {
        self.window_layers = window_layers;
        self
    }

    /// Sets the wire encoding for both pattern kinds (the precision axis).
    #[must_use]
    pub fn with_wire(mut self, wire: WireFormat) -> Self {
        self.all_gather.wire = wire;
        self.reduce_scatter.wire = wire;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_lowers_to_the_historical_options() {
        let s = StrategySpec::paper_default();
        let want = DecomposeOptions {
            unroll: true,
            bidirectional: true,
            pad_max_concat: false,
            chunk: 1,
            wire: WireFormat::Lossless,
        };
        assert_eq!(s.all_gather.decompose_options(), want);
        assert_eq!(s.reduce_scatter.decompose_options(), want);
        assert_eq!(s.fusion_options(), Some(FusionOptions { overlap_aware: true }));
        assert!(s.validate().is_ok());
    }

    #[test]
    fn default_disables_fusion_like_the_old_option_default() {
        let s = StrategySpec::default();
        assert_eq!(s.fusion_options(), None);
        assert_eq!(
            s.all_gather.decompose_options(),
            StrategySpec::paper_default().all_gather.decompose_options()
        );
    }

    #[test]
    fn validate_rejects_impossible_widths() {
        assert!(StrategySpec::paper_default().with_chunk(0).validate().is_err());
        assert!(StrategySpec::paper_default().with_chunk(65).validate().is_err());
        // Chunking the bidirectional loop is a contradiction.
        assert!(StrategySpec::paper_default().with_chunk(2).validate().is_err());
        assert!(StrategySpec::paper_default()
            .with_ring(RingDirection::Unidirectional)
            .with_chunk(2)
            .validate()
            .is_ok());
        let mut rs_chunked = StrategySpec::paper_default();
        rs_chunked.reduce_scatter.chunk = 2;
        assert!(rs_chunked.validate().is_err());
        assert!(StrategySpec::paper_default().with_window_layers(0).validate().is_err());
        assert!(StrategySpec::paper_default().with_window_layers(9).validate().is_err());
        assert!(StrategySpec::paper_default().with_window_layers(4).validate().is_ok());
    }

    #[test]
    fn validate_names_the_offending_field_and_value() {
        let e = StrategySpec::paper_default().with_chunk(0).validate().unwrap_err();
        assert!(e.contains("all_gather.chunk") && e.contains("got 0"), "{e}");
        let e = StrategySpec::paper_default().with_chunk(65).validate().unwrap_err();
        assert!(e.contains("all_gather.chunk") && e.contains("65"), "{e}");
        let e = StrategySpec::paper_default()
            .with_wire(WireFormat::Int8Block { block: 0 })
            .validate()
            .unwrap_err();
        assert!(e.contains("all_gather.wire") && e.contains("got 0"), "{e}");
        let e = StrategySpec::paper_default().with_window_layers(0).validate().unwrap_err();
        assert!(e.contains("window_layers") && e.contains("got 0"), "{e}");
    }

    #[test]
    fn lossless_wire_is_fingerprint_and_describe_neutral() {
        // Lossless is the only encoding that existed before the precision
        // axis, so it must be indistinguishable everywhere a cache key or
        // banner is derived.
        let base = StrategySpec::paper_default();
        let explicit = base.with_wire(WireFormat::Lossless);
        assert_eq!(explicit.fingerprint(), base.fingerprint());
        assert_eq!(explicit.describe(), base.describe());
        let bf16 = base.with_wire(WireFormat::Bf16);
        let int8 = base.with_wire(WireFormat::int8());
        assert_ne!(bf16.fingerprint(), base.fingerprint());
        assert_ne!(int8.fingerprint(), base.fingerprint());
        assert_ne!(bf16.fingerprint(), int8.fingerprint());
        assert_ne!(
            int8.fingerprint(),
            base.with_wire(WireFormat::Int8Block { block: 128 }).fingerprint(),
            "distinct block widths must not collide"
        );
        assert!(bf16.describe().contains("bf16"), "{}", bf16.describe());
        assert!(int8.describe().contains("int8x64"), "{}", int8.describe());
        assert!(bf16.validate().is_ok());
    }

    #[test]
    fn window_one_is_fingerprint_and_describe_neutral() {
        // `window_layers = 1` must be indistinguishable from the
        // pre-window strategy everywhere a key or banner is derived, so
        // historical artifacts and committed figures stay byte-identical.
        let base = StrategySpec::paper_default();
        let explicit = base.with_window_layers(1);
        assert_eq!(explicit.fingerprint(), base.fingerprint());
        assert_eq!(explicit.describe(), base.describe());
        let windowed = base.with_window_layers(2);
        assert_ne!(windowed.fingerprint(), base.fingerprint());
        assert_ne!(
            windowed.fingerprint(),
            base.with_window_layers(4).fingerprint(),
            "distinct windows must not collide"
        );
        assert!(windowed.describe().contains("window=2"), "{}", windowed.describe());
    }

    #[test]
    fn fingerprint_flips_on_every_field() {
        let base = StrategySpec::paper_default();
        let variants = [
            base.with_ring(RingDirection::Unidirectional),
            base.with_unroll(false),
            base.with_pad_max_concat(true),
            base.with_ring(RingDirection::Unidirectional).with_chunk(2),
            base.with_fusion(FusionAggressiveness::Off),
            base.with_fusion(FusionAggressiveness::Conservative),
            StrategySpec { partitioning: PartitionHint::OneD, ..base },
            StrategySpec { partitioning: PartitionHint::TwoD, ..base },
            base.with_wire(WireFormat::Bf16),
            base.with_wire(WireFormat::int8()),
            // Per-pattern wire asymmetry must be visible too.
            StrategySpec {
                all_gather: PatternStrategy { wire: WireFormat::Bf16, ..PatternStrategy::default() },
                ..base
            },
            // Per-pattern asymmetry must be visible too.
            StrategySpec {
                all_gather: PatternStrategy {
                    ring: RingDirection::Unidirectional,
                    ..PatternStrategy::default()
                },
                ..base
            },
            StrategySpec {
                reduce_scatter: PatternStrategy {
                    ring: RingDirection::Unidirectional,
                    ..PatternStrategy::default()
                },
                ..base
            },
        ];
        for v in &variants {
            assert_ne!(v.fingerprint(), base.fingerprint(), "{}", v.describe());
        }
        for (i, a) in variants.iter().enumerate() {
            for b in &variants[i + 1..] {
                if a != b {
                    assert_ne!(a.fingerprint(), b.fingerprint(), "{} vs {}", a.describe(), b.describe());
                }
            }
        }
        // Stable across calls.
        assert_eq!(base.fingerprint(), StrategySpec::paper_default().fingerprint());
    }

    #[test]
    fn describe_is_compact_and_complete() {
        let s = StrategySpec::paper_default()
            .with_ring(RingDirection::Unidirectional)
            .with_chunk(4)
            .with_fusion(FusionAggressiveness::Conservative);
        let d = s.describe();
        assert!(d.contains("chunk=4"), "{d}");
        assert!(d.contains("uni"), "{d}");
        assert!(d.contains("fusion=conservative"), "{d}");
    }
}
