//! Pass-level wall-time profiling for the compilation pipeline.
//!
//! Every [`OverlapPipeline::run`](crate::OverlapPipeline::run) records how
//! long each pass took into a [`PhaseTimings`]; the benchmark harness
//! aggregates these into the `compile_throughput` section of
//! `results/BENCH_sim.json` so compile-time regressions are visible next
//! to the simulated-performance numbers.

use serde::Serialize;

/// One timed pipeline pass.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct PhaseTiming {
    /// Pass name (e.g. `"decompose"`, `"schedule"`).
    pub phase: String,
    /// Wall-clock seconds spent in the pass.
    pub seconds: f64,
}

/// Ordered per-pass wall times for one pipeline run.
///
/// Phases appear in execution order; a phase that did not run (e.g.
/// `split_all_reduces` when disabled) is simply absent.
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct PhaseTimings {
    phases: Vec<PhaseTiming>,
}

impl PhaseTimings {
    /// An empty record.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a phase measurement.
    pub fn record(&mut self, phase: &str, seconds: f64) {
        self.phases.push(PhaseTiming { phase: phase.to_string(), seconds });
    }

    /// Runs `f`, recording its wall time under `phase`.
    pub fn time<T>(&mut self, phase: &str, f: impl FnOnce() -> T) -> T {
        let t0 = std::time::Instant::now();
        let out = f();
        self.record(phase, t0.elapsed().as_secs_f64());
        out
    }

    /// The recorded phases, in execution order.
    #[must_use]
    pub fn phases(&self) -> &[PhaseTiming] {
        &self.phases
    }

    /// Seconds recorded for `phase` (summed if recorded more than once).
    #[must_use]
    pub fn seconds_of(&self, phase: &str) -> f64 {
        self.phases.iter().filter(|p| p.phase == phase).map(|p| p.seconds).sum()
    }

    /// Total wall time across all recorded phases.
    #[must_use]
    pub fn total_seconds(&self) -> f64 {
        self.phases.iter().map(|p| p.seconds).sum()
    }

    /// Merges another run's phases into this one, summing matching phase
    /// names and appending new ones (used to aggregate repetitions).
    pub fn accumulate(&mut self, other: &PhaseTimings) {
        for p in &other.phases {
            match self.phases.iter_mut().find(|q| q.phase == p.phase) {
                Some(q) => q.seconds += p.seconds,
                None => self.phases.push(p.clone()),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_in_order_and_sums() {
        let mut t = PhaseTimings::new();
        let v = t.time("a", || 41 + 1);
        assert_eq!(v, 42);
        t.record("b", 1.5);
        t.record("a", 0.25);
        assert_eq!(t.phases().len(), 3);
        assert_eq!(t.phases()[0].phase, "a");
        assert_eq!(t.seconds_of("b"), 1.5);
        assert!(t.seconds_of("a") >= 0.25);
        assert!(t.total_seconds() >= 1.75);
        assert_eq!(t.seconds_of("missing"), 0.0);
    }

    #[test]
    fn accumulate_merges_by_phase() {
        let mut a = PhaseTimings::new();
        a.record("x", 1.0);
        let mut b = PhaseTimings::new();
        b.record("x", 2.0);
        b.record("y", 3.0);
        a.accumulate(&b);
        assert_eq!(a.seconds_of("x"), 3.0);
        assert_eq!(a.seconds_of("y"), 3.0);
        assert_eq!(a.phases().len(), 2);
    }
}
