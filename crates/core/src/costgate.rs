//! The §5.5 enablement cost model.
//!
//! Decomposing a collective into a unidirectional ring of point-to-point
//! permutes can *lengthen* total communication (only half the interconnect
//! bandwidth is used), so the transformation only pays off when enough
//! dependent computation exists to hide the stretched transfer. The gate
//! implements the paper's test
//!
//! ```text
//! comp_t + comm_t >= max(comp_t, comm_t_ring) + extra_t
//! ```
//!
//! where `comp_t`/`comm_t` are the original einsum/collective times,
//! `comm_t_ring` is the decomposed permute-sequence time and `extra_t`
//! conservatively charges the prologue/epilogue permutes as unoverlapped.
//! It also implements the §5.5 selection rule when one einsum has two
//! collective candidates.

use std::cell::RefCell;

use overlap_hlo::{InstrId, Module, Op, WireFormat};
use overlap_mesh::{cost as ccost, FaultSpec, Machine};
use overlap_sim::{einsum_cost_key, instruction_cost, CostTable, FaultModel, InstrCost, SimError};

use crate::decompose::DecomposeOptions;
use crate::pattern::{Pattern, PatternKind};

/// Outcome of evaluating one pattern.
#[derive(Debug, Clone, PartialEq)]
pub struct GateDecision {
    /// The evaluated pattern.
    pub pattern: Pattern,
    /// Original computation time (`comp_t`).
    pub comp_t: f64,
    /// Original collective time (`comm_t`).
    pub comm_t: f64,
    /// Decomposed ring-permute sequence time (`comm_t_ring`).
    pub comm_t_ring: f64,
    /// Unoverlappable prologue/epilogue time (`extra_t`).
    pub extra_t: f64,
    /// Estimated compute time of the decomposed partial-einsum sequence
    /// (includes small-extent efficiency loss and per-kernel overhead).
    pub comp_d: f64,
    /// Whether decomposition is estimated beneficial.
    pub beneficial: bool,
    /// Whether the bidirectional form was chosen for this pattern (the
    /// unidirectional fallback wins when the prologue/epilogue overhead
    /// outweighs the halved ring time, e.g. for small rings).
    pub bidirectional: bool,
}

impl GateDecision {
    /// Estimated time saved by decomposing:
    /// `(comp_t + comm_t) - (max(comp_t, comm_t_ring) + extra_t)`.
    #[must_use]
    pub fn net_benefit(&self) -> f64 {
        (self.comp_t + self.comm_t) - (self.comp_d.max(self.comm_t_ring) + self.extra_t)
    }
}

/// Fault-aware adjustment of [`GateDecision`]s: re-runs the §5.5
/// inequality with every term stretched the way the degraded machine
/// would stretch it, so the pipeline can fall back per pattern when
/// decomposition stops paying off under faults.
///
/// The adjustment reuses the simulator's [`FaultModel`] factors — the
/// worst straggler slowdown gates all compute (bulk-synchronous SPMD),
/// the worst surviving link derate (plus the detour penalty when a link
/// is down) stretches every collective and ring permute — and charges
/// each decomposed permute step the *expected* jitter and DMA-stall
/// extra, which only the decomposed form pays (the synchronous
/// collective issues no per-step DMA transfers).
#[derive(Debug, Clone, Copy)]
pub struct FaultGateAdjust {
    compute_factor: f64,
    collective_factor: f64,
    per_step_extra: f64,
}

impl FaultGateAdjust {
    /// Derives the adjustment factors for `spec` on `machine`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidFaultSpec`] when the spec does not fit
    /// the machine's mesh and [`SimError::LinkDown`] when a device is
    /// fully cut off (every outgoing link down).
    pub fn new(machine: &Machine, spec: &FaultSpec) -> Result<Self, SimError> {
        let model = FaultModel::new(machine, spec)?;
        // Extra seconds charged per decomposed permute step: the full
        // jitter amplitude plus the first-order stall expectation
        // (probability × backoff unit). The full amplitude — not the
        // `jitter/2` mean of one uniform draw — because a bidirectional
        // step completes at the *max* of its two lanes' draws, and the
        // gate must stay conservative: a decomposition it lets through
        // that then regresses is the failure mode fallback exists for.
        let per_step_extra =
            spec.jitter_seconds + spec.stall_probability * spec.stall_seconds;
        Ok(FaultGateAdjust {
            compute_factor: model.compute_factor(),
            collective_factor: model.collective_factor(),
            per_step_extra,
        })
    }

    /// Re-evaluates one pristine decision under the fault model. The
    /// returned decision carries the stretched terms and a re-derived
    /// `beneficial` flag; the pattern and transfer direction are kept.
    #[must_use]
    pub fn adjust(&self, module: &Module, d: &GateDecision) -> GateDecision {
        let steps = ring_steps(module, d);
        let comp_t = d.comp_t * self.compute_factor;
        let comm_t = d.comm_t * self.collective_factor;
        let comm_t_ring =
            d.comm_t_ring * self.collective_factor + steps as f64 * self.per_step_extra;
        let extra_t = d.extra_t * self.collective_factor;
        let comp_d = d.comp_d * self.compute_factor;
        let beneficial = comp_t + comm_t >= comp_d.max(comm_t_ring) + extra_t;
        GateDecision {
            pattern: d.pattern,
            comp_t,
            comm_t,
            comm_t_ring,
            extra_t,
            comp_d,
            beneficial,
            bidirectional: d.bidirectional,
        }
    }
}

/// Number of `CollectivePermute` steps the decomposed form of `d` issues
/// (the §5.1 loop length, halved ±1 for the bidirectional variant).
fn ring_steps(module: &Module, d: &GateDecision) -> usize {
    let g = match module.instr(d.pattern.collective).op() {
        Op::AllGather { groups, .. } | Op::ReduceScatter { groups, .. } => groups.group_size(),
        _ => 1,
    };
    let is_rs = matches!(d.pattern.kind, PatternKind::EinsumReduceScatter { .. });
    if d.bidirectional {
        // g/2 loop steps plus the prologue/epilogue shard shift.
        g / 2 + 1
    } else if is_rs {
        g
    } else {
        g.saturating_sub(1)
    }
}

/// The enablement cost model (§5.5).
///
/// Evaluating a pattern estimates the decomposed partial einsums via the
/// machine's efficiency interpolation; the model memoizes those lookups
/// per `(flops, m, n, k)` key (many patterns of one layer share partial
/// shapes), which is exact — a hit returns the identical bits.
#[derive(Debug, Clone)]
pub struct CostModel<'m> {
    machine: &'m Machine,
    /// Options for `AllGather → Einsum` patterns.
    ag_options: DecomposeOptions,
    /// Options for `Einsum → ReduceScatter` patterns.
    rs_options: DecomposeOptions,
    memo: RefCell<ccost::EinsumTimeMemo>,
}

impl<'m> CostModel<'m> {
    /// Creates a cost model for the given machine and decomposition
    /// options (bidirectional transfer halves `comm_t_ring` but adds a
    /// prologue/epilogue permute to `extra_t`). Both pattern kinds use
    /// the same options; [`CostModel::with_strategy`] prices them
    /// separately.
    #[must_use]
    pub fn new(machine: &'m Machine, options: DecomposeOptions) -> Self {
        CostModel {
            machine,
            ag_options: options,
            rs_options: options,
            memo: RefCell::new(ccost::EinsumTimeMemo::new()),
        }
    }

    /// A cost model pricing each pattern kind under its own
    /// [`StrategySpec`](crate::StrategySpec) knobs — exactly what the
    /// decompose pass will emit, chunk widths included.
    #[must_use]
    pub fn with_strategy(machine: &'m Machine, strategy: &crate::StrategySpec) -> Self {
        CostModel {
            machine,
            ag_options: strategy.all_gather.decompose_options(),
            rs_options: strategy.reduce_scatter.decompose_options(),
            memo: RefCell::new(ccost::EinsumTimeMemo::new()),
        }
    }

    /// The option set governing `pattern`'s kind.
    fn options_for(&self, pattern: &Pattern) -> DecomposeOptions {
        match pattern.kind {
            PatternKind::AllGatherEinsum { .. } => self.ag_options,
            PatternKind::EinsumReduceScatter { .. } => self.rs_options,
        }
    }

    fn partial_einsum_time(
        &self,
        dims: &overlap_hlo::DotDims,
        lhs: &overlap_hlo::Shape,
        rhs: &overlap_hlo::Shape,
    ) -> f64 {
        let (flops, m, n, k) = einsum_cost_key(dims, lhs, rhs);
        self.memo.borrow_mut().time(self.machine, flops, m, n, k)
    }

    fn einsum_time_of(cost: InstrCost) -> f64 {
        match cost {
            InstrCost::Compute { seconds, .. } => seconds,
            _ => 0.0,
        }
    }

    fn collective_time_of(cost: InstrCost) -> f64 {
        match cost {
            InstrCost::SyncCollective { seconds } => seconds,
            _ => 0.0,
        }
    }

    /// Total compute time of the decomposed form: the sum of the partial
    /// einsums' costs, including the efficiency loss of the smaller
    /// per-partial extents and the per-kernel launch overhead. This is
    /// what makes the gate reject decompositions whose partials are too
    /// small to run efficiently (the regime the paper's narrow models hit).
    fn decomposed_comp_time(
        &self,
        module: &Module,
        pattern: &Pattern,
        bidi: bool,
        chunk: usize,
    ) -> f64 {
        let einsum = module.instr(pattern.einsum);
        let Op::Einsum(dims) = einsum.op() else { unreachable!("pattern einsum") };
        let lhs = module.shape_of(einsum.operands()[0]).clone();
        let rhs = module.shape_of(einsum.operands()[1]).clone();
        match pattern.kind {
            PatternKind::AllGatherEinsum { gathered_is_lhs, case } => {
                let Op::AllGather { dim, groups, .. } = module.instr(pattern.collective).op()
                else {
                    unreachable!("pattern collective")
                };
                let g = groups.group_size();
                // Bidirectional non-contracting partials are double-width;
                // chunked unidirectional loops batch `chunk` shards into
                // one wide partial per super-step.
                let (count, width) = if bidi && case != crate::AgCase::Contracting {
                    (g / 2, 2)
                } else if !bidi && chunk > 1 {
                    (g / chunk, chunk)
                } else {
                    (g, 1)
                };
                let shard = module
                    .shape_of(module.instr(pattern.collective).operands()[0])
                    .dim(*dim)
                    * width;
                let (plhs, prhs) = if gathered_is_lhs {
                    (lhs.with_dim(*dim, shard), rhs.clone())
                } else {
                    (lhs.clone(), rhs.with_dim(*dim, shard))
                };
                // Cases 2/3 also slice the other operand, but that does not
                // change the per-partial flops beyond the sliced dim, which
                // the paired-dimension constraint already captures: for the
                // contracting/batch cases slice the paired dim too.
                let (plhs, prhs) = match case {
                    crate::AgCase::Free => (plhs, prhs),
                    crate::AgCase::Contracting | crate::AgCase::Batch => {
                        if gathered_is_lhs {
                            let od = dims
                                .rhs_dim_paired_with(*dim)
                                .expect("paired dimension");
                            let p = prhs.with_dim(od, shard);
                            (plhs, p)
                        } else {
                            let od = dims
                                .lhs_dim_paired_with(*dim)
                                .expect("paired dimension");
                            let p = plhs.with_dim(od, shard);
                            (p, prhs)
                        }
                    }
                };
                count as f64 * self.partial_einsum_time(dims, &plhs, &prhs)
            }
            PatternKind::EinsumReduceScatter { sliced_is_lhs, sliced_dim } => {
                let Op::ReduceScatter { groups, .. } = module.instr(pattern.collective).op()
                else {
                    unreachable!("pattern collective")
                };
                let g = groups.group_size();
                let (plhs, prhs) = if sliced_is_lhs {
                    (lhs.with_dim_divided(sliced_dim, g), rhs)
                } else {
                    (lhs, rhs.with_dim_divided(sliced_dim, g))
                };
                g as f64 * self.partial_einsum_time(dims, &plhs, &prhs)
            }
        }
    }

    /// Per-iteration shard circulated by the decomposed form.
    fn shard_shape<'a>(&self, module: &'a Module, pattern: &Pattern) -> &'a overlap_hlo::Shape {
        match pattern.kind {
            PatternKind::AllGatherEinsum { .. } => {
                // The gathered operand's local shard circulates.
                let src = module.instr(pattern.collective).operands()[0];
                module.shape_of(src)
            }
            PatternKind::EinsumReduceScatter { .. } => {
                // The scattered accumulator circulates.
                module.shape_of(pattern.collective)
            }
        }
    }

    /// Wire bytes of a payload plus the per-transfer codec time (the
    /// encode/decode sweeps over payload + wire buffers, priced at HBM
    /// bandwidth). Lossless pays the dense bytes and no codec — the
    /// exact pre-precision pricing.
    fn wired(&self, wire: WireFormat, shape: &overlap_hlo::Shape) -> (usize, f64) {
        if wire.is_lossless() {
            return (shape.byte_size(), 0.0);
        }
        let elems = shape.num_elements();
        let eb = shape.dtype().size_bytes();
        let codec = self.machine.memory_time(wire.codec_bytes_moved(elems, eb));
        (wire.wire_bytes(elems, eb), codec)
    }

    /// Evaluates the §5.5 inequality for one pattern: when the options
    /// allow bidirectional transfer, both the bidirectional and the
    /// unidirectional forms are estimated and the better one is chosen.
    #[must_use]
    pub fn evaluate(&self, module: &Module, pattern: &Pattern) -> GateDecision {
        self.evaluate_impl(module, pattern, &|id| instruction_cost(module, id, self.machine))
    }

    /// [`CostModel::evaluate`] with the original einsum/collective times
    /// looked up in a pre-built [`CostTable`] for this `(module,
    /// machine)` pair instead of re-derived per call.
    #[must_use]
    pub fn evaluate_with(
        &self,
        table: &CostTable,
        module: &Module,
        pattern: &Pattern,
    ) -> GateDecision {
        self.evaluate_impl(module, pattern, &|id| table.cost(id))
    }

    fn evaluate_impl(
        &self,
        module: &Module,
        pattern: &Pattern,
        cost_of: &dyn Fn(InstrId) -> InstrCost,
    ) -> GateDecision {
        let uni = self.evaluate_variant_impl(module, pattern, false, cost_of);
        if !self.options_for(pattern).bidirectional {
            return uni;
        }
        let bidi = self.evaluate_variant_impl(module, pattern, true, cost_of);
        if bidi.net_benefit() >= uni.net_benefit() {
            bidi
        } else {
            uni
        }
    }

    /// Evaluates one pattern with the bidirectional form forced on or off.
    #[must_use]
    pub fn evaluate_variant(
        &self,
        module: &Module,
        pattern: &Pattern,
        bidirectional: bool,
    ) -> GateDecision {
        self.evaluate_variant_impl(module, pattern, bidirectional, &|id| {
            instruction_cost(module, id, self.machine)
        })
    }

    fn evaluate_variant_impl(
        &self,
        module: &Module,
        pattern: &Pattern,
        bidirectional: bool,
        cost_of: &dyn Fn(InstrId) -> InstrCost,
    ) -> GateDecision {
        let comp_t = Self::einsum_time_of(cost_of(pattern.einsum));
        let groups = match module.instr(pattern.collective).op() {
            Op::AllGather { groups, .. } | Op::ReduceScatter { groups, .. } => groups.clone(),
            _ => unreachable!("pattern collective is AG or RS"),
        };
        let g = groups.group_size();
        let is_rs = matches!(pattern.kind, PatternKind::EinsumReduceScatter { .. });
        let loop_steps = if is_rs { g } else { g - 1 };

        let wire = self.options_for(pattern).wire;
        // The alternative to decomposing is the collective the pipeline
        // will actually keep — under a quantized strategy that kept
        // collective is itself annotated with the wire format, so price
        // the quantized synchronous collective, not the lossless one.
        // Lossless keeps the table-driven figure bit-identical.
        let comm_t = if wire.is_lossless() {
            Self::collective_time_of(cost_of(pattern.collective))
        } else if is_rs {
            let (bytes, codec) =
                self.wired(wire, module.shape_of(module.instr(pattern.collective).operands()[0]));
            ccost::reduce_scatter_time(self.machine, g, bytes) + codec
        } else {
            let (bytes, codec) = self.wired(wire, module.shape_of(pattern.collective));
            ccost::all_gather_time(self.machine, g, bytes) + codec
        };
        // Decomposed side: the circulated shard shrinks to its wire size
        // and every ring step pays one codec sweep (zero when lossless).
        let (shard, step_codec) = self.wired(wire, self.shard_shape(module, pattern));

        let bidi = bidirectional && g % 2 == 0;
        // Price exactly the loop the decompose pass will emit: the chunk
        // width shares its feasibility rule with the emission.
        let chunk = if is_rs {
            1
        } else {
            crate::decompose::effective_ag_chunk(&self.options_for(pattern), bidi, g).0
        };
        let (comm_t_ring, extra_t) = if bidi {
            let steps = g / 2;
            let ring = ccost::decomposed_bidi_ring_time(self.machine, steps, shard)
                + steps as f64 * step_codec;
            // Prologue (AllGather) or epilogue (ReduceScatter) shift of one
            // whole shard, conservatively unoverlapped.
            let extra = ccost::collective_permute_time(self.machine, shard) + step_codec;
            (ring, extra)
        } else {
            (
                ccost::decomposed_ring_time(self.machine, loop_steps, shard)
                    + loop_steps as f64 * step_codec,
                0.0,
            )
        };
        // The decomposed side computes `g` partial einsums whose smaller
        // extents may run less efficiently and each pays a kernel launch;
        // the portion of that compute which actually overlaps wire time
        // additionally pays the DMA interference slowdown. Compare against
        // that, not the original `comp_t`.
        let comp_d_raw = self.decomposed_comp_time(module, pattern, bidi, chunk);
        let comp_d = comp_d_raw
            + self.machine.dma_interference() * comp_d_raw.min(comm_t_ring);

        let beneficial = comp_t + comm_t >= comp_d.max(comm_t_ring) + extra_t;
        GateDecision {
            pattern: *pattern,
            comp_t,
            comm_t,
            comm_t_ring,
            extra_t,
            comp_d,
            beneficial,
            bidirectional: bidi,
        }
    }

    /// Selects the patterns to decompose: evaluates every candidate,
    /// resolves einsums with two candidates by the §5.5 rule (if the
    /// einsum is faster than both collectives, prefer the smaller shard —
    /// smaller unoverlapped residue; otherwise prefer the longer
    /// collective), and keeps only beneficial ones.
    ///
    /// When `gate` is `false` every candidate passes the benefit test (one
    /// pattern per einsum is still enforced) — used by ablation studies.
    ///
    /// When the module has candidate patterns, one [`CostTable`] is built
    /// up front and shared by all evaluations.
    #[must_use]
    pub fn select(&self, module: &Module, patterns: &[Pattern], gate: bool) -> Vec<GateDecision> {
        if patterns.is_empty() {
            return Vec::new();
        }
        let table = CostTable::new(module, self.machine)
            .expect("cost-gate selection requires a verifiable module");
        let decisions: Vec<GateDecision> =
            patterns.iter().map(|p| self.evaluate_with(&table, module, p)).collect();
        Self::resolve(decisions, gate)
    }

    /// [`CostModel::select`] with a pre-built [`CostTable`], fanning the
    /// per-candidate evaluations across cores on the deterministic
    /// [`par_map`](overlap_sim::par_map) driver. Results land in input-
    /// order slots and each worker evaluates with a fresh einsum-time
    /// memo — memo hits are exact (a hit returns the identical bits), so
    /// the decisions are bit-identical to the serial path. The per-einsum
    /// resolution stays serial (it is a cheap reduction).
    #[must_use]
    pub fn select_with(
        &self,
        table: &CostTable,
        module: &Module,
        patterns: &[Pattern],
        gate: bool,
    ) -> Vec<GateDecision> {
        if patterns.is_empty() {
            return Vec::new();
        }
        // `self` cannot cross threads (the memo is a RefCell), so each
        // evaluation builds its own model from the shared machine+options.
        let machine = self.machine;
        let (ag_options, rs_options) = (self.ag_options, self.rs_options);
        let decisions: Vec<GateDecision> = overlap_sim::par_map(patterns, |p| {
            CostModel {
                machine,
                ag_options,
                rs_options,
                memo: RefCell::new(ccost::EinsumTimeMemo::new()),
            }
            .evaluate_with(table, module, p)
        });
        Self::resolve(decisions, gate)
    }

    /// Applies the §5.5 one-pattern-per-einsum rule and (optionally) the
    /// benefit gate to a set of evaluated candidates. Decisions must be in
    /// pattern order — grouping keys on first appearance of each einsum.
    fn resolve(decisions: Vec<GateDecision>, gate: bool) -> Vec<GateDecision> {
        let mut by_einsum: Vec<(InstrId, Vec<GateDecision>)> = Vec::new();
        for d in decisions {
            let einsum = d.pattern.einsum;
            match by_einsum.iter_mut().find(|(e, _)| *e == einsum) {
                Some((_, v)) => v.push(d),
                None => by_einsum.push((einsum, vec![d])),
            }
        }
        let mut selected = Vec::new();
        for (_, mut candidates) in by_einsum {
            let pick = if candidates.len() == 1 {
                candidates.remove(0)
            } else {
                // "The proposed scheme chooses the one that leads to higher
                // benefits": compare the estimated net saving directly (the
                // paper's shard-size/longer-collective rules are proxies
                // for the same quantity).
                candidates
                    .into_iter()
                    .max_by(|a, b| {
                        a.net_benefit()
                            .partial_cmp(&b.net_benefit())
                            .expect("finite times")
                    })
                    .expect("non-empty")
            };
            if !gate || pick.beneficial {
                selected.push(pick);
            }
        }
        selected
    }
}

#[cfg(test)]
mod tests {
    use overlap_hlo::{Builder, DType, DotDims, ReplicaGroups, Shape};
    use overlap_mesh::DeviceMesh;

    use super::*;
    use crate::find_patterns;

    fn f32s(dims: &[usize]) -> Shape {
        Shape::new(DType::F32, dims.to_vec())
    }

    fn uni() -> DecomposeOptions {
        DecomposeOptions { bidirectional: false, ..Default::default() }
    }

    fn ag_module(n: usize, b_sz: usize, f: usize, h: usize) -> Module {
        let mut b = Builder::new("ag", n);
        let x = b.parameter(f32s(&[b_sz, f]), "x");
        let w = b.parameter(f32s(&[f, h / n]), "w");
        let g = b.all_gather(w, 1, ReplicaGroups::full(n), "g");
        let e = b.einsum(x, g, DotDims::matmul(), "e");
        b.build(vec![e])
    }

    #[test]
    fn big_compute_passes_gate() {
        // Batch sized so the einsum covers the stretched ring while the
        // collective saving still exceeds the DMA-interference tax.
        let m = ag_module(4, 8192, 4096, 4096);
        let machine = Machine::with_mesh(DeviceMesh::ring(4));
        let cm = CostModel::new(&machine, uni());
        let pats = find_patterns(&m);
        let d = cm.evaluate(&m, &pats[0]);
        assert!(d.beneficial, "large einsum should hide the ring: {d:?}");
        assert!(d.comp_t > d.comm_t_ring);
    }

    #[test]
    fn tiny_compute_fails_gate() {
        // Minuscule einsum, large gathered weight: the stretched ring
        // cannot be hidden.
        let n = 8;
        let mut b = Builder::new("m", n);
        let x = b.parameter(f32s(&[1, 8192]), "x");
        let w = b.parameter(f32s(&[8192, 8192 / n]), "w");
        let g = b.all_gather(w, 1, ReplicaGroups::full(n), "g");
        let e = b.einsum(x, g, DotDims::matmul(), "e");
        let m = b.build(vec![e]);
        let machine = Machine::with_mesh(DeviceMesh::ring(n));
        let cm = CostModel::new(&machine, uni());
        let pats = find_patterns(&m);
        let d = cm.evaluate(&m, &pats[0]);
        assert!(d.comm_t_ring > d.comp_t);
        assert!(!d.beneficial, "unhideable ring must be rejected: {d:?}");
    }

    #[test]
    fn bidirectional_ring_is_cheaper() {
        let m = ag_module(4, 1024, 1024, 1024);
        let machine = Machine::with_mesh(DeviceMesh::ring(4));
        let pats = find_patterns(&m);
        let du = CostModel::new(&machine, uni()).evaluate(&m, &pats[0]);
        let db = CostModel::new(&machine, DecomposeOptions::default()).evaluate(&m, &pats[0]);
        assert!(db.comm_t_ring < du.comm_t_ring);
        assert!(db.extra_t > 0.0);
        assert_eq!(du.extra_t, 0.0);
    }

    #[test]
    fn quantized_wire_shrinks_both_sides_of_the_gate() {
        let m = ag_module(8, 256, 4096, 8192);
        let machine = Machine::with_mesh(DeviceMesh::ring(8));
        let pats = find_patterns(&m);
        let dense = CostModel::new(&machine, uni()).evaluate(&m, &pats[0]);
        let int8 = CostModel::new(
            &machine,
            DecomposeOptions { wire: WireFormat::int8(), ..uni() },
        )
        .evaluate(&m, &pats[0]);
        // f32 payload on an int8-ish wire: both the kept collective and
        // the decomposed ring move ~4x fewer bytes, but each ring step
        // now pays a codec sweep, so the ring shrinks by less than 4x.
        assert!(int8.comm_t < dense.comm_t);
        assert!(int8.comm_t_ring < dense.comm_t_ring);
        assert!(int8.comm_t_ring * 4.0 > dense.comm_t_ring);
        // comp_t is wire-independent.
        assert_eq!(int8.comp_t, dense.comp_t);
    }

    #[test]
    fn lossless_wire_is_gate_neutral() {
        let m = ag_module(4, 1024, 1024, 1024);
        let machine = Machine::with_mesh(DeviceMesh::ring(4));
        let pats = find_patterns(&m);
        let base = CostModel::new(&machine, uni()).evaluate(&m, &pats[0]);
        let annotated = CostModel::new(
            &machine,
            DecomposeOptions { wire: WireFormat::Lossless, ..uni() },
        )
        .evaluate(&m, &pats[0]);
        assert_eq!(base.comm_t.to_bits(), annotated.comm_t.to_bits());
        assert_eq!(base.comm_t_ring.to_bits(), annotated.comm_t_ring.to_bits());
    }

    #[test]
    fn two_candidates_resolve_to_one() {
        let n = 2;
        let mut b = Builder::new("m", n);
        let x = b.parameter(f32s(&[512, 1024]), "x");
        let w = b.parameter(f32s(&[512, 256]), "w");
        let gx = b.all_gather(x, 0, ReplicaGroups::full(n), "gx");
        let gw = b.all_gather(w, 0, ReplicaGroups::full(n), "gw");
        let e = b.einsum(gx, gw, DotDims::matmul(), "e");
        let m = b.build(vec![e]);
        let machine = Machine::with_mesh(DeviceMesh::ring(n));
        let cm = CostModel::new(&machine, uni());
        let pats = find_patterns(&m);
        assert_eq!(pats.len(), 2);
        let sel = cm.select(&m, &pats, false);
        assert_eq!(sel.len(), 1, "one pattern per einsum");
    }

    #[test]
    fn parallel_select_matches_serial_bitwise() {
        let n = 2;
        let mut b = Builder::new("m", n);
        let x = b.parameter(f32s(&[512, 1024]), "x");
        let w = b.parameter(f32s(&[512, 256]), "w");
        let gx = b.all_gather(x, 0, ReplicaGroups::full(n), "gx");
        let gw = b.all_gather(w, 0, ReplicaGroups::full(n), "gw");
        let e = b.einsum(gx, gw, DotDims::matmul(), "e");
        let x2 = b.parameter(f32s(&[4096, 2048]), "x2");
        let w2 = b.parameter(f32s(&[2048, 1024]), "w2");
        let g2 = b.all_gather(w2, 1, ReplicaGroups::full(n), "g2");
        let e2 = b.einsum(x2, g2, DotDims::matmul(), "e2");
        let m = b.build(vec![e, e2]);
        let machine = Machine::with_mesh(DeviceMesh::ring(n));
        let table = CostTable::new(&m, &machine).expect("table");
        let pats = find_patterns(&m);
        assert!(pats.len() >= 2, "need several candidates");
        for gate in [false, true] {
            for opts in [uni(), DecomposeOptions::default()] {
                let cm = CostModel::new(&machine, opts);
                let serial = cm.select(&m, &pats, gate);
                let par = cm.select_with(&table, &m, &pats, gate);
                assert_eq!(serial, par, "parallel gate must be bit-identical");
            }
        }
    }

    #[test]
    fn gate_filters_select() {
        let n = 8;
        let mut b = Builder::new("m", n);
        let x = b.parameter(f32s(&[1, 8192]), "x");
        let w = b.parameter(f32s(&[8192, 8192 / n]), "w");
        let g = b.all_gather(w, 1, ReplicaGroups::full(n), "g");
        let e = b.einsum(x, g, DotDims::matmul(), "e");
        let m = b.build(vec![e]);
        let machine = Machine::with_mesh(DeviceMesh::ring(n));
        let cm = CostModel::new(&machine, uni());
        let pats = find_patterns(&m);
        assert!(cm.select(&m, &pats, true).is_empty());
        assert_eq!(cm.select(&m, &pats, false).len(), 1);
    }
}
