//! Latency-hiding instruction scheduling (§5.2).
//!
//! Both schedulers take a verified module (typically after [`asyncify`])
//! and produce a linear instruction order in which asynchronous
//! `CollectivePermuteStart`s issue as early and `Done`s retire as late as
//! data dependences allow, so transfers run concurrently with the compute
//! between them. The simulator executes the returned order directly.
//!
//! [`asyncify`]: crate::asyncify

#[cfg(test)]
use std::collections::HashMap;

use overlap_hlo::{InstrId, LayerTags, Module, ModuleAnalysis, Op};
use overlap_mesh::Machine;
use overlap_sim::{CostTable, InstrCost};

fn latency_of(cost: InstrCost) -> f64 {
    match cost {
        InstrCost::Free => 0.0,
        InstrCost::Compute { seconds, .. }
        | InstrCost::Memory { seconds }
        | InstrCost::SyncCollective { seconds } => seconds,
        // The transfer latency is attributed to the *done*: in the
        // bottom-up pass this is what pushes the matching start earlier.
        InstrCost::AsyncStart(_) => 0.0,
        InstrCost::AsyncDone => 0.0,
    }
}

/// Per-instruction latencies as the *simulator* will charge them: fused
/// non-root members cost nothing at their own position (the engine
/// executes the whole group at its root), and each fusion root carries
/// the group's cost. Without this the scheduler would count a fused
/// `DynamicSlice`'s memory time as overlap opportunity that the executed
/// program does not actually provide.
fn effective_latencies(table: &CostTable, module: &Module, machine: &Machine) -> Vec<f64> {
    // `Module::ids` is a plain counter now, so this builds the latency
    // vector in one pass with no intermediate id allocation.
    let mut lat: Vec<f64> = module.ids().map(|id| latency_of(table.cost(id))).collect();
    for group in module.fusion_groups() {
        let total: f64 = group
            .members
            .iter()
            .map(|&m| match table.cost(m) {
                InstrCost::Compute { seconds, .. } => seconds,
                _ => 0.0,
            })
            .sum();
        for &m in &group.members {
            lat[m.index()] = 0.0;
        }
        lat[group.root.index()] = total + machine.op_overhead();
    }
    lat
}

fn done_transfer_latency(table: &CostTable, module: &Module, id: InstrId) -> f64 {
    let start = module.instr(id).operands()[0];
    done_transfer_latency_of_start(table, start)
}

/// Cross-layer scheduling window: bounds how many consecutive layer
/// stages of a layer-tagged module (see [`LayerTags`]) the schedulers
/// may interleave. With a window of `w`, the top-down pass may issue an
/// instruction of stage `l` only while every stage `<= l - w` is fully
/// scheduled (so collectives of stage `k+1` can overlap compute of
/// stage `k` when `w >= 2`, and `w = 1` keeps strict per-stage
/// barriers); the bottom-up pass applies the mirrored rule from the
/// other end. Monotone tags guarantee the constraint can never
/// deadlock: the dependence-minimal unscheduled instruction of the
/// frontier stage is always both ready and admissible.
#[derive(Debug, Clone)]
pub struct ScheduleWindow {
    layer_of: Vec<u32>,
    num_layers: u32,
    window: u32,
}

impl ScheduleWindow {
    /// Builds the constraint for a layer-tagged module. Returns `None`
    /// when it cannot constrain anything — untagged or single-stage
    /// modules (every committed single-layer figure), or a window at
    /// least as wide as the module — so those schedules stay
    /// byte-identical to the unwindowed scheduler by construction.
    #[must_use]
    pub fn new(tags: &LayerTags, window_layers: usize) -> Option<Self> {
        let num_layers = tags.num_layers();
        let window = window_layers.max(1).min(u32::MAX as usize) as u32;
        if num_layers <= 1 || window >= num_layers {
            return None;
        }
        Some(ScheduleWindow { layer_of: tags.tags().to_vec(), num_layers, window })
    }

    /// The bounded lookahead, in layer stages.
    #[must_use]
    pub fn window_layers(&self) -> usize {
        self.window as usize
    }
}

/// Per-run frontier state for one windowed scheduling pass.
struct WindowCursor<'a> {
    spec: &'a ScheduleWindow,
    /// Unscheduled instructions per stage.
    remaining: Vec<usize>,
    /// Lowest (forward) or highest (reverse) incomplete stage.
    frontier: u32,
    forward: bool,
}

impl<'a> WindowCursor<'a> {
    fn new(spec: &'a ScheduleWindow, forward: bool) -> Self {
        let mut remaining = vec![0usize; spec.num_layers as usize];
        for &l in &spec.layer_of {
            remaining[l as usize] += 1;
        }
        let frontier = if forward { 0 } else { spec.num_layers - 1 };
        WindowCursor { spec, remaining, frontier, forward }
    }

    /// Whether stage membership allows scheduling `id` now.
    fn admits(&self, id: InstrId) -> bool {
        let l = self.spec.layer_of[id.index()];
        if self.forward {
            l < self.frontier + self.spec.window
        } else {
            l + self.spec.window > self.frontier
        }
    }

    /// Selection-key component that keeps the frontier stage preferred
    /// among admissible candidates of the same class: cross-boundary
    /// work is a *filler* for gaps the frontier stage cannot cover
    /// (e.g. compute of stage `k` hiding a pending transfer of stage
    /// `k+1`), never the default — unconstrained stage-hopping was
    /// measured to perturb the greedy order for no overlap gain.
    /// Returns the distance from the frontier (0 = frontier stage).
    fn distance(&self, id: InstrId) -> u32 {
        let l = self.spec.layer_of[id.index()];
        if self.forward {
            l.saturating_sub(self.frontier)
        } else {
            self.frontier.saturating_sub(l)
        }
    }

    fn on_scheduled(&mut self, id: InstrId) {
        let l = self.spec.layer_of[id.index()] as usize;
        self.remaining[l] -= 1;
        if self.forward {
            while (self.frontier as usize) < self.remaining.len() - 1
                && self.remaining[self.frontier as usize] == 0
            {
                self.frontier += 1;
            }
        } else {
            while self.frontier > 0 && self.remaining[self.frontier as usize] == 0 {
                self.frontier -= 1;
            }
        }
    }
}

/// Shared scheduling inputs: the cost table, the maintained users table,
/// and the simulator-faithful per-instruction latencies — computed
/// **once** and shared between both schedulers (and any number of
/// scheduler invocations) instead of being recomputed per call.
pub struct ScheduleContext<'a> {
    table: &'a CostTable,
    analysis: &'a ModuleAnalysis,
    effective_lat: Vec<f64>,
    window: Option<ScheduleWindow>,
}

impl<'a> ScheduleContext<'a> {
    /// Builds the context for one `(module, machine)` pair.
    ///
    /// # Panics
    ///
    /// Panics if `table` or `analysis` does not cover `module`.
    #[must_use]
    pub fn new(
        table: &'a CostTable,
        analysis: &'a ModuleAnalysis,
        module: &Module,
        machine: &Machine,
    ) -> Self {
        assert_eq!(table.len(), module.len(), "cost table built for a different module");
        assert_eq!(analysis.len(), module.len(), "analysis does not cover module");
        ScheduleContext {
            table,
            analysis,
            effective_lat: effective_latencies(table, module, machine),
            window: None,
        }
    }

    /// Attaches a cross-layer window constraint (`None` leaves both
    /// schedulers byte-identical to the unwindowed pass).
    #[must_use]
    pub fn with_window(mut self, window: Option<ScheduleWindow>) -> Self {
        self.window = window;
        self
    }

    /// The per-instruction latencies the schedulers plan with (fusion
    /// members zeroed, roots carrying their group's cost).
    #[must_use]
    pub fn effective_latencies(&self) -> &[f64] {
        &self.effective_lat
    }
}

/// [`schedule_bottom_up`] driven by a prebuilt [`ScheduleContext`]: no
/// verification, no users rebuild, no latency recomputation.
#[must_use]
pub fn schedule_bottom_up_ctx(
    ctx: &ScheduleContext<'_>,
    module: &Module,
    machine: &Machine,
) -> Vec<InstrId> {
    bottom_up_impl(
        ctx.table,
        module,
        machine,
        ctx.analysis.users(),
        &ctx.effective_lat,
        ctx.window.as_ref(),
    )
}

/// [`schedule_top_down`] driven by a prebuilt [`ScheduleContext`]: no
/// verification and no users rebuild.
#[must_use]
pub fn schedule_top_down_ctx(
    ctx: &ScheduleContext<'_>,
    module: &Module,
    machine: &Machine,
) -> Vec<InstrId> {
    top_down_impl(module, machine, ctx.analysis.users(), ctx.window.as_ref())
}

fn done_transfer_latency_of_start(table: &CostTable, start: InstrId) -> f64 {
    match table.cost(start) {
        InstrCost::AsyncStart(t) => t.seconds,
        _ => 0.0,
    }
}

/// The bottom-up scheduler of Algorithm 2.
///
/// Instructions are scheduled in reverse, starting from the dataflow
/// roots. A ready queue prioritizes `CollectivePermuteDone`s (placing
/// them as close as possible to their first user, i.e. as late as
/// possible in forward order); the transfer latency attributed to a
/// scheduled done pushes its `Start`'s reverse-ready time out, so the
/// scheduler fills the gap with independent compute before placing the
/// start — which is exactly what makes the transfer overlap. A pending
/// queue holds instructions whose users are all scheduled but whose
/// estimated ready time has not been reached; the in-flight asynchronous
/// budget (`machine.max_inflight_async()`) defers additional dones when
/// exhausted (footnote 11 of the paper).
///
/// Returns a complete topological order (operands precede users).
///
/// # Example
///
/// ```
/// use overlap_core::{asyncify, schedule_bottom_up};
/// use overlap_hlo::{Builder, DType, Shape};
/// use overlap_mesh::Machine;
///
/// let mut b = Builder::new("m", 2);
/// let x = b.parameter(Shape::new(DType::F32, vec![1024]), "x");
/// let p = b.collective_permute(x, vec![(0, 1), (1, 0)], "p");
/// let c = b.copy(p, "c");
/// let m = asyncify(&b.build(vec![c]));
///
/// let order = schedule_bottom_up(&m, &Machine::tpu_v4_like(2));
/// assert_eq!(order.len(), m.len());
/// ```
///
/// # Panics
///
/// Panics if the module fails verification.
#[must_use]
pub fn schedule_bottom_up(module: &Module, machine: &Machine) -> Vec<InstrId> {
    let table =
        CostTable::new(module, machine).expect("schedule requires a verified module");
    schedule_bottom_up_with(&table, module, machine)
}

/// [`schedule_bottom_up`] with a pre-built [`CostTable`] for the same
/// `(module, machine)` pair, skipping re-verification and per-call cost
/// re-derivation. The pipeline builds one table per compiled module and
/// shares it between scheduling and simulation.
///
/// # Panics
///
/// Panics if the table does not cover the module.
#[must_use]
pub fn schedule_bottom_up_with(
    table: &CostTable,
    module: &Module,
    machine: &Machine,
) -> Vec<InstrId> {
    assert_eq!(
        table.len(),
        module.len(),
        "cost table built for a different module"
    );
    let users = module.users();
    let effective_lat = effective_latencies(table, module, machine);
    bottom_up_impl(table, module, machine, &users, &effective_lat, None)
}

fn bottom_up_impl(
    table: &CostTable,
    module: &Module,
    machine: &Machine,
    users: &[Vec<InstrId>],
    effective_lat: &[f64],
    window: Option<&ScheduleWindow>,
) -> Vec<InstrId> {
    let n = module.len();
    let mut unscheduled_users: Vec<usize> = users.iter().map(Vec::len).collect();
    let mut finish = vec![0.0f64; n];
    let mut ready_time = vec![0.0f64; n];
    let mut in_ready: Vec<InstrId> = Vec::new();
    let mut in_pending: Vec<InstrId> = Vec::new();
    let mut scheduled = vec![false; n];
    let mut reverse_seq: Vec<InstrId> = Vec::with_capacity(n);
    let mut current_time = 0.0f64;
    let mut inflight_async = 0usize;
    let budget = machine.max_inflight_async();

    for id in module.ids() {
        if unscheduled_users[id.index()] == 0 {
            ready_time[id.index()] = 0.0;
            in_ready.push(id);
        }
    }

    let is_done = |id: InstrId| matches!(module.instr(id).op(), Op::CollectivePermuteDone);
    let is_start =
        |id: InstrId| matches!(module.instr(id).op(), Op::CollectivePermuteStart { .. });

    // The reverse pass consumes the module top-down by *layer*: the
    // frontier starts at the last layer and an instruction of layer `l`
    // is admissible while `l + window > frontier`.
    let mut cursor = window.map(|w| WindowCursor::new(w, false));

    while !in_ready.is_empty() || !in_pending.is_empty() {
        let admits = |id: InstrId| match &cursor {
            Some(c) => c.admits(id),
            None => true,
        };
        // 0 when no window is active, so the added key component is
        // inert and the unwindowed order stays byte-identical.
        let near = |id: InstrId| match &cursor {
            Some(c) => -(c.distance(id) as i64),
            None => 0,
        };
        // SelectNodeFromReadyQ: prefer dones (budget permitting; they land
        // as late as possible in forward order), then starts (a start only
        // becomes ready after the pending queue has delayed it by its
        // transfer latency, so once ready it should be placed eagerly —
        // that is what pushes it early in forward order), then the
        // original order (footnote 10).
        let pick_from = |queue: &[InstrId], by_ready_time: bool| {
            let allowed =
                |id: InstrId| admits(id) && !(is_done(id) && inflight_async >= budget);
            let class = |id: InstrId| {
                if is_done(id) {
                    2u8
                } else if is_start(id) {
                    1
                } else {
                    0
                }
            };
            let key = |id: InstrId| {
                if by_ready_time {
                    // Earliest ready first (pending queue rule).
                    (-ready_time[id.index()], id.index() as i64)
                } else {
                    (0.0, id.index() as i64)
                }
            };
            queue.iter().copied().filter(|&id| allowed(id)).max_by(|&a, &b| {
                (near(a), class(a), key(a))
                    .partial_cmp(&(near(b), class(b), key(b)))
                    .expect("ordering keys are finite")
            })
        };

        let candidate = pick_from(&in_ready, false)
            .or_else(|| pick_from(&in_pending, true))
            // Only over-budget dones remain inside the window: take one
            // to guarantee progress (footnote 11's rare degradation),
            // still preferring window-admissible work.
            .or_else(|| in_ready.iter().rev().copied().find(|&id| admits(id)))
            .or_else(|| in_pending.iter().rev().copied().find(|&id| admits(id)))
            // Nothing admissible at all (defensive; monotone tags make
            // this unreachable — the frontier layer always has a ready
            // instruction): ignore the window rather than deadlock.
            .or_else(|| in_ready.last().copied())
            .or_else(|| in_pending.last().copied())
            .expect("a queue is non-empty");
        in_ready.retain(|&x| x != candidate);
        in_pending.retain(|&x| x != candidate);

        debug_assert!(!scheduled[candidate.index()]);
        scheduled[candidate.index()] = true;
        reverse_seq.push(candidate);
        if let Some(c) = cursor.as_mut() {
            c.on_scheduled(candidate);
        }
        if is_done(candidate) {
            inflight_async += 1;
        } else if is_start(candidate) {
            inflight_async = inflight_async.saturating_sub(1);
        }

        // Reverse-timeline bookkeeping (Algorithm 2). A done occupies the
        // stream for ~nothing but its *data* finishes a transfer-latency
        // later: `current_time` advances by the occupancy while `finish`
        // carries the latency, so the matching start sits in the pending
        // queue until enough other work has been scheduled to cover the
        // transfer — that reverse gap is the forward overlap window.
        let mut rt = 0.0f64;
        for &u in &users[candidate.index()] {
            rt = rt.max(finish[u.index()]);
        }
        ready_time[candidate.index()] = rt;
        let (occupancy, data_latency) = if is_done(candidate) {
            // Inflate the transfer latency so discretization never places
            // the start a slot too late — issuing a transfer early is
            // free, issuing it late exposes it.
            (0.0, 2.0 * done_transfer_latency(table, module, candidate))
        } else {
            let l = effective_lat[candidate.index()];
            (l, l)
        };
        let base = rt.max(current_time);
        finish[candidate.index()] = base + data_latency;
        current_time = base + occupancy;

        // Operands whose users are now all scheduled become available.
        for &op in module.instr(candidate).operands() {
            let c = &mut unscheduled_users[op.index()];
            *c -= 1;
            if *c == 0 {
                let mut rt = users[op.index()]
                    .iter()
                    .map(|u| finish[u.index()])
                    .fold(0.0f64, f64::max);
                if is_start(op) {
                    // A start must sit in the pending queue for its
                    // transfer latency measured from *now* — its done's
                    // recorded finish can be stale when the done's users
                    // were scheduled long ago in the reverse pass, and an
                    // immediately-ready start would land adjacent to its
                    // done in forward order (zero overlap).
                    let gate = current_time
                        + 2.0 * done_transfer_latency_of_start(table, op);
                    rt = rt.max(gate);
                }
                ready_time[op.index()] = rt;
                if rt <= current_time {
                    in_ready.push(op);
                } else {
                    in_pending.push(op);
                }
            }
        }
        // Promote pending entries that became ready.
        let (now_ready, still_pending): (Vec<_>, Vec<_>) = in_pending
            .iter()
            .copied()
            .partition(|id| ready_time[id.index()] <= current_time);
        in_ready.extend(now_ready);
        in_pending = still_pending;
    }

    reverse_seq.reverse();
    reverse_seq
}

/// The top-down scheduler of §5.2.
///
/// Forward greedy list scheduling: among the dependence-ready
/// instructions, a `CollectivePermuteStart` is always issued first (as
/// early as possible), a `CollectivePermuteDone` is deferred until
/// nothing else can run (as late as possible), and everything else keeps
/// the input order — the input order itself provides the cost
/// "rebalancing" the paper describes, since the decomposition interleaves
/// permutes with the partial einsums they should hide behind. When the
/// in-flight asynchronous budget is exhausted the priorities flip so a
/// done retires before the next start issues.
///
/// Returns a complete topological order (operands precede users).
///
/// # Panics
///
/// Panics if the module fails verification.
#[must_use]
pub fn schedule_top_down(module: &Module, machine: &Machine) -> Vec<InstrId> {
    module.verify().expect("schedule requires a verified module");
    let users = module.users();
    top_down_impl(module, machine, &users, None)
}

fn top_down_impl(
    module: &Module,
    machine: &Machine,
    users: &[Vec<InstrId>],
    window: Option<&ScheduleWindow>,
) -> Vec<InstrId> {
    let n = module.len();
    let mut remaining_deps: Vec<usize> =
        module.iter().map(|(_, ins)| ins.operands().len()).collect();
    let mut ready: Vec<InstrId> =
        module.ids().filter(|id| remaining_deps[id.index()] == 0).collect();
    let mut order = Vec::with_capacity(n);
    let mut inflight = 0usize;
    let budget = machine.max_inflight_async();

    let class = |id: InstrId, inflight: usize| -> u8 {
        match module.instr(id).op() {
            Op::CollectivePermuteStart { .. } => {
                if inflight < budget {
                    0 // issue ASAP
                } else {
                    2
                }
            }
            Op::CollectivePermuteDone => {
                if inflight < budget {
                    2 // retire as late as possible
                } else {
                    0
                }
            }
            _ => 1,
        }
    };

    // The forward pass consumes the module bottom-up by *layer*: the
    // frontier starts at layer 0 and an instruction of layer `l` is
    // admissible while `l < frontier + window`.
    let mut cursor = window.map(|w| WindowCursor::new(w, true));

    while !ready.is_empty() {
        // Lowest class first; ties prefer the frontier stage (the
        // window's cross-boundary freedom is a filler, not a default),
        // then original position (input order).
        let admits = |id: InstrId| match &cursor {
            Some(c) => c.admits(id),
            None => true,
        };
        let near = |id: InstrId| match &cursor {
            Some(c) => c.distance(id),
            None => 0,
        };
        let best = ready
            .iter()
            .copied()
            .filter(|&id| admits(id))
            .min_by_key(|&id| (near(id), class(id, inflight), id.index()))
            // Defensive (unreachable with monotone tags): ignore the
            // window rather than deadlock.
            .or_else(|| {
                ready.iter().copied().min_by_key(|&id| (class(id, inflight), id.index()))
            })
            .expect("ready non-empty");
        ready.retain(|&x| x != best);
        if let Some(c) = cursor.as_mut() {
            c.on_scheduled(best);
        }
        match module.instr(best).op() {
            Op::CollectivePermuteStart { .. } => inflight += 1,
            Op::CollectivePermuteDone => inflight = inflight.saturating_sub(1),
            _ => {}
        }
        order.push(best);
        for &u in &users[best.index()] {
            remaining_deps[u.index()] -= 1;
            if remaining_deps[u.index()] == 0 {
                ready.push(u);
            }
        }
    }
    assert_eq!(order.len(), n, "schedule must cover every instruction");
    order
}

/// Positions of each instruction in an order (for tests and analyses).
#[cfg(test)]
pub(crate) fn positions(order: &[InstrId]) -> HashMap<InstrId, usize> {
    order.iter().enumerate().map(|(i, &id)| (id, i)).collect()
}

#[cfg(test)]
mod tests {
    use overlap_hlo::{Builder, DType, DotDims, Shape};
    use overlap_sim::simulate_order;

    use super::*;

    fn f32s(dims: &[usize]) -> Shape {
        Shape::new(DType::F32, dims.to_vec())
    }

    /// A module with one async transfer and one big independent einsum:
    /// good schedulers put the start before the einsum and the done after.
    fn overlap_opportunity() -> (Module, InstrId, InstrId, InstrId) {
        let mut b = Builder::new("m", 2);
        let big = b.parameter(f32s(&[2048, 2048]), "big");
        let w = b.parameter(f32s(&[2048, 2048]), "w");
        let x = b.parameter(f32s(&[1 << 16]), "x");
        let s = b.collective_permute_start(x, vec![(0, 1), (1, 0)], "s");
        let d = b.collective_permute_done(s, "d");
        let y = b.einsum(big, w, DotDims::matmul(), "y");
        // The final result consumes both.
        let yc = b.reshape(y, vec![2048 * 2048], "yc");
        let dc = b.reshape(d, vec![1 << 16], "dc");
        let m = b.build(vec![yc, dc]);
        (m, s, d, y)
    }

    #[test]
    fn bottom_up_overlaps_transfer_with_compute() {
        let (m, s, d, y) = overlap_opportunity();
        let machine = Machine::tpu_v4_like(2);
        let order = schedule_bottom_up(&m, &machine);
        let pos = positions(&order);
        assert!(pos[&s] < pos[&y], "start should issue before the einsum");
        assert!(pos[&d] > pos[&y], "done should retire after the einsum");
        let r = simulate_order(&m, &machine, &order).unwrap();
        assert_eq!(r.exposed_async_time(), 0.0, "transfer should hide entirely");
    }

    #[test]
    fn top_down_overlaps_transfer_with_compute() {
        let (m, s, d, y) = overlap_opportunity();
        let machine = Machine::tpu_v4_like(2);
        let order = schedule_top_down(&m, &machine);
        let pos = positions(&order);
        assert!(pos[&s] < pos[&y]);
        assert!(pos[&d] > pos[&y]);
        let r = simulate_order(&m, &machine, &order).unwrap();
        assert_eq!(r.exposed_async_time(), 0.0);
    }

    #[test]
    fn schedules_are_complete_topological_orders() {
        let (m, _, _, _) = overlap_opportunity();
        let machine = Machine::tpu_v4_like(2);
        for order in [schedule_bottom_up(&m, &machine), schedule_top_down(&m, &machine)] {
            assert_eq!(order.len(), m.len());
            // simulate_order validates topological completeness.
            simulate_order(&m, &machine, &order).unwrap();
        }
    }

    #[test]
    fn budget_limits_inflight_starts_top_down() {
        let machine = Machine::tpu_v4_like(2).with_max_inflight_async(1);
        let mut b = Builder::new("m", 2);
        let x = b.parameter(f32s(&[64]), "x");
        let pairs = vec![(0u32, 1u32), (1, 0)];
        let s1 = b.collective_permute_start(x, pairs.clone(), "s1");
        let d1 = b.collective_permute_done(s1, "d1");
        let s2 = b.collective_permute_start(x, pairs, "s2");
        let d2 = b.collective_permute_done(s2, "d2");
        let m = b.build(vec![d1, d2]);
        let order = schedule_top_down(&m, &machine);
        let pos = positions(&order);
        // With budget 1, the second start must wait for the first done.
        assert!(pos[&d1] < pos[&s2] || pos[&d2] < pos[&s1]);
    }

    #[test]
    fn bottom_up_handles_modules_without_async() {
        let mut b = Builder::new("m", 1);
        let x = b.parameter(f32s(&[8]), "x");
        let c = b.copy(x, "c");
        let c2 = b.copy(c, "c2");
        let m = b.build(vec![c2]);
        let machine = Machine::tpu_v4_like(1);
        let order = schedule_bottom_up(&m, &machine);
        assert_eq!(order, vec![x, c, c2]);
    }

    /// `stages` chained einsum stages, each tagged `L<k>.`; every stage
    /// also carries an async permute of the *previous* stage's output so
    /// windows > 1 have something to hoist across the stage boundary.
    fn stacked_tagged(stages: usize) -> Module {
        let mut b = Builder::new("m", 2);
        let mut x = b.parameter(f32s(&[256, 256]), "L0.x");
        let mut outs = Vec::new();
        for k in 0..stages {
            let w = b.parameter(f32s(&[256, 256]), &format!("L{k}.w"));
            x = b.einsum(x, w, DotDims::matmul(), &format!("L{k}.h"));
            let s = b.collective_permute_start(
                x,
                vec![(0, 1), (1, 0)],
                &format!("L{k}.p"),
            );
            let d = b.collective_permute_done(s, &format!("L{k}.pd"));
            outs.push(b.reshape(d, vec![256 * 256], &format!("L{k}.out")));
        }
        b.build(vec![outs.pop().unwrap()])
    }

    #[test]
    fn window_is_inert_on_untagged_modules() {
        let (m, _, _, _) = overlap_opportunity();
        let tags = LayerTags::of(&m);
        assert!(ScheduleWindow::new(&tags, 1).is_none());
        assert!(ScheduleWindow::new(&tags, 4).is_none());
        // A window at least as wide as the stage count constrains nothing.
        let stacked = stacked_tagged(3);
        let tags = LayerTags::of(&stacked);
        assert!(ScheduleWindow::new(&tags, 3).is_none());
        assert!(ScheduleWindow::new(&tags, 2).is_some());
    }

    #[test]
    fn none_window_context_matches_plain_schedulers() {
        let m = stacked_tagged(3);
        let machine = Machine::tpu_v4_like(2);
        let table = CostTable::new(&m, &machine).unwrap();
        let analysis = ModuleAnalysis::of(&m);
        let ctx = ScheduleContext::new(&table, &analysis, &m, &machine).with_window(None);
        assert_eq!(
            schedule_bottom_up_ctx(&ctx, &m, &machine),
            schedule_bottom_up_with(&table, &m, &machine)
        );
        assert_eq!(schedule_top_down_ctx(&ctx, &m, &machine), schedule_top_down(&m, &machine));
    }

    #[test]
    fn window_one_enforces_stage_barriers() {
        let m = stacked_tagged(3);
        let machine = Machine::tpu_v4_like(2);
        let table = CostTable::new(&m, &machine).unwrap();
        let analysis = ModuleAnalysis::of(&m);
        let tags = LayerTags::of(&m);
        let ctx = ScheduleContext::new(&table, &analysis, &m, &machine)
            .with_window(ScheduleWindow::new(&tags, 1));
        for order in
            [schedule_bottom_up_ctx(&ctx, &m, &machine), schedule_top_down_ctx(&ctx, &m, &machine)]
        {
            assert_eq!(order.len(), m.len());
            simulate_order(&m, &machine, &order).unwrap();
            // Strict barriers: stage tags are non-decreasing along the order.
            let stage_seq: Vec<u32> = order.iter().map(|&id| tags.layer_of(id)).collect();
            let mut sorted = stage_seq.clone();
            sorted.sort_unstable();
            assert_eq!(stage_seq, sorted, "window=1 must not interleave stages");
        }
    }

    #[test]
    fn windowed_orders_are_valid_and_bounded() {
        let m = stacked_tagged(4);
        let machine = Machine::tpu_v4_like(2);
        let table = CostTable::new(&m, &machine).unwrap();
        let analysis = ModuleAnalysis::of(&m);
        let tags = LayerTags::of(&m);
        for w in [2usize, 3] {
            let ctx = ScheduleContext::new(&table, &analysis, &m, &machine)
                .with_window(ScheduleWindow::new(&tags, w));
            for order in [
                schedule_bottom_up_ctx(&ctx, &m, &machine),
                schedule_top_down_ctx(&ctx, &m, &machine),
            ] {
                assert_eq!(order.len(), m.len());
                simulate_order(&m, &machine, &order).unwrap();
                // Any two instructions more than `w` stages apart must
                // respect stage order (the window bounds interleaving).
                for (i, &a) in order.iter().enumerate() {
                    for &b in &order[i + 1..] {
                        let (la, lb) = (tags.layer_of(a), tags.layer_of(b));
                        assert!(
                            lb + (w as u32) > la,
                            "stage {lb} scheduled after stage {la} with window {w}"
                        );
                    }
                }
            }
        }
    }
}
