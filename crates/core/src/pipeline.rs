//! The end-to-end compilation pipeline.

use overlap_hlo::{HloError, InstrId, LayerTags, Module, ModuleAnalysis, WireFormat};
use overlap_mesh::{FaultSpec, Machine};
use overlap_sim::CostTable;

use crate::asyncify::asyncify_with;
use crate::costgate::{CostModel, FaultGateAdjust, GateDecision};
use crate::decompose::{decompose_each_with, DecomposeOptions, DecomposeSummary};
use crate::fusion::{fuse_with, FusionOptions};
use crate::pattern::find_patterns_with;
use crate::profile::PhaseTimings;
use crate::reassociate::split_all_reduces_with;
use crate::strategy::StrategySpec;
use crate::schedule::{
    schedule_bottom_up_ctx, schedule_top_down_ctx, ScheduleContext, ScheduleWindow,
};

/// Which §5.2 scheduler orders the final instruction sequence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedulerKind {
    /// The bottom-up scheduler of Algorithm 2 (the paper's default: ~5%
    /// faster and more general, Fig. 16).
    #[default]
    BottomUp,
    /// The simpler top-down early-start/late-done scheduler.
    TopDown,
    /// Keep the builder (program) order — no latency hiding.
    Original,
}

/// Options for the full pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct OverlapOptions {
    /// The decomposition strategy (§5.1/§5.4 knobs, per pattern kind,
    /// plus fusion aggressiveness and the partitioning hint). This is
    /// the searchable configuration the autotuner enumerates.
    pub strategy: StrategySpec,
    /// Scheduler choice (§5.2).
    pub scheduler: SchedulerKind,
    /// Whether the §5.5 cost gate filters patterns (`false` decomposes
    /// every candidate, for ablations).
    pub disable_cost_gate: bool,
    /// Split `AllReduce`s into `ReduceScatter + AllGather` first (§2.1),
    /// exposing Megatron-style patterns to the decomposition. Off in
    /// [`OverlapOptions::paper_default`] — the paper's own strategy avoids
    /// AllReduces by construction.
    pub split_all_reduce: bool,
    /// Hard numerics budget for quantized wire traffic, as a maximum
    /// predicted relative error per collective
    /// ([`WireFormat::predicted_rel_error`]). A quantized collective whose
    /// prediction exceeds the budget is forced back to lossless, with the
    /// reason recorded in [`Compiled::fallbacks`]. `None` (the default)
    /// trusts the strategy as written; the knob is inert on lossless
    /// strategies either way.
    pub error_budget: Option<f64>,
}

impl OverlapOptions {
    /// The paper's production configuration: decompose with unrolling and
    /// bidirectional transfer, overlap-aware fusion, bottom-up scheduling,
    /// cost gate on.
    #[must_use]
    pub fn paper_default() -> Self {
        OverlapOptions {
            strategy: StrategySpec::paper_default(),
            scheduler: SchedulerKind::BottomUp,
            disable_cost_gate: false,
            split_all_reduce: false,
            error_budget: None,
        }
    }

    /// [`OverlapOptions::paper_default`] with a different strategy.
    #[must_use]
    pub fn with_strategy(strategy: StrategySpec) -> Self {
        OverlapOptions { strategy, ..Self::paper_default() }
    }

    /// The best strategy found by the offline autotuner
    /// (`overlap-autotune`, leaderboards in `results/fig_autotune.json`)
    /// for this model/machine pair.
    ///
    /// On short-ring meshes (every axis at most 4 devices) the sweep
    /// found a chunked unidirectional AllGather window beating the
    /// paper default: with so few ring steps the bidirectional
    /// prologue/epilogue overhead outweighs its halved circulation, and
    /// the two-shard window keeps per-step compute above the transfer
    /// time. Everywhere the Table-1 machines run — long rings on large
    /// meshes — the paper default remains the winner, so that is what
    /// every other shape gets. The `model` name is accepted so future
    /// sweeps can special-case per-model winners without an API change.
    #[must_use]
    pub fn autotuned(model: &str, machine: &Machine) -> Self {
        let _ = model;
        let short_rings = machine.mesh().shape().iter().all(|&d| d <= 4);
        if short_rings {
            return Self::with_strategy(
                StrategySpec::paper_default()
                    .with_ring(crate::RingDirection::Unidirectional)
                    .with_chunk(2),
            );
        }
        Self::paper_default()
    }

    /// The decompose options the pipeline will hand the rewrite for one
    /// pattern kind (the cost gate may still flip `bidirectional` per
    /// pattern).
    #[must_use]
    pub fn decompose_for(&self, kind: &crate::PatternKind) -> DecomposeOptions {
        self.strategy.options_for(kind)
    }

    /// The fusion pass configuration (`None` skips the pass).
    #[must_use]
    pub fn fusion_options(&self) -> Option<FusionOptions> {
        self.strategy.fusion_options()
    }

    /// A stable fingerprint over every field that can change the
    /// pipeline's output. One third of the [`crate::ArtifactCache`] key
    /// (with [`overlap_hlo::Module::fingerprint`] and
    /// [`overlap_mesh::Machine::fingerprint`]): two option sets with equal
    /// fingerprints compile any module identically, so a new knob added
    /// here — or to [`StrategySpec`] — **must** be hashed or stale cache
    /// entries will be served for configurations that no longer produce
    /// them.
    #[must_use]
    pub fn fingerprint(&self) -> overlap_json::Fingerprint {
        let mut h = overlap_json::StableHasher::new("overlap-options-v2");
        h.write_fingerprint(self.strategy.fingerprint());
        h.write_str(match self.scheduler {
            SchedulerKind::BottomUp => "bottom-up",
            SchedulerKind::TopDown => "top-down",
            SchedulerKind::Original => "original",
        });
        h.write_bool(self.disable_cost_gate);
        h.write_bool(self.split_all_reduce);
        // Hashed only when set: budget-free options must keep the exact
        // pre-precision fingerprints so every historical artifact-cache
        // key and committed figure stays byte-identical.
        if let Some(budget) = self.error_budget {
            h.write_str("error-budget");
            h.write_f64(budget);
        }
        h.finish()
    }
}

/// One pattern (or the whole module) the pipeline kept in its original
/// synchronous form because the configured [`FaultSpec`] made the
/// decomposed form regress (or fail outright).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FallbackRecord {
    /// Name of the einsum whose pattern fell back, or `"<module>"` when
    /// the whole compiled module was abandoned for the original program.
    pub einsum: String,
    /// Human-readable cause (regressed fault-adjusted gate, or the typed
    /// simulation error that aborted the degraded-machine smoke run).
    pub reason: String,
}

impl FallbackRecord {
    /// The marker used in [`FallbackRecord::einsum`] for whole-module
    /// fallbacks.
    pub const WHOLE_MODULE: &'static str = "<module>";
}

/// Enforces the [`OverlapOptions::error_budget`] on one collective's wire:
/// a quantized encoding whose predicted relative error after `encodes`
/// quantization events exceeds the budget is forced back to lossless, with
/// the reason recorded against `name`.
fn budget_wire(
    wire: WireFormat,
    encodes: usize,
    budget: Option<f64>,
    name: &str,
    fallbacks: &mut Vec<FallbackRecord>,
) -> WireFormat {
    if wire.is_lossless() {
        return wire;
    }
    let Some(budget) = budget else { return wire };
    let predicted = wire.predicted_rel_error(encodes);
    if predicted <= budget {
        return wire;
    }
    fallbacks.push(FallbackRecord {
        einsum: name.to_string(),
        reason: format!(
            "wire {} predicted relative error {predicted:.3e} over {encodes} \
             quantization events exceeds the error budget {budget:.3e}; \
             forced lossless",
            wire.describe()
        ),
    });
    WireFormat::Lossless
}

/// Result of running the pipeline.
#[derive(Debug, Clone)]
pub struct Compiled {
    /// The transformed module (decomposed, asyncified, fused).
    pub module: Module,
    /// The scheduled instruction order to execute/simulate.
    pub order: Vec<InstrId>,
    /// Per-pattern decomposition summaries.
    pub summaries: Vec<DecomposeSummary>,
    /// The cost-gate decisions (including rejected patterns). When the
    /// pipeline carries a [`FaultSpec`], the recorded terms are the
    /// fault-adjusted ones the final per-pattern verdicts used.
    pub decisions: Vec<GateDecision>,
    /// Patterns (or the whole module) that gracefully fell back to their
    /// original synchronous form under the configured [`FaultSpec`];
    /// empty on fault-free compiles.
    pub fallbacks: Vec<FallbackRecord>,
    /// Precomputed costs for `module` on the compiling machine; pass to
    /// [`overlap_sim::simulate_order_with`] /
    /// [`overlap_sim::simulate_order_repeated_with`] to simulate the
    /// compiled program without re-deriving costs.
    pub cost_table: CostTable,
    /// Wall time spent in each pipeline pass (see [`PhaseTimings`]).
    pub timings: PhaseTimings,
}

/// The compiler pipeline implementing the paper end to end:
/// pattern finding → §5.5 gate → §5.1/§5.4 decomposition → §5.2 async
/// conversion → §5.4.3 fusion → §5.2 scheduling.
///
/// # Example
///
/// ```
/// use overlap_core::{OverlapOptions, OverlapPipeline};
/// use overlap_hlo::{Builder, DType, DotDims, ReplicaGroups, Shape};
/// use overlap_mesh::Machine;
///
/// let n = 4;
/// let mut b = Builder::new("layer", n);
/// let x = b.parameter(Shape::new(DType::F32, vec![8192, 1024]), "x");
/// let w = b.parameter(Shape::new(DType::F32, vec![1024, 1024]), "w");
/// let wg = b.all_gather(w, 1, ReplicaGroups::full(n), "wg");
/// let y = b.einsum(x, wg, DotDims::matmul(), "y");
/// let m = b.build(vec![y]);
///
/// let machine = Machine::tpu_v4_like(n);
/// let compiled = OverlapPipeline::new(OverlapOptions::paper_default())
///     .run(&m, &machine)
///     .unwrap();
/// assert_eq!(compiled.summaries.len(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct OverlapPipeline {
    options: OverlapOptions,
    faults: Option<FaultSpec>,
}

impl OverlapPipeline {
    /// Creates a pipeline with the given options.
    #[must_use]
    pub fn new(options: OverlapOptions) -> Self {
        OverlapPipeline { options, faults: None }
    }

    /// The configured options.
    #[must_use]
    pub fn options(&self) -> &OverlapOptions {
        &self.options
    }

    /// Compiles for a degraded machine: the §5.5 gate is re-evaluated
    /// under `spec` (patterns whose decomposed form regresses past the
    /// original collective fall back per pattern) and the compiled
    /// schedule is smoke-simulated with faults injected — if that
    /// simulation errors out, the whole module falls back to the
    /// original program. Fallbacks are recorded in
    /// [`Compiled::fallbacks`] and the extra phases in
    /// [`Compiled::timings`].
    ///
    /// A [`FaultSpec::default()`]-equivalent (no-op) spec leaves the
    /// pipeline bit-identical to a fault-free compile.
    #[must_use]
    pub fn with_faults(mut self, spec: FaultSpec) -> Self {
        self.faults = Some(spec);
        self
    }

    /// The configured fault spec, if any.
    #[must_use]
    pub fn faults(&self) -> Option<&FaultSpec> {
        self.faults.as_ref()
    }

    /// The fault spec, filtered to `None` when it would not perturb
    /// anything — the cache keys on this, so a no-op spec shares
    /// artifacts with fault-free compiles. Public so callers that must
    /// *predict* the cache's artifact key (fleet peering routes
    /// fetches by it) compute the exact key the cache will use.
    #[must_use]
    pub fn effective_faults(&self) -> Option<&FaultSpec> {
        self.faults.as_ref().filter(|s| !s.is_noop())
    }

    /// Runs all passes on `module` for `machine`.
    ///
    /// Every pass shares one [`ModuleAnalysis`]: the builder-based
    /// rewrites return the analysis of their output (maintained
    /// append-by-append), the read-only passes borrow its users/fusion
    /// tables, and the final check is the *incremental* verifier — only
    /// the instructions past the analysis watermark get per-instruction
    /// checks (set `OVERLAP_FULL_VERIFY=1` to cross-check against the
    /// full verifier). Per-pass wall times land in [`Compiled::timings`].
    ///
    /// # Errors
    ///
    /// Returns [`HloError`] if the input or the compiled module fails
    /// verification.
    pub fn run(&self, module: &Module, machine: &Machine) -> Result<Compiled, HloError> {
        let mut timings = PhaseTimings::new();

        let t0 = std::time::Instant::now();
        module.verify()?;
        timings.record("verify_input", t0.elapsed().as_secs_f64());

        // The split pre-pass rebuilds the module (its builder hands back
        // the analysis); otherwise analyze the verified input in place.
        let split_module;
        let analysis;
        let module: &Module = if self.options.split_all_reduce {
            let (m, a) = timings.time("split_all_reduces", || split_all_reduces_with(module));
            split_module = m;
            analysis = a;
            &split_module
        } else {
            analysis = timings.time("analyze", || {
                let mut a = ModuleAnalysis::of(module);
                a.mark_verified(module);
                a
            });
            module
        };

        let patterns = timings.time("find_patterns", || find_patterns_with(module, &analysis));
        let cost_model = CostModel::with_strategy(machine, &self.options.strategy);
        let decisions = timings.time("cost_gate", || {
            if patterns.is_empty() {
                return Vec::new();
            }
            // The gate's per-candidate evaluations fan across cores with
            // input-order-deterministic results; the input module's cost
            // table reuses the already-verified analysis.
            let table = CostTable::with_analysis(module, &analysis, machine)
                .expect("verified input must have computable costs");
            cost_model.select_with(&table, module, &patterns, !self.options.disable_cost_gate)
        });

        // Fault-aware re-gate: with a (non-noop) spec and the gate on,
        // every selected pattern is re-judged with its terms stretched by
        // the degraded machine; regressions fall back to the original op.
        // The ablation mode (gate disabled) decomposes unconditionally,
        // faults or not, so it skips this.
        let mut fallbacks: Vec<FallbackRecord> = Vec::new();
        let decisions = match self.effective_faults() {
            Some(spec) if !self.options.disable_cost_gate && !decisions.is_empty() => {
                let adjust = FaultGateAdjust::new(machine, spec).map_err(|e| {
                    HloError::Verification(format!("fault spec does not fit machine: {e}"))
                })?;
                timings.time("fault_gate", || {
                    decisions
                        .into_iter()
                        .map(|d| {
                            let fd = adjust.adjust(module, &d);
                            if !fd.beneficial {
                                fallbacks.push(FallbackRecord {
                                    einsum: module.instr(d.pattern.einsum).name().to_string(),
                                    reason: format!(
                                        "fault-adjusted gate regressed \
                                         (net benefit {:.3e}s)",
                                        fd.net_benefit()
                                    ),
                                });
                            }
                            fd
                        })
                        .collect::<Vec<_>>()
                })
            }
            _ => decisions,
        };
        let gate_on = !self.options.disable_cost_gate;
        let mut selected: Vec<_> = Vec::new();
        for d in decisions.iter().filter(|d| !gate_on || d.beneficial) {
            let requested = self.options.decompose_for(&d.pattern.kind);
            // Honor the gate's uni-vs-bidi verdict where both rings are
            // feasible; for odd groups the gate could never price the
            // bidirectional variant, so pass the requested direction
            // through and let the decompose pass record why it fell
            // back (the rewrite is identical either way).
            let g = match module.instr(d.pattern.collective).op() {
                overlap_hlo::Op::AllGather { groups, .. }
                | overlap_hlo::Op::ReduceScatter { groups, .. } => groups.group_size(),
                _ => 1,
            };
            // Error budget: a circulated AllGather shard is encoded once
            // (re-encoding on the wire grid is exact); the ReduceScatter
            // ring re-encodes its traveling accumulator every hop.
            let encodes = match d.pattern.kind {
                crate::PatternKind::AllGatherEinsum { .. } => 1,
                crate::PatternKind::EinsumReduceScatter { .. } => g,
            };
            let wire = budget_wire(
                requested.wire,
                encodes,
                self.options.error_budget,
                module.instr(d.pattern.einsum).name(),
                &mut fallbacks,
            );
            let opts = DecomposeOptions {
                bidirectional: if g.is_multiple_of(2) {
                    d.bidirectional
                } else {
                    requested.bidirectional
                },
                wire,
                ..requested
            };
            selected.push((d.pattern, opts));
        }
        let selected = selected;

        // `decompose_each_with` value-numbers as it builds, so the result
        // is already in CSE normal form — no separate merge pass needed.
        let (mut decomposed, summaries, _decompose_analysis) =
            timings.time("decompose", || decompose_each_with(module, &selected));

        // Precision annotation for kept collectives: when the strategy
        // asks for a quantized wire, collectives that survived in their
        // original synchronous form (gate-rejected patterns, collectives
        // outside any pattern) carry it too — the "quantize without
        // decomposing" point of the strategy space. Lossless strategies
        // skip the walk entirely, leaving the module untouched.
        let ag_wire = self.options.strategy.all_gather.wire;
        let rs_wire = self.options.strategy.reduce_scatter.wire;
        if !ag_wire.is_lossless() || !rs_wire.is_lossless() {
            timings.time("annotate_wire", || {
                for id in decomposed.ids() {
                    // An AllGather shard is encoded once at its source; a
                    // reduction encodes every summed contribution.
                    let (wire, encodes) = match decomposed.instr(id).op() {
                        overlap_hlo::Op::AllGather { .. } => (ag_wire, 1),
                        overlap_hlo::Op::ReduceScatter { groups, .. }
                        | overlap_hlo::Op::AllReduce { groups, .. } => {
                            (rs_wire, groups.group_size())
                        }
                        _ => continue,
                    };
                    let wire = budget_wire(
                        wire,
                        encodes,
                        self.options.error_budget,
                        decomposed.instr(id).name(),
                        &mut fallbacks,
                    );
                    if !wire.is_lossless() {
                        decomposed
                            .set_wire(id, wire)
                            .expect("matched ops all carry wire annotations");
                    }
                }
            });
        }
        // asyncify rebuilds the module, so its builder re-derives the
        // analysis append-by-append.
        let (asynced, mut analysis) = timings.time("asyncify", || asyncify_with(&decomposed));
        let final_module = match self.options.fusion_options() {
            Some(fopts) => timings.time("fuse", || {
                let fused = fuse_with(&asynced, &analysis, &fopts);
                analysis.refresh_fusion(&fused);
                fused
            }),
            None => asynced,
        };

        let t0 = std::time::Instant::now();
        final_module.verify_incremental(&mut analysis)?;
        timings.record("verify_final", t0.elapsed().as_secs_f64());

        // One table serves the scheduler below and every later simulation
        // of the compiled module. The pipeline's own passes only fuse
        // fusible ops, so table construction cannot fail here.
        let cost_table = timings.time("cost_table", || {
            CostTable::with_analysis(&final_module, &analysis, machine)
                .expect("pipeline output must have computable costs")
        });
        let order = timings.time("schedule", || {
            // Cross-layer window: `L<k>.` stage tags (stacked multi-layer
            // modules only — untagged modules get `None` and schedule
            // exactly as before) bound how far either scheduler may
            // interleave stages.
            let window = || {
                ScheduleWindow::new(
                    &LayerTags::of(&final_module),
                    self.options.strategy.window_layers,
                )
            };
            match self.options.scheduler {
                SchedulerKind::BottomUp => {
                    let ctx =
                        ScheduleContext::new(&cost_table, &analysis, &final_module, machine)
                            .with_window(window());
                    schedule_bottom_up_ctx(&ctx, &final_module, machine)
                }
                SchedulerKind::TopDown => {
                    let ctx =
                        ScheduleContext::new(&cost_table, &analysis, &final_module, machine)
                            .with_window(window());
                    schedule_top_down_ctx(&ctx, &final_module, machine)
                }
                SchedulerKind::Original => final_module.arena_order(),
            }
        });
        let mut compiled = Compiled {
            module: final_module,
            order,
            summaries,
            decisions,
            fallbacks,
            cost_table,
            timings,
        };

        // Degraded-machine smoke run: the compiled schedule must actually
        // execute under the fault spec (links may be unroutable, the
        // watchdog may fire). If it cannot, gracefully abandon the
        // transformed program for the original module, which by
        // construction needs no decomposed permute routing.
        if let Some(spec) = self.effective_faults() {
            let t0 = std::time::Instant::now();
            let smoke = overlap_sim::simulate_order_faulted_with(
                &compiled.cost_table,
                &compiled.module,
                machine,
                &compiled.order,
                spec,
            );
            compiled.timings.record("fault_smoke", t0.elapsed().as_secs_f64());
            if let Err(e) = smoke {
                let t0 = std::time::Instant::now();
                compiled.fallbacks.push(FallbackRecord {
                    einsum: FallbackRecord::WHOLE_MODULE.to_string(),
                    reason: format!("faulted simulation failed: {e}"),
                });
                compiled.module = module.clone();
                compiled.order = compiled.module.arena_order();
                compiled.summaries = Vec::new();
                compiled.cost_table = CostTable::new(&compiled.module, machine)
                    .expect("verified input must have computable costs");
                compiled.timings.record("fault_fallback", t0.elapsed().as_secs_f64());
            }
        }
        Ok(compiled)
    }
}

#[cfg(test)]
mod tests {
    use overlap_hlo::{Builder, DType, DotDims, Op, ReplicaGroups, Shape};
    use overlap_mesh::DeviceMesh;
    use overlap_sim::{simulate, simulate_order};

    use super::*;

    fn f32s(dims: &[usize]) -> Shape {
        Shape::new(DType::F32, dims.to_vec())
    }

    fn layer(n: usize) -> Module {
        let mut b = Builder::new("layer", n);
        let x = b.parameter(f32s(&[16384, 2048]), "x");
        let w = b.parameter(f32s(&[2048, 16384 / n]), "w");
        let wg = b.all_gather(w, 1, ReplicaGroups::full(n), "wg");
        let y = b.einsum(x, wg, DotDims::matmul(), "y");
        b.build(vec![y])
    }

    #[test]
    fn pipeline_improves_simulated_time() {
        let n = 8;
        let m = layer(n);
        let machine = Machine::with_mesh(DeviceMesh::ring(n));
        let baseline = simulate(&m, &machine).unwrap();
        let compiled =
            OverlapPipeline::new(OverlapOptions::paper_default()).run(&m, &machine).unwrap();
        let overlapped =
            simulate_order(&compiled.module, &machine, &compiled.order).unwrap();
        assert!(
            overlapped.makespan() < baseline.makespan(),
            "overlap {:.3e} vs baseline {:.3e}",
            overlapped.makespan(),
            baseline.makespan()
        );
        assert!(overlapped.comm_fraction() < baseline.comm_fraction());
    }

    #[test]
    fn gate_keeps_original_when_unprofitable() {
        // A tiny einsum with a huge gather: gate must reject, leaving the
        // original AllGather in place.
        let n = 8;
        let mut b = Builder::new("m", n);
        let x = b.parameter(f32s(&[1, 8192]), "x");
        let w = b.parameter(f32s(&[8192, 8192 / n]), "w");
        let wg = b.all_gather(w, 1, ReplicaGroups::full(n), "wg");
        let y = b.einsum(x, wg, DotDims::matmul(), "y");
        let m = b.build(vec![y]);
        let machine = Machine::with_mesh(DeviceMesh::ring(n));
        let compiled = OverlapPipeline::new(OverlapOptions::with_strategy(
            StrategySpec::paper_default().with_ring(crate::RingDirection::Unidirectional),
        ))
        .run(&m, &machine)
        .unwrap();
        assert!(compiled.summaries.is_empty());
        assert_eq!(
            compiled.module.count_live(|i| matches!(i.op(), Op::AllGather { .. })),
            1
        );
    }

    #[test]
    fn scheduler_choices_all_valid() {
        let n = 4;
        let m = layer(n);
        let machine = Machine::with_mesh(DeviceMesh::ring(n));
        for sched in
            [SchedulerKind::BottomUp, SchedulerKind::TopDown, SchedulerKind::Original]
        {
            let compiled = OverlapPipeline::new(OverlapOptions {
                scheduler: sched,
                ..OverlapOptions::paper_default()
            })
            .run(&m, &machine)
            .unwrap();
            simulate_order(&compiled.module, &machine, &compiled.order).unwrap();
        }
    }

    #[test]
    fn schedulers_beat_original_order() {
        let n = 4;
        let m = layer(n);
        let machine = Machine::with_mesh(DeviceMesh::ring(n));
        let mut makespans = Vec::new();
        for sched in
            [SchedulerKind::BottomUp, SchedulerKind::TopDown, SchedulerKind::Original]
        {
            let compiled = OverlapPipeline::new(OverlapOptions {
                scheduler: sched,
                ..OverlapOptions::paper_default()
            })
            .run(&m, &machine)
            .unwrap();
            let r = simulate_order(&compiled.module, &machine, &compiled.order).unwrap();
            makespans.push(r.makespan());
        }
        assert!(makespans[0] <= makespans[2] + 1e-12, "bottom-up beats original order");
        assert!(makespans[1] <= makespans[2] + 1e-12, "top-down beats original order");
    }

    #[test]
    fn noop_fault_spec_is_bit_identical_to_fault_free() {
        let n = 8;
        let m = layer(n);
        let machine = Machine::with_mesh(DeviceMesh::ring(n));
        let plain =
            OverlapPipeline::new(OverlapOptions::paper_default()).run(&m, &machine).unwrap();
        let faulted = OverlapPipeline::new(OverlapOptions::paper_default())
            .with_faults(overlap_mesh::FaultSpec::seeded(42))
            .run(&m, &machine)
            .unwrap();
        assert_eq!(plain.order, faulted.order);
        assert_eq!(plain.decisions, faulted.decisions);
        assert_eq!(plain.summaries, faulted.summaries);
        assert!(faulted.fallbacks.is_empty());
        assert_eq!(
            plain.module.identity_fingerprint(),
            faulted.module.identity_fingerprint()
        );
    }

    #[test]
    fn heavy_jitter_falls_back_per_pattern() {
        let n = 8;
        let m = layer(n);
        let machine = Machine::with_mesh(DeviceMesh::ring(n));
        // 10 ms of per-hop jitter dwarfs any overlap win: the
        // fault-adjusted gate must keep the original collective.
        let spec = overlap_mesh::FaultSpec::seeded(3).with_jitter(10e-3);
        let compiled = OverlapPipeline::new(OverlapOptions::paper_default())
            .with_faults(spec)
            .run(&m, &machine)
            .unwrap();
        assert!(compiled.summaries.is_empty(), "no pattern should decompose");
        assert_eq!(compiled.fallbacks.len(), 1);
        assert_ne!(compiled.fallbacks[0].einsum, FallbackRecord::WHOLE_MODULE);
        assert!(compiled.fallbacks[0].reason.contains("gate regressed"));
        assert_eq!(
            compiled.module.count_live(|i| matches!(i.op(), Op::AllGather { .. })),
            1,
            "the original collective survives the fallback"
        );
        // The fallback also shows up in the compile report.
        let report = crate::CompileReport::new(&m, &compiled, &machine);
        assert_eq!(report.fallback_lines.len(), 1);
        assert!(report.to_string().contains("fallback"));
    }

    #[test]
    fn failing_faulted_simulation_falls_back_to_whole_module() {
        let n = 8;
        let m = layer(n);
        let machine = Machine::with_mesh(DeviceMesh::ring(n));
        // Stalls that always fire with a tiny backoff: the gate's
        // first-order expectation is negligible so patterns decompose,
        // but every DMA transfer exhausts its retry budget and the smoke
        // simulation dies with LinkDown — whole-module fallback.
        let spec = overlap_mesh::FaultSpec::seeded(5).with_dma_stalls(1.0, 1e-9, 2);
        let compiled = OverlapPipeline::new(OverlapOptions::paper_default())
            .with_faults(spec.clone())
            .run(&m, &machine)
            .unwrap();
        let last = compiled.fallbacks.last().expect("a fallback is recorded");
        assert_eq!(last.einsum, FallbackRecord::WHOLE_MODULE);
        assert!(last.reason.contains("link down"), "reason: {}", last.reason);
        assert!(compiled.summaries.is_empty());
        assert_eq!(compiled.order, m.arena_order());
        // The fallback program simulates fine on the pristine machine and
        // (being permute-free) even under the same stall-heavy spec.
        simulate_order(&compiled.module, &machine, &compiled.order).unwrap();
        overlap_sim::simulate_order_faulted(&compiled.module, &machine, &compiled.order, &spec)
            .unwrap();
        assert!(compiled.timings.seconds_of("fault_smoke") > 0.0);
    }

    #[test]
    fn quantized_strategy_annotates_the_compile() {
        // A quantized strategy with no budget: the decomposed rings
        // circulate quantized shards (their permutes carry the wire) and
        // any kept collective would be annotated too.
        let n = 8;
        let m = layer(n);
        let machine = Machine::with_mesh(DeviceMesh::ring(n));
        let wire = WireFormat::int8();
        let compiled = OverlapPipeline::new(OverlapOptions::with_strategy(
            StrategySpec::paper_default().with_wire(wire),
        ))
        .run(&m, &machine)
        .unwrap();
        assert_eq!(compiled.summaries.len(), 1, "the layer still decomposes");
        let quantized_permutes = compiled.module.count_live(|i| {
            matches!(
                i.op(),
                Op::CollectivePermute { wire: w, .. }
                    | Op::CollectivePermuteStart { wire: w, .. } if *w == wire
            )
        });
        assert!(quantized_permutes > 0, "ring permutes must carry the wire");
        assert!(compiled.fallbacks.is_empty());
    }

    #[test]
    fn error_budget_forces_lossless_with_recorded_reason() {
        // A budget below one int8 quantization event: every quantized
        // collective must fall back to lossless, each with a reason, and
        // the resulting program must be bit-identical to a lossless
        // compile of the same strategy.
        let n = 8;
        let m = layer(n);
        let machine = Machine::with_mesh(DeviceMesh::ring(n));
        let budgeted = OverlapPipeline::new(OverlapOptions {
            error_budget: Some(1e-6),
            ..OverlapOptions::with_strategy(
                StrategySpec::paper_default().with_wire(WireFormat::int8()),
            )
        })
        .run(&m, &machine)
        .unwrap();
        assert!(!budgeted.fallbacks.is_empty(), "the budget must record its fallbacks");
        for f in &budgeted.fallbacks {
            assert!(
                f.reason.contains("error budget") && f.reason.contains("forced lossless"),
                "reason: {}",
                f.reason
            );
        }
        let lossless =
            OverlapPipeline::new(OverlapOptions::paper_default()).run(&m, &machine).unwrap();
        assert_eq!(budgeted.order, lossless.order);
        assert_eq!(
            budgeted.module.identity_fingerprint(),
            lossless.module.identity_fingerprint(),
            "an exhausted budget must compile to the lossless program"
        );

        // A generous budget keeps the quantized wire and records nothing.
        let roomy = OverlapPipeline::new(OverlapOptions {
            error_budget: Some(0.5),
            ..OverlapOptions::with_strategy(
                StrategySpec::paper_default().with_wire(WireFormat::int8()),
            )
        })
        .run(&m, &machine)
        .unwrap();
        assert!(roomy.fallbacks.is_empty());
        assert_ne!(
            roomy.module.identity_fingerprint(),
            lossless.module.identity_fingerprint()
        );
    }

    #[test]
    fn straggler_slows_but_keeps_decomposition() {
        // A mild straggler stretches compute and communication alike;
        // decomposition remains beneficial and no fallback is recorded.
        let n = 8;
        let m = layer(n);
        let machine = Machine::with_mesh(DeviceMesh::ring(n));
        let spec = overlap_mesh::FaultSpec::seeded(11).with_straggler(2, 1.3);
        let compiled = OverlapPipeline::new(OverlapOptions::paper_default())
            .with_faults(spec)
            .run(&m, &machine)
            .unwrap();
        assert_eq!(compiled.summaries.len(), 1);
        assert!(compiled.fallbacks.is_empty());
        assert!(compiled.timings.seconds_of("fault_gate") >= 0.0);
    }
}
