//! The end-to-end compilation pipeline.

use overlap_hlo::{eliminate_common_subexpressions, HloError, InstrId, Module};
use overlap_mesh::Machine;
use overlap_sim::CostTable;

use crate::asyncify::asyncify;
use crate::costgate::{CostModel, GateDecision};
use crate::decompose::{decompose_each, DecomposeOptions, DecomposeSummary};
use crate::fusion::{fuse, FusionOptions};
use crate::pattern::find_patterns;
use crate::reassociate::split_all_reduces;
use crate::schedule::{schedule_bottom_up_with, schedule_top_down};

/// Which §5.2 scheduler orders the final instruction sequence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedulerKind {
    /// The bottom-up scheduler of Algorithm 2 (the paper's default: ~5%
    /// faster and more general, Fig. 16).
    #[default]
    BottomUp,
    /// The simpler top-down early-start/late-done scheduler.
    TopDown,
    /// Keep the builder (program) order — no latency hiding.
    Original,
}

/// Options for the full pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct OverlapOptions {
    /// Decomposition options (§5.1/§5.4): unrolling, bidirectional
    /// transfer, pad-max concat rewrite.
    pub decompose: DecomposeOptions,
    /// Fusion options (§5.4.3); `None` disables the fusion pass.
    pub fusion: Option<FusionOptions>,
    /// Scheduler choice (§5.2).
    pub scheduler: SchedulerKind,
    /// Whether the §5.5 cost gate filters patterns (`false` decomposes
    /// every candidate, for ablations).
    pub disable_cost_gate: bool,
    /// Split `AllReduce`s into `ReduceScatter + AllGather` first (§2.1),
    /// exposing Megatron-style patterns to the decomposition. Off in
    /// [`OverlapOptions::paper_default`] — the paper's own strategy avoids
    /// AllReduces by construction.
    pub split_all_reduce: bool,
}

impl OverlapOptions {
    /// The paper's production configuration: decompose with unrolling and
    /// bidirectional transfer, overlap-aware fusion, bottom-up scheduling,
    /// cost gate on.
    #[must_use]
    pub fn paper_default() -> Self {
        OverlapOptions {
            decompose: DecomposeOptions::default(),
            fusion: Some(FusionOptions::default()),
            scheduler: SchedulerKind::BottomUp,
            disable_cost_gate: false,
            split_all_reduce: false,
        }
    }
}

/// Result of running the pipeline.
#[derive(Debug, Clone)]
pub struct Compiled {
    /// The transformed module (decomposed, asyncified, fused).
    pub module: Module,
    /// The scheduled instruction order to execute/simulate.
    pub order: Vec<InstrId>,
    /// Per-pattern decomposition summaries.
    pub summaries: Vec<DecomposeSummary>,
    /// The cost-gate decisions (including rejected patterns).
    pub decisions: Vec<GateDecision>,
    /// Precomputed costs for `module` on the compiling machine; pass to
    /// [`overlap_sim::simulate_order_with`] /
    /// [`overlap_sim::simulate_order_repeated_with`] to simulate the
    /// compiled program without re-deriving costs.
    pub cost_table: CostTable,
}

/// The compiler pipeline implementing the paper end to end:
/// pattern finding → §5.5 gate → §5.1/§5.4 decomposition → §5.2 async
/// conversion → §5.4.3 fusion → §5.2 scheduling.
///
/// # Example
///
/// ```
/// use overlap_core::{OverlapOptions, OverlapPipeline};
/// use overlap_hlo::{Builder, DType, DotDims, ReplicaGroups, Shape};
/// use overlap_mesh::Machine;
///
/// let n = 4;
/// let mut b = Builder::new("layer", n);
/// let x = b.parameter(Shape::new(DType::F32, vec![8192, 1024]), "x");
/// let w = b.parameter(Shape::new(DType::F32, vec![1024, 1024]), "w");
/// let wg = b.all_gather(w, 1, ReplicaGroups::full(n), "wg");
/// let y = b.einsum(x, wg, DotDims::matmul(), "y");
/// let m = b.build(vec![y]);
///
/// let machine = Machine::tpu_v4_like(n);
/// let compiled = OverlapPipeline::new(OverlapOptions::paper_default())
///     .run(&m, &machine)
///     .unwrap();
/// assert_eq!(compiled.summaries.len(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct OverlapPipeline {
    options: OverlapOptions,
}

impl OverlapPipeline {
    /// Creates a pipeline with the given options.
    #[must_use]
    pub fn new(options: OverlapOptions) -> Self {
        OverlapPipeline { options }
    }

    /// The configured options.
    #[must_use]
    pub fn options(&self) -> &OverlapOptions {
        &self.options
    }

    /// Runs all passes on `module` for `machine`.
    ///
    /// # Errors
    ///
    /// Returns [`HloError`] if the input module fails verification.
    pub fn run(&self, module: &Module, machine: &Machine) -> Result<Compiled, HloError> {
        module.verify()?;
        let module = if self.options.split_all_reduce {
            &split_all_reduces(module)
        } else {
            module
        };
        let patterns = find_patterns(module);
        let cost_model = CostModel::new(machine, self.options.decompose);
        let decisions =
            cost_model.select(module, &patterns, !self.options.disable_cost_gate);
        let selected: Vec<_> = decisions
            .iter()
            .map(|d| {
                let opts = DecomposeOptions {
                    bidirectional: d.bidirectional,
                    ..self.options.decompose
                };
                (d.pattern, opts)
            })
            .collect();

        let (decomposed, summaries) = decompose_each(module, &selected);
        // The decomposition emits one rank table and a handful of scalar
        // index constants per pattern; merge the duplicates.
        let decomposed = eliminate_common_subexpressions(&decomposed);
        let asynced = asyncify(&decomposed);
        let final_module = match &self.options.fusion {
            Some(fopts) => fuse(&asynced, fopts),
            None => asynced,
        };
        final_module.verify()?;
        // One table serves the scheduler below and every later simulation
        // of the compiled module. The pipeline's own passes only fuse
        // fusible ops, so table construction cannot fail here.
        let cost_table = CostTable::new(&final_module, machine)
            .expect("pipeline output must have computable costs");
        let order = match self.options.scheduler {
            SchedulerKind::BottomUp => {
                schedule_bottom_up_with(&cost_table, &final_module, machine)
            }
            SchedulerKind::TopDown => schedule_top_down(&final_module, machine),
            SchedulerKind::Original => final_module.ids(),
        };
        Ok(Compiled { module: final_module, order, summaries, decisions, cost_table })
    }
}

#[cfg(test)]
mod tests {
    use overlap_hlo::{Builder, DType, DotDims, Op, ReplicaGroups, Shape};
    use overlap_mesh::DeviceMesh;
    use overlap_sim::{simulate, simulate_order};

    use super::*;

    fn f32s(dims: &[usize]) -> Shape {
        Shape::new(DType::F32, dims.to_vec())
    }

    fn layer(n: usize) -> Module {
        let mut b = Builder::new("layer", n);
        let x = b.parameter(f32s(&[16384, 2048]), "x");
        let w = b.parameter(f32s(&[2048, 16384 / n]), "w");
        let wg = b.all_gather(w, 1, ReplicaGroups::full(n), "wg");
        let y = b.einsum(x, wg, DotDims::matmul(), "y");
        b.build(vec![y])
    }

    #[test]
    fn pipeline_improves_simulated_time() {
        let n = 8;
        let m = layer(n);
        let machine = Machine::with_mesh(DeviceMesh::ring(n));
        let baseline = simulate(&m, &machine).unwrap();
        let compiled =
            OverlapPipeline::new(OverlapOptions::paper_default()).run(&m, &machine).unwrap();
        let overlapped =
            simulate_order(&compiled.module, &machine, &compiled.order).unwrap();
        assert!(
            overlapped.makespan() < baseline.makespan(),
            "overlap {:.3e} vs baseline {:.3e}",
            overlapped.makespan(),
            baseline.makespan()
        );
        assert!(overlapped.comm_fraction() < baseline.comm_fraction());
    }

    #[test]
    fn gate_keeps_original_when_unprofitable() {
        // A tiny einsum with a huge gather: gate must reject, leaving the
        // original AllGather in place.
        let n = 8;
        let mut b = Builder::new("m", n);
        let x = b.parameter(f32s(&[1, 8192]), "x");
        let w = b.parameter(f32s(&[8192, 8192 / n]), "w");
        let wg = b.all_gather(w, 1, ReplicaGroups::full(n), "wg");
        let y = b.einsum(x, wg, DotDims::matmul(), "y");
        let m = b.build(vec![y]);
        let machine = Machine::with_mesh(DeviceMesh::ring(n));
        let compiled = OverlapPipeline::new(OverlapOptions {
            decompose: crate::DecomposeOptions { bidirectional: false, ..Default::default() },
            ..OverlapOptions::paper_default()
        })
        .run(&m, &machine)
        .unwrap();
        assert!(compiled.summaries.is_empty());
        assert_eq!(
            compiled.module.count_live(|i| matches!(i.op(), Op::AllGather { .. })),
            1
        );
    }

    #[test]
    fn scheduler_choices_all_valid() {
        let n = 4;
        let m = layer(n);
        let machine = Machine::with_mesh(DeviceMesh::ring(n));
        for sched in
            [SchedulerKind::BottomUp, SchedulerKind::TopDown, SchedulerKind::Original]
        {
            let compiled = OverlapPipeline::new(OverlapOptions {
                scheduler: sched,
                ..OverlapOptions::paper_default()
            })
            .run(&m, &machine)
            .unwrap();
            simulate_order(&compiled.module, &machine, &compiled.order).unwrap();
        }
    }

    #[test]
    fn schedulers_beat_original_order() {
        let n = 4;
        let m = layer(n);
        let machine = Machine::with_mesh(DeviceMesh::ring(n));
        let mut makespans = Vec::new();
        for sched in
            [SchedulerKind::BottomUp, SchedulerKind::TopDown, SchedulerKind::Original]
        {
            let compiled = OverlapPipeline::new(OverlapOptions {
                scheduler: sched,
                ..OverlapOptions::paper_default()
            })
            .run(&m, &machine)
            .unwrap();
            let r = simulate_order(&compiled.module, &machine, &compiled.order).unwrap();
            makespans.push(r.makespan());
        }
        assert!(makespans[0] <= makespans[2] + 1e-12, "bottom-up beats original order");
        assert!(makespans[1] <= makespans[2] + 1e-12, "top-down beats original order");
    }
}
