//! Operation fusion with the overlap-aware heuristic (§5.4.3, Fig. 11).
//!
//! Fusion is modeled as grouping (see
//! [`FusionGroup`](overlap_hlo::FusionGroup)): a group executes as one
//! kernel, so fused elementwise work is free but the group inherits the
//! union of its members' dependences. That is exactly the Fig. 11 hazard:
//! fusing a result-update `Add` with the *wrong* einsum makes an
//! otherwise-independent einsum wait for a `CollectivePermuteDone`.

use std::collections::HashMap;

use overlap_hlo::{FusionGroup, InstrId, Module, ModuleAnalysis, Op};

/// Options for the fusion pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FusionOptions {
    /// Use the §5.4.3 overlap-aware heuristic: when a combining op could
    /// fuse with more than one producer einsum, prefer the einsum that
    /// (transitively through elementwise ops) consumes an asynchronous
    /// `CollectivePermuteDone`, keeping the independent einsum free to
    /// overlap with the transfer. When `false`, the default
    /// lowest-instruction-id choice reproduces Fig. 11(a)'s bad fusion.
    pub overlap_aware: bool,
}

impl Default for FusionOptions {
    fn default() -> Self {
        FusionOptions { overlap_aware: true }
    }
}

/// Whether `id` (an einsum) transitively consumes a
/// `CollectivePermuteDone` through elementwise/data-movement producers.
fn depends_on_done(module: &Module, id: InstrId) -> bool {
    let mut stack = vec![id];
    let mut seen = vec![false; module.len()];
    while let Some(cur) = stack.pop() {
        if seen[cur.index()] {
            continue;
        }
        seen[cur.index()] = true;
        for &op in module.instr(cur).operands() {
            match module.instr(op).op() {
                Op::CollectivePermuteDone => return true,
                // Look through cheap ops only — a dependence through
                // another einsum is a real serialization anyway.
                o if o.is_elementwise()
                    || matches!(
                        o,
                        Op::DynamicSlice { .. }
                            | Op::Slice { .. }
                            | Op::Concatenate { .. }
                            | Op::Pad { .. }
                            | Op::Reshape
                    ) =>
                {
                    stack.push(op);
                }
                _ => {}
            }
        }
    }
    false
}

/// Runs the fusion pass: each einsum is grouped with its (single-user)
/// cheap producers — `DynamicSlice`/`Concatenate`/`Pad`/`Max` operand
/// pre-processing (§5.4.3) — and each combining op (`Add` or
/// `DynamicUpdateSlice`) is fused with one producer einsum chosen by the
/// heuristic in [`FusionOptions`].
///
/// Returns the same module with fusion groups attached.
///
/// # Panics
///
/// Panics if the module fails verification.
#[must_use]
pub fn fuse(module: &Module, options: &FusionOptions) -> Module {
    module.verify().expect("fusion requires a verified module");
    fuse_impl(module, &module.users(), options)
}

/// [`fuse`] with the users table taken from a shared [`ModuleAnalysis`]
/// and verification skipped (the caller vouches via the analysis
/// watermark). The caller should
/// [`refresh_fusion`](ModuleAnalysis::refresh_fusion) its analysis on the
/// returned module.
///
/// # Panics
///
/// Panics if `analysis` does not cover and verify `module`.
#[must_use]
pub fn fuse_with(module: &Module, analysis: &ModuleAnalysis, options: &FusionOptions) -> Module {
    assert_eq!(analysis.len(), module.len(), "analysis does not cover module");
    assert_eq!(
        analysis.verified_len(),
        module.len(),
        "fusion requires a verified module"
    );
    fuse_impl(module, analysis.users(), options)
}

fn fuse_impl(module: &Module, users: &[Vec<InstrId>], options: &FusionOptions) -> Module {
    let single_user = |id: InstrId| users[id.index()].len() == 1;
    let mut group_of: HashMap<InstrId, usize> = HashMap::new();
    let mut groups: Vec<FusionGroup> = Vec::new();

    // Pass 1: give every einsum a group seeded with its cheap, single-use
    // producers (operand pre-processing).
    for (id, ins) in module.iter() {
        if !matches!(ins.op(), Op::Einsum(_)) {
            continue;
        }
        let mut members = Vec::new();
        for &op in ins.operands() {
            let o = module.instr(op).op();
            let cheap = matches!(
                o,
                Op::DynamicSlice { .. } | Op::Concatenate { .. } | Op::Pad { .. } | Op::Unary(_)
            ) || matches!(
                o,
                Op::Binary(overlap_hlo::BinaryKind::Max)
                    | Op::Binary(overlap_hlo::BinaryKind::Mul)
            );
            if cheap && single_user(op) && !group_of.contains_key(&op) {
                // Also absorb the producer's own cheap single-use inputs
                // (the padded halves of a Max(PadLow, PadHigh) join).
                for &op2 in module.instr(op).operands() {
                    let o2 = module.instr(op2).op();
                    if matches!(o2, Op::Pad { .. } | Op::DynamicSlice { .. })
                        && single_user(op2)
                        && !group_of.contains_key(&op2)
                    {
                        members.push(op2);
                    }
                }
                members.push(op);
            }
        }
        members.push(id);
        let gi = groups.len();
        for &m in &members {
            group_of.insert(m, gi);
        }
        groups.push(FusionGroup { members, root: id });
    }

    // Pass 2: output fusion. XLA fuses the decomposition's combining step
    // into the partial einsum's kernel (the einsum writes directly into
    // the result buffer); without that the decomposed form would pay a
    // full extra memory pass per iteration. Two shapes occur:
    //
    // (a) einsum → (Add | DynamicUpdateSlice): absorb the combining op;
    //     when it could fuse with two producer einsums (Fig. 11), the
    //     heuristic picks one;
    // (b) einsum → {Slice lo, Slice hi} → two combining ops chained by
    //     their result operand (the bidirectional split): absorb all four.
    let combining = |id: InstrId| {
        matches!(module.instr(id).op(), Op::Binary(overlap_hlo::BinaryKind::Add))
            || matches!(module.instr(id).op(), Op::DynamicUpdateSlice)
    };
    for (id, ins) in module.iter() {
        if !matches!(ins.op(), Op::Einsum(_)) {
            continue;
        }
        let gi = group_of[&id];
        if groups[gi].root != id {
            continue;
        }
        let eusers = &users[id.index()];
        if eusers.len() == 1 && combining(eusers[0]) && !group_of.contains_key(&eusers[0]) {
            // Shape (a): possibly competing with another producer einsum.
            let c = eusers[0];
            let candidates: Vec<InstrId> = module
                .instr(c)
                .operands()
                .iter()
                .copied()
                .filter(|&op| {
                    matches!(module.instr(op).op(), Op::Einsum(_))
                        && single_user(op)
                        && group_of.get(&op).is_some_and(|&g| groups[g].root == op)
                })
                .collect();
            let chosen = if options.overlap_aware {
                candidates
                    .iter()
                    .copied()
                    .find(|&cand| depends_on_done(module, cand))
                    .unwrap_or(candidates[0])
            } else {
                // Default heuristic: first (lowest-id) producer — for the
                // Fig. 11 pattern this is the independent einsum,
                // recreating the bad fusion.
                *candidates.iter().min().expect("einsum id is a candidate")
            };
            if chosen == id {
                groups[gi].members.push(c);
                groups[gi].root = c;
                group_of.insert(c, gi);
            }
        } else if eusers.len() == 2 {
            // Shape (b): the bidirectional split-and-update.
            let both_slices = eusers.iter().all(|&u| {
                matches!(module.instr(u).op(), Op::Slice { .. })
                    && single_user(u)
                    && !group_of.contains_key(&u)
            });
            if !both_slices {
                continue;
            }
            let c1 = users[eusers[0].index()][0];
            let c2 = users[eusers[1].index()][0];
            if c1 == c2 || !combining(c1) || !combining(c2) {
                continue;
            }
            if group_of.contains_key(&c1) || group_of.contains_key(&c2) {
                continue;
            }
            // The later combining op must chain on the earlier one.
            let (first, second) = if c1 < c2 { (c1, c2) } else { (c2, c1) };
            let chained = module.instr(second).operands().contains(&first)
                && single_user(first);
            if !chained {
                continue;
            }
            for &m in &[eusers[0], eusers[1], first, second] {
                groups[gi].members.push(m);
                group_of.insert(m, gi);
            }
            groups[gi].root = second;
        }
    }

    // Drop singleton groups: a one-member "fusion" is the instruction
    // itself, but executing it as a group would pay a second kernel
    // launch for nothing.
    let groups: Vec<FusionGroup> = groups.into_iter().filter(|g| g.members.len() > 1).collect();

    module
        .clone()
        .with_fusion_groups(groups)
        .expect("constructed groups are well-formed")
}

#[cfg(test)]
mod tests {
    use overlap_hlo::{Builder, DType, DotDims, Shape};

    use super::*;

    fn f32s(dims: &[usize]) -> Shape {
        Shape::new(DType::F32, dims.to_vec())
    }

    /// The Fig. 11 shape: Add(einsum_0, einsum_1) where einsum_1 consumes
    /// a CollectivePermuteDone.
    fn fig11_module() -> (Module, InstrId, InstrId, InstrId) {
        let mut b = Builder::new("m", 2);
        let a = b.parameter(f32s(&[64, 64]), "a");
        let w0 = b.parameter(f32s(&[64, 64]), "w0");
        let w1 = b.parameter(f32s(&[64, 64]), "w1");
        let e0 = b.einsum(a, w0, DotDims::matmul(), "einsum0");
        let s = b.collective_permute_start(a, vec![(0, 1), (1, 0)], "s");
        let d = b.collective_permute_done(s, "d");
        let e1 = b.einsum(d, w1, DotDims::matmul(), "einsum1");
        let add = b.add(e0, e1, "add");
        (b.build(vec![add]), e0, e1, add)
    }

    #[test]
    fn overlap_aware_fuses_add_with_dependent_einsum() {
        let (m, _e0, e1, add) = fig11_module();
        let fused = fuse(&m, &FusionOptions { overlap_aware: true });
        fused.verify().unwrap();
        let fo = fused.fusion_of();
        assert!(fo[add.index()].is_some());
        assert_eq!(
            fo[add.index()],
            fo[e1.index()],
            "add must fuse with the done-dependent einsum"
        );
    }

    #[test]
    fn default_heuristic_reproduces_bad_fusion() {
        let (m, e0, e1, add) = fig11_module();
        let fused = fuse(&m, &FusionOptions { overlap_aware: false });
        fused.verify().unwrap();
        let fo = fused.fusion_of();
        assert!(fo[add.index()].is_some());
        assert_eq!(fo[add.index()], fo[e0.index()], "default fuses with the first producer");
        // e1's seed group stayed a singleton and was dropped.
        assert!(fo[e1.index()].is_none() || fo[e1.index()] != fo[add.index()]);
    }

    #[test]
    fn slice_producers_join_einsum_group() {
        let mut b = Builder::new("m", 1);
        let x = b.parameter(f32s(&[8, 16]), "x");
        let w = b.parameter(f32s(&[16, 8]), "w");
        let zero = b.constant(Shape::scalar(DType::U32), 0.0, "z");
        let ds = b.dynamic_slice(x, &[zero, zero], vec![4, 16], "ds");
        let e = b.einsum(ds, w, DotDims::matmul(), "e");
        let m = b.build(vec![e]);
        let fused = fuse(&m, &FusionOptions::default());
        let fo = fused.fusion_of();
        assert!(fo[ds.index()].is_some());
        assert_eq!(fo[ds.index()], fo[e.index()]);
    }

    #[test]
    fn multi_user_values_stay_unfused() {
        let mut b = Builder::new("m", 1);
        let x = b.parameter(f32s(&[8, 8]), "x");
        let w = b.parameter(f32s(&[8, 8]), "w");
        let e = b.einsum(x, w, DotDims::matmul(), "e");
        let add = b.add(e, x, "add");
        let c = b.copy(e, "c"); // second user of the einsum
        let m = b.build(vec![add, c]);
        let fused = fuse(&m, &FusionOptions::default());
        let fo = fused.fusion_of();
        // The add cannot join the einsum's group, which therefore stays a
        // singleton and is dropped entirely.
        assert!(fo[add.index()].is_none());
        assert!(fo[e.index()].is_none());
        fused.verify().unwrap();
    }
}
