//! AllReduce reassociation: `AllReduce = ReduceScatter + AllGather` (§2.1).
//!
//! Megatron-style partitioning (§2.2) leaves `Einsum → AllReduce` pairs,
//! which the decomposition cannot touch directly. Splitting each
//! `AllReduce` into the equivalent `ReduceScatter` followed by an
//! `AllGather` exposes an `Einsum → ReduceScatter` pattern (decomposable)
//! and an `AllGather` that may itself feed the next einsum (also
//! decomposable). This is an *extension* beyond the paper's evaluated
//! configuration — its own strategy avoids AllReduces by construction —
//! but uses only the identity the paper states in §2.1.

use overlap_hlo::{Builder, InstrId, Module, ModuleAnalysis, Op};

/// Tag placed on instructions emitted by the split.
pub const REASSOC_TAG: &str = "reassoc.ar_split";

/// Splits every `AllReduce` whose operand has a dimension divisible by
/// its group size into `ReduceScatter` + `AllGather` along that dimension
/// (the first divisible dimension is used). Indivisible AllReduces are
/// kept unchanged.
///
/// The transformation is semantically the identity (checked by the
/// cross-crate equivalence tests).
///
/// # Panics
///
/// Panics if the module is malformed (operands after users).
#[must_use]
pub fn split_all_reduces(module: &Module) -> Module {
    split_all_reduces_with(module).0
}

/// [`split_all_reduces`] also returning the rewritten module's
/// [`ModuleAnalysis`], maintained append-by-append by the builder.
///
/// # Panics
///
/// Panics if the module is malformed (operands after users).
#[must_use]
pub fn split_all_reduces_with(module: &Module) -> (Module, ModuleAnalysis) {
    let mut b = Builder::new(module.name().to_string(), module.num_partitions());
    let mut map: Vec<Option<InstrId>> = vec![None; module.len()];
    for (id, ins) in module.iter() {
        let operands: Vec<InstrId> = ins
            .operands()
            .iter()
            .map(|o| map[o.index()].expect("operands precede users"))
            .collect();
        let new_id = if let Op::AllReduce { groups, wire } = ins.op() {
            let shape = module.shape_of(ins.operands()[0]);
            let g = groups.group_size();
            match (0..shape.rank()).find(|&d| shape.dim(d).is_multiple_of(g) && shape.dim(d) > 0) {
                Some(dim) if g > 1 => {
                    b.set_tag(Some(REASSOC_TAG));
                    // The halves inherit the all-reduce's wire encoding.
                    let rs = b.reduce_scatter_wire(
                        operands[0],
                        dim,
                        groups.clone(),
                        *wire,
                        &format!("{}.rs", ins.name()),
                    );
                    let ag = b.all_gather_wire(
                        rs,
                        dim,
                        groups.clone(),
                        *wire,
                        &format!("{}.ag", ins.name()),
                    );
                    b.set_tag(None);
                    ag
                }
                _ => b.copy_of(module, id, operands),
            }
        } else {
            b.copy_of(module, id, operands)
        };
        map[id.index()] = Some(new_id);
    }
    let outputs = module
        .outputs()
        .iter()
        .map(|o| map[o.index()].expect("outputs mapped"))
        .collect();
    b.build_with_analysis(outputs)
}

#[cfg(test)]
mod tests {
    use overlap_hlo::{DType, DotDims, ReplicaGroups, Shape};

    use super::*;
    use crate::find_patterns;

    fn f32s(dims: &[usize]) -> Shape {
        Shape::new(DType::F32, dims.to_vec())
    }

    /// Megatron-style layer: partial matmul then AllReduce.
    fn megatron(n: usize) -> Module {
        let mut b = Builder::new("megatron", n);
        let x = b.parameter(f32s(&[8, 4]), "x"); // [B, K/n] local
        let w = b.parameter(f32s(&[4, 4 * n]), "w"); // [K/n, H]
        let e = b.einsum(x, w, DotDims::matmul(), "e");
        let ar = b.all_reduce(e, ReplicaGroups::full(n), "ar");
        b.build(vec![ar])
    }

    #[test]
    fn split_exposes_decomposable_patterns() {
        let m = megatron(4);
        assert!(find_patterns(&m).is_empty(), "AllReduce alone is not decomposable");
        let split = split_all_reduces(&m);
        split.verify().unwrap();
        assert_eq!(split.count_live(|i| matches!(i.op(), Op::AllReduce { .. })), 0);
        assert_eq!(split.count_live(|i| matches!(i.op(), Op::ReduceScatter { .. })), 1);
        assert_eq!(split.count_live(|i| matches!(i.op(), Op::AllGather { .. })), 1);
        // The einsum -> reduce-scatter pattern is now visible.
        let patterns = find_patterns(&split);
        assert_eq!(patterns.len(), 1);
    }

    #[test]
    fn indivisible_all_reduce_is_kept() {
        let n = 4;
        let mut b = Builder::new("m", n);
        let x = b.parameter(f32s(&[3, 5]), "x"); // nothing divisible by 4
        let ar = b.all_reduce(x, ReplicaGroups::full(n), "ar");
        let m = b.build(vec![ar]);
        let split = split_all_reduces(&m);
        assert_eq!(split.count_live(|i| matches!(i.op(), Op::AllReduce { .. })), 1);
    }

    #[test]
    fn trivial_group_is_kept() {
        let mut b = Builder::new("m", 1);
        let x = b.parameter(f32s(&[4]), "x");
        let ar = b.all_reduce(x, ReplicaGroups::full(1), "ar");
        let m = b.build(vec![ar]);
        let split = split_all_reduces(&m);
        assert_eq!(split.count_live(|i| matches!(i.op(), Op::AllReduce { .. })), 1);
    }
}
