//! The looped collective-einsum graph rewrite (§5.1, Algorithm 1, plus the
//! §5.4 optimizations).
//!
//! Each selected `AllGather → Einsum` or `Einsum → ReduceScatter` pair is
//! replaced with the fully unrolled iteration sequence of the paper's
//! generated loop: per iteration, one partial einsum over the data shard
//! currently held, a `DynamicUpdateSlice`/`Add` combining step, and a
//! single-hop `CollectivePermute` circulating shards (AllGather case) or
//! accumulators (ReduceScatter case) around the partition ring.
//!
//! Emitting the unrolled form (instead of a rolled `While` loop) is
//! behaviour-preserving — XLA itself schedules straight-line per-iteration
//! bodies — and lets the schedulers and the simulator work on one flat
//! instruction sequence. The *loop unrolling* optimization of §5.4.1 is
//! modeled as what it actually changes in the dataflow: without it, every
//! circulated value needs an explicit `Copy` (the loop-carried aliasing
//! copy XLA inserts) and the ReduceScatter case has a single accumulation
//! chain; with it, the copies disappear and the accumulation splits into
//! two interleaved chains with a one-hop alignment epilogue (Fig. 8). The
//! *bidirectional transfer* of §5.4.2 circulates two half-sets of shards
//! in opposite ring directions with a prologue (AllGather) or epilogue
//! (ReduceScatter) shift, doubling usable link bandwidth.

use overlap_hlo::{
    Builder, DType, InstrId, Module, ModuleAnalysis, Op, PadDim, ReplicaGroups, Shape,
    WireFormat,
};
use overlap_mesh::shift_pairs;

use crate::pattern::{AgCase, Pattern, PatternKind};

/// Options controlling the decomposition (the §5.4 optimizations).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecomposeOptions {
    /// Loop unrolling (§5.4.1): eliminates loop-carried copies and splits
    /// the ReduceScatter accumulation into two interleaved chains.
    /// Requires an even partition count; odd groups fall back to the
    /// non-unrolled form.
    pub unroll: bool,
    /// Bidirectional transfer (§5.4.2): circulate half the shards in each
    /// ring direction. Requires an even partition count; odd groups fall
    /// back to unidirectional.
    pub bidirectional: bool,
    /// Rewrite the bidirectional operand concatenation as
    /// `Max(PadLow, PadHigh)` (§5.4.3's fusion-friendly form).
    pub pad_max_concat: bool,
    /// Number of consecutive circulated shards joined into one wide
    /// partial einsum per loop super-step (`1` = the paper's
    /// shard-at-a-time loop). Applies only to the unidirectional
    /// AllGather loop; the width must divide the group size and leave at
    /// least two super-steps. Infeasible widths fall back to `1` with
    /// the reason recorded in [`DecomposeSummary::chunk_fallback`].
    pub chunk: usize,
    /// Wire encoding for the ring's `CollectivePermute` steps. Shards are
    /// encoded once at their source and decoded on receipt; `Lossless`
    /// (the default) reproduces the paper's exact arithmetic.
    pub wire: WireFormat,
}

impl Default for DecomposeOptions {
    fn default() -> Self {
        DecomposeOptions {
            unroll: true,
            bidirectional: true,
            pad_max_concat: false,
            chunk: 1,
            wire: WireFormat::Lossless,
        }
    }
}

/// The chunk width the unidirectional AllGather loop will actually use
/// for options `o` on a group of `g`, with the fallback reason when the
/// requested width is dropped. Shared by the decompose emission and the
/// cost model so the §5.5 gate prices exactly what will be emitted (and
/// the autotuner can prune instead of wasting simulator calls).
pub(crate) fn effective_ag_chunk(
    options: &DecomposeOptions,
    bidi: bool,
    g: usize,
) -> (usize, Option<String>) {
    let c = options.chunk.max(1);
    if c == 1 {
        return (1, None);
    }
    if bidi {
        return (1, Some("bidirectional ring already joins two shards per step; chunk ignored".into()));
    }
    if c >= g {
        return (1, Some(format!("chunk {c} leaves no loop to overlap (group size {g})")));
    }
    if !g.is_multiple_of(c) {
        return (1, Some(format!("chunk {c} does not divide the group size {g}")));
    }
    (c, None)
}

/// What the decomposition did to one pattern.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecomposeSummary {
    /// Name of the original einsum.
    pub einsum: String,
    /// Ring length (partition-group size).
    pub group_size: usize,
    /// Number of partial einsums emitted.
    pub partial_einsums: usize,
    /// Number of collective permutes emitted (loop + prologue/epilogue).
    pub permutes: usize,
    /// Whether the bidirectional form was used.
    pub bidirectional: bool,
    /// Whether the unrolled (two-chain / copy-free) form was used.
    pub unrolled: bool,
    /// Chunk width the loop actually used (`1` = shard-at-a-time).
    pub chunk: usize,
    /// Why requested unrolling was dropped (`None` when honored) — e.g.
    /// the two-chain ReduceScatter form needs an even group.
    pub unroll_fallback: Option<String>,
    /// Why a requested bidirectional ring fell back to unidirectional.
    pub bidirectional_fallback: Option<String>,
    /// Why a requested chunk width fell back to 1.
    pub chunk_fallback: Option<String>,
}

/// Tag placed on every instruction the decomposition emits.
pub(crate) const LCE_TAG: &str = "lce";
/// Tag on the partial einsums.
pub(crate) const LCE_EINSUM_TAG: &str = "lce.partial_einsum";
/// Tag on the combining `Add`/`DynamicUpdateSlice` steps.
pub(crate) const LCE_COMBINE_TAG: &str = "lce.combine";
/// Tag on the circulating collective permutes.
pub(crate) const LCE_CP_TAG: &str = "lce.cp";

/// Applies the looped collective-einsum rewrite to `selected` patterns.
///
/// Patterns must come from [`find_patterns`](crate::find_patterns) on this
/// very module and reference disjoint instructions (at most one pattern
/// per einsum; the pipeline's cost gate guarantees this). All other
/// instructions are copied unchanged.
///
/// Returns the transformed module and a per-pattern summary.
///
/// # Example
///
/// ```
/// use overlap_core::{decompose, find_patterns, DecomposeOptions};
/// use overlap_hlo::{Builder, DType, DotDims, Op, ReplicaGroups, Shape};
///
/// let n = 4;
/// let mut b = Builder::new("layer", n);
/// let x = b.parameter(Shape::new(DType::F32, vec![8, 16]), "x");
/// let w = b.parameter(Shape::new(DType::F32, vec![16, 8]), "w_shard");
/// let wg = b.all_gather(w, 1, ReplicaGroups::full(n), "w");
/// let y = b.einsum(x, wg, DotDims::matmul(), "y");
/// let m = b.build(vec![y]);
///
/// let patterns = find_patterns(&m);
/// let (out, summaries) = decompose(&m, &DecomposeOptions::default(), &patterns);
/// assert_eq!(summaries[0].partial_einsums, 2); // bidirectional: N/2 double-width
/// assert_eq!(out.count_live(|i| matches!(i.op(), Op::AllGather { .. })), 0);
/// ```
///
/// # Panics
///
/// Panics if a pattern references instructions that do not form the
/// expected shape (i.e. was not produced by `find_patterns` on `module`).
#[must_use]
pub fn decompose(
    module: &Module,
    options: &DecomposeOptions,
    selected: &[Pattern],
) -> (Module, Vec<DecomposeSummary>) {
    let items: Vec<(Pattern, DecomposeOptions)> =
        selected.iter().map(|&p| (p, *options)).collect();
    decompose_each(module, &items)
}

/// Like [`decompose`] but with per-pattern options (the pipeline's cost
/// model chooses the bidirectional form per pattern).
///
/// # Panics
///
/// Panics under the same conditions as [`decompose`].
#[must_use]
pub fn decompose_each(
    module: &Module,
    selected: &[(Pattern, DecomposeOptions)],
) -> (Module, Vec<DecomposeSummary>) {
    let (rewritten, summaries, _analysis) = decompose_impl(module, selected, false);
    (rewritten, summaries)
}

/// [`decompose_each`] also returning the rewritten module's
/// [`ModuleAnalysis`], maintained append-by-append while the builder
/// emits the loops (no post-hoc whole-module recomputation).
///
/// The builder additionally value-numbers pure instructions as it
/// appends (the loops emit the same rank table and scalar index
/// constants per pattern), so the returned module is already in CSE
/// normal form: running
/// [`overlap_hlo::eliminate_common_subexpressions`] on it is an
/// identity, and the result — names and arena order included — is
/// bit-identical to [`decompose_each`] followed by that pass.
///
/// # Panics
///
/// Panics under the same conditions as [`decompose`].
#[must_use]
pub fn decompose_each_with(
    module: &Module,
    selected: &[(Pattern, DecomposeOptions)],
) -> (Module, Vec<DecomposeSummary>, ModuleAnalysis) {
    decompose_impl(module, selected, true)
}

fn decompose_impl(
    module: &Module,
    selected: &[(Pattern, DecomposeOptions)],
    value_number: bool,
) -> (Module, Vec<DecomposeSummary>, ModuleAnalysis) {
    let mut b = Builder::new(module.name().to_string(), module.num_partitions());
    if value_number {
        b.enable_value_numbering();
    }
    let mut map: Vec<Option<InstrId>> = vec![None; module.len()];
    let mut summaries = Vec::new();

    // Index patterns by the instruction at which we emit the loop: the
    // einsum for AllGather patterns, the ReduceScatter for RS patterns.
    let mut skip = vec![false; module.len()];
    let mut emit_at: Vec<Option<&(Pattern, DecomposeOptions)>> = vec![None; module.len()];
    for item in selected {
        let p = &item.0;
        match p.kind {
            PatternKind::AllGatherEinsum { .. } => {
                skip[p.collective.index()] = true;
                emit_at[p.einsum.index()] = Some(item);
            }
            PatternKind::EinsumReduceScatter { .. } => {
                skip[p.einsum.index()] = true;
                emit_at[p.collective.index()] = Some(item);
            }
        }
    }

    for (id, ins) in module.iter() {
        if skip[id.index()] {
            continue;
        }
        if let Some((pattern, options)) = emit_at[id.index()] {
            let (result, summary) = emit_pattern(&mut b, module, pattern, options, &map);
            map[id.index()] = Some(result);
            summaries.push(summary);
            continue;
        }
        let operands: Vec<InstrId> = ins
            .operands()
            .iter()
            .map(|o| map[o.index()].expect("operands precede users"))
            .collect();
        map[id.index()] = Some(b.copy_of(module, id, operands));
    }

    let outputs = module
        .outputs()
        .iter()
        .map(|o| map[o.index()].expect("outputs mapped"))
        .collect();
    let (rewritten, analysis) = b.build_with_analysis(outputs);
    (rewritten, summaries, analysis)
}

/// Per-pattern loop emission context: group bookkeeping plus the scalar
/// index-arithmetic instructions shared by all iterations.
struct LoopCtx {
    g: usize,
    /// This device's rank within its replica group (`u32` scalar), looked
    /// up from a partition-id-indexed constant table.
    rank: InstrId,
    /// Shared `u32` zero used for untouched `DynamicUpdateSlice` indices.
    zero: InstrId,
    g_const: InstrId,
}

impl LoopCtx {
    fn new(b: &mut Builder, groups: &ReplicaGroups, num_partitions: usize) -> Self {
        let table_vals: Vec<f64> = (0..num_partitions as u32)
            .map(|pid| groups.rank_in_group(pid).expect("groups cover all partitions") as f64)
            .collect();
        let table = b.constant_tensor(
            Shape::new(DType::U32, vec![num_partitions]),
            table_vals,
            "lce.rank_table",
        );
        let pid = b.partition_id("lce.pid");
        let rank1 = b.dynamic_slice(table, &[pid], vec![1], "lce.rank1");
        let rank = b.reshape(rank1, vec![], "lce.rank");
        let zero = b.constant(Shape::scalar(DType::U32), 0.0, "lce.zero");
        let g_const =
            b.constant(Shape::scalar(DType::U32), groups.group_size() as f64, "lce.g");
        LoopCtx { g: groups.group_size(), rank, zero, g_const }
    }

    /// `(rank + delta) mod g` as a `u32` scalar (delta normalized into
    /// `0..g`).
    fn shard_index(&self, b: &mut Builder, delta: i64) -> InstrId {
        let d = delta.rem_euclid(self.g as i64);
        let c = b.constant(Shape::scalar(DType::U32), d as f64, "lce.delta");
        let sum = b.add(self.rank, c, "lce.rank_plus");
        b.rem(sum, self.g_const, "lce.shard")
    }

    /// `((rank + delta) mod g) * scale` as a `u32` scalar.
    fn offset(&self, b: &mut Builder, delta: i64, scale: usize) -> InstrId {
        let idx = self.shard_index(b, delta);
        let s = b.constant(Shape::scalar(DType::U32), scale as f64, "lce.scale");
        b.mul(idx, s, "lce.offset")
    }

    /// Index vector for a rank-`rank_count` slice/update touching only
    /// `dim` (all other indices zero).
    fn index_vec(&self, dim: usize, rank_count: usize, offset: InstrId) -> Vec<InstrId> {
        (0..rank_count).map(|d| if d == dim { offset } else { self.zero }).collect()
    }
}

fn emit_pattern(
    b: &mut Builder,
    module: &Module,
    pattern: &Pattern,
    options: &DecomposeOptions,
    map: &[Option<InstrId>],
) -> (InstrId, DecomposeSummary) {
    b.set_tag(Some(LCE_TAG));
    let result = match pattern.kind {
        PatternKind::AllGatherEinsum { gathered_is_lhs, case } => {
            emit_ag_einsum(b, module, pattern, gathered_is_lhs, case, options, map)
        }
        PatternKind::EinsumReduceScatter { sliced_is_lhs, sliced_dim } => {
            emit_einsum_rs(b, module, pattern, sliced_is_lhs, sliced_dim, options, map)
        }
    };
    b.set_tag(None);
    result
}

/// Emits a concatenation of two shards along `dim` — either a plain
/// `Concatenate` or the fusion-friendly `Max(PadLow, PadHigh)` form of
/// §5.4.3 (the two are semantically identical for the `-inf` pad value).
fn emit_join(
    b: &mut Builder,
    a: InstrId,
    c: InstrId,
    dim: usize,
    pad_max: bool,
    name: &str,
) -> InstrId {
    if !pad_max {
        return b.concatenate(&[a, c], dim, name);
    }
    let sa = b.shape_of(a).clone();
    let sc = b.shape_of(c).clone();
    let ninf = b.constant(Shape::scalar(sa.dtype()), f64::NEG_INFINITY, "lce.ninf");
    let mut low_cfg = vec![PadDim::none(); sa.rank()];
    low_cfg[dim] = PadDim::new(0, sc.dim(dim));
    let mut high_cfg = vec![PadDim::none(); sc.rank()];
    high_cfg[dim] = PadDim::new(sa.dim(dim), 0);
    let pa = b.pad(a, ninf, low_cfg, &format!("{name}.padlow"));
    let pc = b.pad(c, ninf, high_cfg, &format!("{name}.padhigh"));
    b.max(pa, pc, name)
}

/// [`emit_join`] generalized to `parts.len()` shards (the chunked
/// unidirectional loop joins `chunk` consecutive shards per super-step).
/// The pad-max form pads each part to the joined width at its slot and
/// folds with `Max` — semantically identical to the concatenation for
/// the `-inf` pad value.
fn emit_join_many(
    b: &mut Builder,
    parts: &[InstrId],
    dim: usize,
    pad_max: bool,
    name: &str,
) -> InstrId {
    if parts.len() == 2 {
        return emit_join(b, parts[0], parts[1], dim, pad_max, name);
    }
    if !pad_max {
        return b.concatenate(parts, dim, name);
    }
    let total: usize = parts.iter().map(|&p| b.shape_of(p).dim(dim)).sum();
    let dtype = b.shape_of(parts[0]).dtype();
    let ninf = b.constant(Shape::scalar(dtype), f64::NEG_INFINITY, "lce.ninf");
    let mut acc: Option<InstrId> = None;
    let mut before = 0usize;
    for &p in parts {
        let sp = b.shape_of(p).clone();
        let w = sp.dim(dim);
        let mut cfg = vec![PadDim::none(); sp.rank()];
        cfg[dim] = PadDim::new(before, total - before - w);
        let padded = b.pad(p, ninf, cfg, &format!("{name}.pad"));
        acc = Some(match acc {
            None => padded,
            Some(a) => b.max(a, padded, name),
        });
        before += w;
    }
    acc.expect("emit_join_many needs at least one part")
}

#[derive(Debug, Clone, Copy)]
struct AgGeometry {
    /// Gathered-operand dimension being circulated.
    gather_dim: usize,
    /// Shard size along that dimension.
    shard: usize,
    /// For case 2/3: the other operand's paired dimension to slice.
    other_dim: Option<usize>,
    /// For case 1/3: the output dimension to update.
    out_dim: Option<usize>,
}

fn ag_geometry(
    module: &Module,
    pattern: &Pattern,
    gathered_is_lhs: bool,
    case: AgCase,
) -> AgGeometry {
    let einsum = module.instr(pattern.einsum);
    let Op::Einsum(dims) = einsum.op() else { panic!("pattern einsum is not an einsum") };
    let Op::AllGather { dim: gather_dim, .. } = module.instr(pattern.collective).op() else {
        panic!("pattern collective is not an all-gather")
    };
    let gather_dim = *gather_dim;
    let shard_shape = module.shape_of(module.instr(pattern.collective).operands()[0]);
    let shard = shard_shape.dim(gather_dim);
    let lhs_rank = module.shape_of(einsum.operands()[0]).rank();
    let rhs_rank = module.shape_of(einsum.operands()[1]).rank();

    let (other_dim, out_dim) = match case {
        AgCase::Free => {
            let out_dim = if gathered_is_lhs {
                dims.output_dim_of_lhs_free(lhs_rank, gather_dim)
            } else {
                dims.output_dim_of_rhs_free(lhs_rank, rhs_rank, gather_dim)
            };
            (None, Some(out_dim.expect("free dim maps to output")))
        }
        AgCase::Contracting => {
            let other = if gathered_is_lhs {
                dims.rhs_dim_paired_with(gather_dim)
            } else {
                dims.lhs_dim_paired_with(gather_dim)
            };
            (Some(other.expect("contracting dim is paired")), None)
        }
        AgCase::Batch => {
            let (other, batch_index) = if gathered_is_lhs {
                let i = dims
                    .batch()
                    .iter()
                    .position(|&(l, _)| l == gather_dim)
                    .expect("batch dim is paired");
                (dims.batch()[i].1, i)
            } else {
                let i = dims
                    .batch()
                    .iter()
                    .position(|&(_, r)| r == gather_dim)
                    .expect("batch dim is paired");
                (dims.batch()[i].0, i)
            };
            (Some(other), Some(batch_index))
        }
    };
    AgGeometry { gather_dim, shard, other_dim, out_dim }
}

#[allow(clippy::too_many_lines)]
fn emit_ag_einsum(
    b: &mut Builder,
    module: &Module,
    pattern: &Pattern,
    gathered_is_lhs: bool,
    case: AgCase,
    options: &DecomposeOptions,
    map: &[Option<InstrId>],
) -> (InstrId, DecomposeSummary) {
    let einsum = module.instr(pattern.einsum);
    let Op::Einsum(dims) = einsum.op().clone() else { unreachable!() };
    let Op::AllGather { groups, .. } = module.instr(pattern.collective).op().clone() else {
        unreachable!()
    };
    let geom = ag_geometry(module, pattern, gathered_is_lhs, case);
    let out_shape = einsum.shape().clone();
    let name = einsum.name().to_string();

    // Mapped local inputs.
    let gathered_src = module.instr(pattern.collective).operands()[0];
    let looped0 = map[gathered_src.index()].expect("gather operand mapped");
    let other_src = if gathered_is_lhs { einsum.operands()[1] } else { einsum.operands()[0] };
    let other = map[other_src.index()].expect("other operand mapped");

    let ctx = LoopCtx::new(b, &groups, module.num_partitions());
    let g = ctx.g;
    let bidi = options.bidirectional && g.is_multiple_of(2) && g >= 2;
    let bidirectional_fallback = (options.bidirectional && !bidi)
        .then(|| format!("bidirectional ring needs an even group (group size {g})"));
    let (chunk, chunk_fallback) = effective_ag_chunk(options, bidi, g);
    let mut permutes = 0usize;
    let mut partials = 0usize;

    // Slice of the non-circulating operand matching the shard with index
    // expression `(rank + delta) mod g` (cases 2 and 3; case 1 uses the
    // whole operand).
    let slice_other = |b: &mut Builder, delta: i64| -> InstrId {
        let od = geom.other_dim.expect("slice only in cases 2/3");
        let offset = ctx.offset(b, delta, geom.shard);
        let sizes: Vec<usize> = b
            .shape_of(other)
            .dims()
            .iter()
            .enumerate()
            .map(|(d, &s)| if d == od { geom.shard } else { s })
            .collect();
        let rank_count = b.shape_of(other).rank();
        let idx = ctx.index_vec(od, rank_count, offset);
        b.set_tag(Some(LCE_TAG));
        b.dynamic_slice(other, &idx, sizes, &format!("{name}.ds"))
    };

    // The partial einsum for the shard with index expression
    // `(rank + delta) mod g`, given the circulating shard value.
    let emit_partial = |b: &mut Builder, looped: InstrId, delta: i64| {
        let other_used = match geom.other_dim {
            None => other,
            Some(_) => slice_other(b, delta),
        };
        b.set_tag(Some(LCE_EINSUM_TAG));
        let partial = if gathered_is_lhs {
            b.einsum(looped, other_used, dims.clone(), &format!("{name}.partial"))
        } else {
            b.einsum(other_used, looped, dims.clone(), &format!("{name}.partial"))
        };
        b.set_tag(Some(LCE_TAG));
        partial
    };

    // Combine a partial into the result.
    let combine = |b: &mut Builder,
                   ctx: &LoopCtx,
                   result: InstrId,
                   partial: InstrId,
                   delta: i64|
     -> InstrId {
        b.set_tag(Some(LCE_COMBINE_TAG));
        let combined = match geom.out_dim {
            None => b.add(result, partial, &format!("{name}.acc")),
            Some(out_dim) => {
                let out_shard = b.shape_of(partial).dim(out_dim);
                let offset = ctx.offset(b, delta, out_shard);
                let rank_count = b.shape_of(result).rank();
                let idx = ctx.index_vec(out_dim, rank_count, offset);
                b.dynamic_update_slice(result, partial, &idx, &format!("{name}.dus"))
            }
        };
        b.set_tag(Some(LCE_TAG));
        combined
    };

    let cp = |b: &mut Builder, value: InstrId, step: i64, permutes: &mut usize| -> InstrId {
        b.set_tag(Some(LCE_CP_TAG));
        let sent = b.collective_permute_wire(
            value,
            shift_pairs(&groups, step),
            options.wire,
            &format!("{name}.cp"),
        );
        *permutes += 1;
        b.set_tag(Some(LCE_TAG));
        if options.unroll {
            sent
        } else {
            // Loop-carried aliasing copy of the rolled loop (§5.4.1).
            b.copy(sent, &format!("{name}.loop_copy"))
        }
    };

    let mut result = b.zeros(out_shape.clone(), &format!("{name}.init"));
    // Case 2 accumulates into a zero buffer via Add; for the einsum output
    // to match, start from zeros of the einsum's (local) output shape —
    // identical to `out_shape` in all cases.

    if !bidi && chunk == 1 {
        let mut looped = looped0;
        for i in 0..g {
            let partial = emit_partial(b, looped, i as i64);
            partials += 1;
            if i + 1 < g {
                looped = cp(b, looped, -1, &mut permutes);
            }
            result = combine(b, &ctx, result, partial, i as i64);
        }
    } else if !bidi {
        // Chunked unidirectional loop: shards still circulate one hop at
        // a time (permute count unchanged at g-1), but every `chunk`
        // arrivals are joined into one wide partial einsum — g/chunk
        // partials of `chunk` shards each, trading per-kernel launch
        // overhead for coarser overlap granularity.
        let mut looped = looped0;
        let mut window: Vec<InstrId> = Vec::with_capacity(chunk);
        for i in 0..g {
            window.push(looped);
            if i + 1 < g {
                looped = cp(b, looped, -1, &mut permutes);
            }
            if window.len() < chunk {
                continue;
            }
            // Delta of the window's first shard.
            let d0 = (i + 1 - chunk) as i64;
            let joined = emit_join_many(
                b,
                &window,
                geom.gather_dim,
                options.pad_max_concat,
                &format!("{name}.join"),
            );
            let other_used = match geom.other_dim {
                None => other,
                Some(od) => {
                    let slices: Vec<InstrId> =
                        (0..chunk).map(|k| slice_other(b, d0 + k as i64)).collect();
                    b.concatenate(&slices, od, &format!("{name}.join_other"))
                }
            };
            b.set_tag(Some(LCE_EINSUM_TAG));
            let wide = if gathered_is_lhs {
                b.einsum(joined, other_used, dims.clone(), &format!("{name}.partialw"))
            } else {
                b.einsum(other_used, joined, dims.clone(), &format!("{name}.partialw"))
            };
            b.set_tag(Some(LCE_TAG));
            partials += 1;
            match geom.out_dim {
                // Contracting case: the wide einsum already sums over all
                // `chunk` shards; one Add folds it in.
                None => result = combine(b, &ctx, result, wide, d0),
                Some(out_dim) => {
                    // The window's shards are contiguous in the wide
                    // partial but generally not in the (mod-g) output
                    // layout — at the ring wrap they land at both ends —
                    // so slice the wide partial back into single-shard
                    // pieces and update each at its own offset.
                    let pw = b.shape_of(wide).clone();
                    let piece = pw.dim(out_dim) / chunk;
                    for k in 0..chunk {
                        let mut starts = vec![0usize; pw.rank()];
                        let mut limits = pw.dims().to_vec();
                        starts[out_dim] = k * piece;
                        limits[out_dim] = (k + 1) * piece;
                        let pk = b.slice(wide, starts, limits, &format!("{name}.piece"));
                        result = combine(b, &ctx, result, pk, d0 + k as i64);
                    }
                }
            }
            window.clear();
        }
    } else {
        // Bidirectional (§5.4.2): prologue shifts a copy of the local
        // shard clockwise so each device starts with shards
        // {rank, rank-1}, then the two sets circulate in opposite
        // directions.
        let m = g / 2;
        let mut left = looped0;
        let mut right = cp(b, looped0, 1, &mut permutes);
        for t in 0..m {
            let (dl, dr) = (t as i64, -1 - t as i64);
            if case == AgCase::Contracting {
                // Contracting case: two single-shard partials, two
                // accumulating adds (contributions are order-independent).
                let pl = emit_partial(b, left, dl);
                let pr = emit_partial(b, right, dr);
                partials += 2;
                result = combine(b, &ctx, result, pl, dl);
                result = combine(b, &ctx, result, pr, dr);
            } else {
                // Concatenate the two circulating shards (and, in the
                // batch case, the matching slices of the other operand) so
                // one double-width einsum covers both — the §5.4.2 trick
                // that keeps per-iteration compute large.
                let join_dim = geom.gather_dim;
                let joined = emit_join(
                    b,
                    left,
                    right,
                    join_dim,
                    options.pad_max_concat,
                    &format!("{name}.join"),
                );
                let other_used = match geom.other_dim {
                    None => other,
                    Some(od) => {
                        let sl = slice_other(b, dl);
                        let sr = slice_other(b, dr);
                        b.concatenate(&[sl, sr], od, &format!("{name}.join_other"))
                    }
                };
                // The two shards are not contiguous in the output, so
                // compute a double-width partial and split it.
                let partial2 = {
                    b.set_tag(Some(LCE_EINSUM_TAG));
                    let p = if gathered_is_lhs {
                        b.einsum(joined, other_used, dims.clone(), &format!("{name}.partial2"))
                    } else {
                        b.einsum(other_used, joined, dims.clone(), &format!("{name}.partial2"))
                    };
                    b.set_tag(Some(LCE_TAG));
                    p
                };
                partials += 1;
                let out_dim = geom.out_dim.expect("free/batch case has an output dim");
                let p2 = b.shape_of(partial2).clone();
                let half = p2.dim(out_dim) / 2;
                let mut starts = vec![0usize; p2.rank()];
                let mut limits = p2.dims().to_vec();
                limits[out_dim] = half;
                let pl = b.slice(partial2, starts.clone(), limits.clone(), &format!("{name}.lo"));
                starts[out_dim] = half;
                limits[out_dim] = 2 * half;
                let pr = b.slice(partial2, starts, limits, &format!("{name}.hi"));
                result = combine(b, &ctx, result, pl, dl);
                result = combine(b, &ctx, result, pr, dr);
            }
            if t + 1 < m {
                left = cp(b, left, -1, &mut permutes);
                right = cp(b, right, 1, &mut permutes);
            }
        }
    }

    let summary = DecomposeSummary {
        einsum: name,
        group_size: g,
        partial_einsums: partials,
        permutes,
        bidirectional: bidi,
        unrolled: options.unroll,
        chunk,
        unroll_fallback: None,
        bidirectional_fallback,
        chunk_fallback,
    };
    (result, summary)
}

#[allow(clippy::too_many_lines)]
fn emit_einsum_rs(
    b: &mut Builder,
    module: &Module,
    pattern: &Pattern,
    sliced_is_lhs: bool,
    sliced_dim: usize,
    options: &DecomposeOptions,
    map: &[Option<InstrId>],
) -> (InstrId, DecomposeSummary) {
    let einsum = module.instr(pattern.einsum);
    let Op::Einsum(dims) = einsum.op().clone() else { unreachable!() };
    let rs = module.instr(pattern.collective);
    let Op::ReduceScatter { groups, .. } = rs.op().clone() else { unreachable!() };
    let name = einsum.name().to_string();
    let shard_shape = rs.shape().clone();


    let lhs = map[einsum.operands()[0].index()].expect("mapped");
    let rhs = map[einsum.operands()[1].index()].expect("mapped");
    let (owner, other) = if sliced_is_lhs { (lhs, rhs) } else { (rhs, lhs) };
    let owner_shard = b.shape_of(owner).dim(sliced_dim) / groups.group_size();

    let ctx = LoopCtx::new(b, &groups, module.num_partitions());
    let g = ctx.g;
    let bidi = options.bidirectional && g.is_multiple_of(2);
    let two_chain = options.unroll && g.is_multiple_of(2) && !bidi;
    let bidirectional_fallback = (options.bidirectional && !bidi)
        .then(|| format!("bidirectional ring needs an even group (group size {g})"));
    // Unrolling still drops the loop-carried copies for odd groups, but
    // the two-chain accumulation form (Fig. 8) needs an even group —
    // record the partial fallback so the autotuner can prune.
    let unroll_fallback = (options.unroll && !g.is_multiple_of(2))
        .then(|| format!("two-chain unrolling needs an even group (group size {g})"));
    let chunk_fallback = (options.chunk > 1).then(|| {
        "reduce-scatter chains cannot chunk (each partial feeds a traveling accumulator)"
            .to_string()
    });
    let mut permutes = 0usize;
    let mut partials = 0usize;

    // Partial einsum for shard `(rank + delta) mod g`.
    let mut emit_partial = |b: &mut Builder, delta: i64| -> InstrId {
        let offset = ctx.offset(b, delta, owner_shard);
        let sizes: Vec<usize> = b
            .shape_of(owner)
            .dims()
            .iter()
            .enumerate()
            .map(|(d, &s)| if d == sliced_dim { owner_shard } else { s })
            .collect();
        let rank_count = b.shape_of(owner).rank();
        let idx = ctx.index_vec(sliced_dim, rank_count, offset);
        b.set_tag(Some(LCE_TAG));
        let sliced = b.dynamic_slice(owner, &idx, sizes, &format!("{name}.ds"));
        b.set_tag(Some(LCE_EINSUM_TAG));
        let partial = if sliced_is_lhs {
            b.einsum(sliced, other, dims.clone(), &format!("{name}.partial"))
        } else {
            b.einsum(other, sliced, dims.clone(), &format!("{name}.partial"))
        };
        b.set_tag(Some(LCE_TAG));
        partials += 1;
        partial
    };

    let cp = |b: &mut Builder, value: InstrId, step: i64, permutes: &mut usize| -> InstrId {
        b.set_tag(Some(LCE_CP_TAG));
        let sent = b.collective_permute_wire(
            value,
            shift_pairs(&groups, step),
            options.wire,
            &format!("{name}.cp"),
        );
        *permutes += 1;
        b.set_tag(Some(LCE_TAG));
        if options.unroll {
            sent
        } else {
            b.copy(sent, &format!("{name}.loop_copy"))
        }
    };

    let acc_add = |b: &mut Builder, acc: InstrId, partial: InstrId| -> InstrId {
        b.set_tag(Some(LCE_COMBINE_TAG));
        let r = b.add(acc, partial, &format!("{name}.acc"));
        b.set_tag(Some(LCE_TAG));
        r
    };

    let result = if bidi {
        // Two accumulators travel in opposite directions (§5.4.2, Fig. 10);
        // the clockwise one is shifted once more in the epilogue and added.
        let m = g / 2;
        let mut acc_l = b.zeros(shard_shape.clone(), &format!("{name}.init_l"));
        let mut acc_r = b.zeros(shard_shape.clone(), &format!("{name}.init_r"));
        for t in 0..m {
            let dl = 1 - (m as i64) + t as i64; // shard (rank - m + 1 + t)
            let dr = m as i64 - t as i64; // shard (rank + m - t)
            let pl = emit_partial(b, dl);
            let pr = emit_partial(b, dr);
            if t > 0 {
                acc_l = cp(b, acc_l, -1, &mut permutes);
                acc_r = cp(b, acc_r, 1, &mut permutes);
            }
            acc_l = acc_add(b, acc_l, pl);
            acc_r = acc_add(b, acc_r, pr);
        }
        let aligned = cp(b, acc_r, 1, &mut permutes);
        acc_add(b, acc_l, aligned)
    } else if two_chain {
        // Unrolled two-chain form (§5.4.1, Fig. 8): chain A accumulates
        // shards (rank + 2j + 2), chain B (rank + 2j + 3); both hop two
        // ring positions between contributions; the epilogue aligns chain
        // B with a single forward hop.
        let m = g / 2;
        let mut acc_a = b.zeros(shard_shape.clone(), &format!("{name}.init_a"));
        let mut acc_b = b.zeros(shard_shape.clone(), &format!("{name}.init_b"));
        for j in 0..m {
            let da = 2 * j as i64 + 2;
            let db = 2 * j as i64 + 3;
            let pa = emit_partial(b, da);
            let pb = emit_partial(b, db);
            if j > 0 {
                acc_a = cp(b, acc_a, -2, &mut permutes);
                acc_b = cp(b, acc_b, -2, &mut permutes);
            }
            acc_a = acc_add(b, acc_a, pa);
            acc_b = acc_add(b, acc_b, pb);
        }
        let aligned = cp(b, acc_b, 1, &mut permutes);
        acc_add(b, acc_a, aligned)
    } else {
        // Single chain (Algorithm 1): the accumulator is transferred at
        // the start of every iteration and the partial added on arrival.
        let mut acc = b.zeros(shard_shape.clone(), &format!("{name}.init"));
        for i in 0..g {
            let partial = emit_partial(b, i as i64 + 1);
            acc = cp(b, acc, -1, &mut permutes);
            acc = acc_add(b, acc, partial);
        }
        acc
    };

    let summary = DecomposeSummary {
        einsum: name,
        group_size: g,
        partial_einsums: partials,
        permutes,
        bidirectional: bidi,
        unrolled: options.unroll,
        chunk: 1,
        unroll_fallback,
        bidirectional_fallback,
        chunk_fallback,
    };
    (result, summary)
}

#[cfg(test)]
mod tests {
    use overlap_hlo::{Builder, DType, DotDims, ReplicaGroups, Shape};

    use super::*;
    use crate::find_patterns;

    fn f32s(dims: &[usize]) -> Shape {
        Shape::new(DType::F32, dims.to_vec())
    }

    fn ag_module(n: usize) -> Module {
        let mut b = Builder::new("ag", n);
        let x = b.parameter(f32s(&[8, 16]), "x");
        let w = b.parameter(f32s(&[16, 32 / n]), "w");
        let g = b.all_gather(w, 1, ReplicaGroups::full(n), "g");
        let e = b.einsum(x, g, DotDims::matmul(), "e");
        b.build(vec![e])
    }

    fn rs_module(n: usize) -> Module {
        let mut b = Builder::new("rs", n);
        let x = b.parameter(f32s(&[8, 16]), "x");
        let w = b.parameter(f32s(&[16, 32]), "w");
        let e = b.einsum(x, w, DotDims::matmul(), "e");
        let rs = b.reduce_scatter(e, 1, ReplicaGroups::full(n), "rs");
        b.build(vec![rs])
    }

    #[test]
    fn ag_unidirectional_structure() {
        let m = ag_module(4);
        let pats = find_patterns(&m);
        let opts = DecomposeOptions { bidirectional: false, ..Default::default() };
        let (out, summaries) = decompose(&m, &opts, &pats);
        out.verify().unwrap();
        assert_eq!(summaries.len(), 1);
        let s = &summaries[0];
        assert_eq!(s.group_size, 4);
        assert_eq!(s.partial_einsums, 4);
        assert_eq!(s.permutes, 3); // N-1 for the AllGather case
        assert!(!s.bidirectional);
        // The original collective is gone.
        assert_eq!(out.count_live(|i| matches!(i.op(), Op::AllGather { .. })), 0);
        assert_eq!(
            out.count_live(|i| matches!(i.op(), Op::CollectivePermute { .. })),
            3
        );
        // Output shape preserved.
        assert_eq!(out.shape_of(out.outputs()[0]), m.shape_of(m.outputs()[0]));
    }

    #[test]
    fn ag_bidirectional_structure() {
        let m = ag_module(4);
        let pats = find_patterns(&m);
        let opts = DecomposeOptions { bidirectional: true, ..Default::default() };
        let (out, summaries) = decompose(&m, &opts, &pats);
        out.verify().unwrap();
        let s = &summaries[0];
        assert!(s.bidirectional);
        // Prologue + 2*(m-1) loop permutes = 1 + 2 = 3 for g=4.
        assert_eq!(s.permutes, 3);
        // m iterations of one double-width einsum each.
        assert_eq!(s.partial_einsums, 2);
    }

    #[test]
    fn rs_single_chain_structure() {
        let m = rs_module(4);
        let pats = find_patterns(&m);
        let opts =
            DecomposeOptions { bidirectional: false, unroll: false, ..Default::default() };
        let (out, summaries) = decompose(&m, &opts, &pats);
        out.verify().unwrap();
        let s = &summaries[0];
        assert_eq!(s.partial_einsums, 4);
        assert_eq!(s.permutes, 4); // N for the ReduceScatter case
        assert_eq!(out.count_live(|i| matches!(i.op(), Op::ReduceScatter { .. })), 0);
        // Non-unrolled form carries the aliasing copies.
        assert!(out.count_live(|i| matches!(i.op(), Op::Copy)) >= 4);
        assert_eq!(out.shape_of(out.outputs()[0]), m.shape_of(m.outputs()[0]));
    }

    #[test]
    fn rs_two_chain_structure() {
        let m = rs_module(4);
        let pats = find_patterns(&m);
        let opts =
            DecomposeOptions { bidirectional: false, unroll: true, ..Default::default() };
        let (out, summaries) = decompose(&m, &opts, &pats);
        out.verify().unwrap();
        let s = &summaries[0];
        assert_eq!(s.partial_einsums, 4);
        // 2 chains * (m-1) + epilogue = 2 + 1 = 3.
        assert_eq!(s.permutes, 3);
        assert_eq!(out.count_live(|i| matches!(i.op(), Op::Copy)), 0);
    }

    #[test]
    fn odd_group_falls_back_to_unidirectional() {
        let m = ag_module(3);
        let pats = find_patterns(&m);
        let opts = DecomposeOptions { bidirectional: true, ..Default::default() };
        let (out, summaries) = decompose(&m, &opts, &pats);
        out.verify().unwrap();
        let s = &summaries[0];
        assert!(!s.bidirectional, "odd group must fall back to unidirectional");
        assert_eq!(s.partial_einsums, 3);
        assert_eq!(s.permutes, 2);
        assert!(
            s.bidirectional_fallback.as_deref().is_some_and(|r| r.contains("even group")),
            "fallback reason must be recorded: {:?}",
            s.bidirectional_fallback
        );
    }

    #[test]
    fn odd_group_rs_records_unroll_fallback() {
        // rs_module's fixed 32-wide output only divides even groups;
        // build a 33-wide variant for the odd-group draw.
        let mut b = Builder::new("rs3", 3);
        let x = b.parameter(f32s(&[8, 16]), "x");
        let w = b.parameter(f32s(&[16, 33]), "w");
        let e = b.einsum(x, w, DotDims::matmul(), "e");
        let rs = b.reduce_scatter(e, 1, ReplicaGroups::full(3), "rs");
        let m = b.build(vec![rs]);
        let pats = find_patterns(&m);
        let opts =
            DecomposeOptions { bidirectional: false, unroll: true, ..Default::default() };
        let (out, summaries) = decompose(&m, &opts, &pats);
        out.verify().unwrap();
        let s = &summaries[0];
        assert!(s.unrolled, "copies are still dropped");
        assert!(
            s.unroll_fallback.as_deref().is_some_and(|r| r.contains("two-chain")),
            "odd-group RS must record why the two-chain form was dropped: {:?}",
            s.unroll_fallback
        );
        // Even groups unroll cleanly: no reason recorded.
        let m4 = rs_module(4);
        let pats4 = find_patterns(&m4);
        let (_, summaries4) = decompose(&m4, &opts, &pats4);
        assert_eq!(summaries4[0].unroll_fallback, None);
    }

    #[test]
    fn ag_chunked_structure() {
        let m = ag_module(4);
        let pats = find_patterns(&m);
        let opts = DecomposeOptions { bidirectional: false, chunk: 2, ..Default::default() };
        let (out, summaries) = decompose(&m, &opts, &pats);
        out.verify().unwrap();
        let s = &summaries[0];
        assert_eq!(s.chunk, 2);
        assert_eq!(s.chunk_fallback, None);
        // g/chunk wide partials, permute count unchanged at g-1.
        assert_eq!(s.partial_einsums, 2);
        assert_eq!(s.permutes, 3);
        assert_eq!(out.count_live(|i| matches!(i.op(), Op::AllGather { .. })), 0);
        assert_eq!(out.shape_of(out.outputs()[0]), m.shape_of(m.outputs()[0]));
    }

    #[test]
    fn ag_chunked_pad_max_variant_verifies() {
        let m = ag_module(8);
        let pats = find_patterns(&m);
        let opts = DecomposeOptions {
            bidirectional: false,
            chunk: 4,
            pad_max_concat: true,
            ..Default::default()
        };
        let (out, summaries) = decompose(&m, &opts, &pats);
        out.verify().unwrap();
        assert_eq!(summaries[0].partial_einsums, 2);
        assert!(out.count_live(|i| matches!(i.op(), Op::Pad { .. })) > 0);
        assert_eq!(out.count_live(|i| matches!(i.op(), Op::Concatenate { .. })), 0);
    }

    #[test]
    fn infeasible_chunk_falls_back_with_reason() {
        let m = ag_module(4);
        let pats = find_patterns(&m);
        // 3 does not divide 4.
        let opts = DecomposeOptions { bidirectional: false, chunk: 3, ..Default::default() };
        let (out, summaries) = decompose(&m, &opts, &pats);
        out.verify().unwrap();
        let s = &summaries[0];
        assert_eq!(s.chunk, 1);
        assert!(s.chunk_fallback.as_deref().is_some_and(|r| r.contains("divide")));
        assert_eq!(s.partial_einsums, 4, "fallback must emit the plain loop");

        // chunk == g leaves nothing to overlap.
        let opts = DecomposeOptions { bidirectional: false, chunk: 4, ..Default::default() };
        let (_, summaries) = decompose(&m, &opts, &pats);
        assert!(summaries[0].chunk_fallback.as_deref().is_some_and(|r| r.contains("no loop")));

        // The bidirectional loop ignores chunking.
        let opts = DecomposeOptions { bidirectional: true, chunk: 2, ..Default::default() };
        let (_, summaries) = decompose(&m, &opts, &pats);
        assert!(summaries[0].chunk_fallback.as_deref().is_some_and(|r| r.contains("bidirectional")));
        assert_eq!(summaries[0].chunk, 1);
    }

    #[test]
    fn rs_chunk_request_records_reason() {
        let m = rs_module(4);
        let pats = find_patterns(&m);
        let opts = DecomposeOptions { bidirectional: false, chunk: 2, ..Default::default() };
        let (out, summaries) = decompose(&m, &opts, &pats);
        out.verify().unwrap();
        let s = &summaries[0];
        assert_eq!(s.chunk, 1);
        assert!(s.chunk_fallback.as_deref().is_some_and(|r| r.contains("reduce-scatter")));
    }

    #[test]
    fn pad_max_concat_variant_verifies() {
        let m = ag_module(4);
        let pats = find_patterns(&m);
        let opts = DecomposeOptions {
            bidirectional: true,
            pad_max_concat: true,
            ..Default::default()
        };
        let (out, _) = decompose(&m, &opts, &pats);
        out.verify().unwrap();
        assert!(out.count_live(|i| matches!(i.op(), Op::Pad { .. })) > 0);
        assert_eq!(out.count_live(|i| matches!(i.op(), Op::Concatenate { .. })), 0);
    }

    #[test]
    fn empty_selection_is_identity_modulo_names() {
        let m = ag_module(2);
        let (out, summaries) = decompose(&m, &DecomposeOptions::default(), &[]);
        assert!(summaries.is_empty());
        assert_eq!(out.len(), m.len());
        assert_eq!(
            out.count_live(|i| matches!(i.op(), Op::AllGather { .. })),
            m.count_live(|i| matches!(i.op(), Op::AllGather { .. }))
        );
    }
}
