//! Conversion of blocking collective permutes into asynchronous
//! start/done pairs (§5.2).

use overlap_hlo::{Builder, InstrId, Module, ModuleAnalysis, Op};

/// Splits every synchronous `CollectivePermute` into a
/// `CollectivePermuteStart` immediately followed by its
/// `CollectivePermuteDone`.
///
/// The start "simply starts the data transfer … and takes almost no
/// execution time"; the done marks completion. Adjacent placement keeps
/// the module semantically identical to the synchronous form — creating
/// the actual overlap is the *scheduler's* job (it moves the start as
/// early and the done as late as data dependences allow).
///
/// # Panics
///
/// Panics if the module is malformed (operands after users).
#[must_use]
pub fn asyncify(module: &Module) -> Module {
    asyncify_with(module).0
}

/// [`asyncify`] also returning the rewritten module's [`ModuleAnalysis`],
/// maintained append-by-append by the builder.
///
/// # Panics
///
/// Panics if the module is malformed (operands after users).
#[must_use]
pub fn asyncify_with(module: &Module) -> (Module, ModuleAnalysis) {
    let mut b = Builder::new(module.name().to_string(), module.num_partitions());
    let mut map: Vec<Option<InstrId>> = vec![None; module.len()];
    for (id, ins) in module.iter() {
        let operands: Vec<InstrId> = ins
            .operands()
            .iter()
            .map(|o| map[o.index()].expect("operands precede users"))
            .collect();
        let new_id = if let Op::CollectivePermute { pairs, wire } = ins.op() {
            b.set_tag(ins.tag());
            let start =
                b.collective_permute_start_wire(operands[0], pairs.clone(), *wire, ins.name());
            let done = b.collective_permute_done(start, &format!("{}.done", ins.name()));
            b.set_tag(None);
            done
        } else {
            b.copy_of(module, id, operands)
        };
        map[id.index()] = Some(new_id);
    }
    let outputs = module
        .outputs()
        .iter()
        .map(|o| map[o.index()].expect("outputs mapped"))
        .collect();
    b.build_with_analysis(outputs)
}

#[cfg(test)]
mod tests {
    use overlap_hlo::{DType, Shape};

    use super::*;

    #[test]
    fn permutes_become_start_done_pairs() {
        let mut b = Builder::new("m", 2);
        let x = b.parameter(Shape::new(DType::F32, vec![4]), "x");
        b.set_tag(Some("lce.cp"));
        let p = b.collective_permute(x, vec![(0, 1), (1, 0)], "p");
        b.set_tag(None);
        let c = b.copy(p, "c");
        let m = b.build(vec![c]);

        let a = asyncify(&m);
        a.verify().unwrap();
        assert_eq!(a.count_live(|i| matches!(i.op(), Op::CollectivePermute { .. })), 0);
        assert_eq!(
            a.count_live(|i| matches!(i.op(), Op::CollectivePermuteStart { .. })),
            1
        );
        assert_eq!(a.count_live(|i| matches!(i.op(), Op::CollectivePermuteDone)), 1);
        // The start keeps the pass tag so later passes can find it.
        let start = a
            .iter()
            .find(|(_, i)| matches!(i.op(), Op::CollectivePermuteStart { .. }))
            .unwrap();
        assert_eq!(start.1.tag(), Some("lce.cp"));
    }

    #[test]
    fn modules_without_permutes_are_unchanged_in_size() {
        let mut b = Builder::new("m", 2);
        let x = b.parameter(Shape::new(DType::F32, vec![4]), "x");
        let c = b.copy(x, "c");
        let m = b.build(vec![c]);
        let a = asyncify(&m);
        assert_eq!(a.len(), m.len());
    }
}
