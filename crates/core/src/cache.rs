//! Content-addressed cache of compiled artifacts.
//!
//! Compiling the same (module, machine, options) triple twice is pure
//! waste: the pipeline is deterministic, so the second run reproduces the
//! first bit for bit. The sweep drivers hit this constantly — Table 1
//! compiles each workload once per scheduler ablation, the sensitivity
//! sweep re-compiles the unchanged module for every machine variant, and
//! every re-run of a figure driver starts from scratch. [`ArtifactCache`]
//! makes the recompilations free:
//!
//! * **Key.** `combine("overlap-artifact-v3", [module.fingerprint(),
//!   machine.fingerprint(), options.fingerprint()])` — the structural
//!   module fingerprint, so renaming instructions does not shift the key.
//! * **Identity guard.** A hit is only served when the input's *identity*
//!   fingerprint (names, tags, arena order) also matches the entry: the
//!   compiled module embeds input names, and a cache must never change
//!   observable output. Same structure + different names recompiles and
//!   replaces the entry.
//! * **In-memory tier.** A `Mutex`-ed map of `Arc` entries storing the
//!   whole [`Compiled`] bundle; lookups are single-flight — concurrent
//!   `par_map` workers asking for the same key block on a [`Condvar`]
//!   while the first worker compiles, then all share the one result. A
//!   leader that fails or panics wakes the waiters and the next one takes
//!   over.
//! * **Disk tier** (optional, `OVERLAP_CACHE_DIR`). Entries persist as
//!   pretty JSON keyed by the fingerprint (`<key>.json`), written
//!   atomically (temp file + rename). A loaded entry is *untrusted*:
//!   stale keys, corrupt JSON, payload-hash mismatches and verification
//!   failures all degrade to a miss, never an error. The
//!   [`overlap_sim::CostTable`] is not persisted — it is rebuilt from the
//!   decoded module, which is cheap and keeps machine-derived floats out
//!   of the file.
//!
//! `OVERLAP_CACHE=0` disables caching entirely ([`ArtifactCache::from_env`]);
//! `OVERLAP_CACHE_VERIFY=1` recompiles on every hit and asserts the
//! served artifact is bit-identical — the belt-and-braces mode CI uses.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

use overlap_hlo::{HloError, InstrId, Module, ModuleAnalysis};
use overlap_json::{Fingerprint, FromJson, Json, StableHasher, ToJson};
use overlap_mesh::{FaultSpec, Machine};
use overlap_sim::CostTable;

use crate::costgate::GateDecision;
use crate::decompose::DecomposeSummary;
use crate::pipeline::{Compiled, FallbackRecord, OverlapOptions, OverlapPipeline};
use crate::profile::PhaseTimings;

/// Version tag baked into keys and disk entries; bump on any change to
/// the pipeline's semantics or the entry layout to invalidate old files.
/// (v2: fault-aware compiles — the key grows the fault-spec fingerprint
/// and the payload a `fallbacks` list. v3: options carry a per-pattern
/// [`StrategySpec`](crate::StrategySpec) and decompose summaries record
/// chunk widths and fallback reasons.)
const VERSION: &str = "overlap-artifact-v3";

/// The cache key for one fault-free compilation: structural module
/// fingerprint + machine fingerprint + options fingerprint under the
/// version tag. See [`artifact_key_faulted`] for degraded-machine
/// compiles.
#[must_use]
pub fn artifact_key(module: &Module, machine: &Machine, options: &OverlapOptions) -> Fingerprint {
    artifact_key_faulted(module, machine, options, None)
}

/// [`artifact_key`] for a compilation under a fault spec: the spec's
/// fingerprint joins the key material, so artifacts compiled for
/// different degraded machines never collide. `None` — and a spec that
/// injects nothing ([`FaultSpec::is_noop`]) — reduce to the fault-free
/// key, because the pipeline's output is bit-identical in those cases.
#[must_use]
pub fn artifact_key_faulted(
    module: &Module,
    machine: &Machine,
    options: &OverlapOptions,
    faults: Option<&FaultSpec>,
) -> Fingerprint {
    let base = [module.fingerprint(), machine.fingerprint(), options.fingerprint()];
    match faults.filter(|s| !s.is_noop()) {
        None => Fingerprint::combine(VERSION, &base),
        Some(spec) => {
            let [m, ma, o] = base;
            Fingerprint::combine(VERSION, &[m, ma, o, spec.fingerprint()])
        }
    }
}

/// Hit/miss counters for one [`ArtifactCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from the in-memory tier (including waiters that
    /// blocked on an in-flight compile and received its result).
    pub memory_hits: u64,
    /// Lookups served by loading and revalidating a disk entry.
    pub disk_hits: u64,
    /// Lookups served by fetching and revalidating a peer's entry
    /// (fleet cache peering; see
    /// [`ArtifactCache::compile_traced_with_fetch`]).
    pub peer_hits: u64,
    /// Lookups that ran the full pipeline.
    pub misses: u64,
}

/// Where one [`ArtifactCache::compile_traced`] call's artifact came
/// from. The service layer reports this per request so clients can see
/// dedup working; the aggregate counters live in [`CacheStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// Served from the in-memory tier — including waiting out another
    /// thread's in-flight compile of the same key (single-flight).
    MemoryHit,
    /// Loaded and revalidated from the disk tier.
    DiskHit,
    /// Fetched from a fleet peer and revalidated (payload hash +
    /// verify-on-load, exactly like a disk entry).
    PeerHit,
    /// Ran the full pipeline (a disabled cache always lands here).
    Miss,
    /// Ran the full pipeline because the disk entry existed but could
    /// not be *read* (I/O error). Transient by nature — peering layers
    /// may retry this case.
    MissDiskIo,
    /// Ran the full pipeline because the disk entry was *corrupt*
    /// (unparseable, payload-hash mismatch, unverifiable payload).
    /// Permanent for that entry — peering layers must not retry it.
    MissDiskCorrupt,
}

impl CacheOutcome {
    /// Stable wire/log name: `"memory"`, `"disk"`, `"peer"`,
    /// `"compiled"`, `"compiled-disk-io"` or `"compiled-disk-corrupt"`.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            CacheOutcome::MemoryHit => "memory",
            CacheOutcome::DiskHit => "disk",
            CacheOutcome::PeerHit => "peer",
            CacheOutcome::Miss => "compiled",
            CacheOutcome::MissDiskIo => "compiled-disk-io",
            CacheOutcome::MissDiskCorrupt => "compiled-disk-corrupt",
        }
    }

    /// True when the pipeline actually ran (any `Miss*` variant).
    #[must_use]
    pub fn compiled(self) -> bool {
        matches!(
            self,
            CacheOutcome::Miss | CacheOutcome::MissDiskIo | CacheOutcome::MissDiskCorrupt
        )
    }
}

impl CacheStats {
    /// Total lookups served without compiling.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.memory_hits + self.disk_hits + self.peer_hits
    }

    /// Total lookups.
    #[must_use]
    pub fn lookups(&self) -> u64 {
        self.hits() + self.misses
    }

    /// Fraction of lookups served from cache (0 when nothing was looked
    /// up).
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        if self.lookups() == 0 {
            0.0
        } else {
            self.hits() as f64 / self.lookups() as f64
        }
    }
}

/// Everything an entry records about the compile that produced it,
/// besides the payload: the lookup key plus the independent fingerprints
/// a loader revalidates. Kept alongside the in-memory payload so the
/// memory tier can export a full wire entry without a disk tier.
#[derive(Clone)]
struct EntryMeta {
    key: Fingerprint,
    module_fp: Fingerprint,
    machine_fp: Fingerprint,
    options_fp: Fingerprint,
    fault_fp: String,
    input_identity: Fingerprint,
}

impl EntryMeta {
    fn of(
        key: Fingerprint,
        identity: Fingerprint,
        module: &Module,
        machine: &Machine,
        options: &OverlapOptions,
        faults: Option<&FaultSpec>,
    ) -> EntryMeta {
        EntryMeta {
            key,
            module_fp: module.fingerprint(),
            machine_fp: machine.fingerprint(),
            options_fp: options.fingerprint(),
            fault_fp: fault_fp_string(faults),
            input_identity: identity,
        }
    }
}

struct MemEntry {
    meta: EntryMeta,
    compiled: Compiled,
}

enum Slot {
    Ready(Arc<MemEntry>),
    InFlight,
}

/// A two-tier, single-flight cache of [`Compiled`] bundles. See the
/// module docs for the design; the cheap entry point is
/// [`OverlapPipeline::compile_cached`].
pub struct ArtifactCache {
    slots: Mutex<HashMap<u128, Slot>>,
    ready: Condvar,
    disk_dir: Option<PathBuf>,
    enabled: bool,
    verify_hits: bool,
    memory_hits: AtomicU64,
    disk_hits: AtomicU64,
    peer_hits: AtomicU64,
    misses: AtomicU64,
}

impl std::fmt::Debug for ArtifactCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ArtifactCache")
            .field("enabled", &self.enabled)
            .field("disk_dir", &self.disk_dir)
            .field("verify_hits", &self.verify_hits)
            .field("stats", &self.stats())
            .finish()
    }
}

impl Default for ArtifactCache {
    fn default() -> Self {
        Self::in_memory()
    }
}

impl ArtifactCache {
    fn with(enabled: bool, disk_dir: Option<PathBuf>) -> Self {
        ArtifactCache {
            slots: Mutex::new(HashMap::new()),
            ready: Condvar::new(),
            disk_dir,
            enabled,
            verify_hits: false,
            memory_hits: AtomicU64::new(0),
            disk_hits: AtomicU64::new(0),
            peer_hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// A process-local cache: in-memory tier only.
    #[must_use]
    pub fn in_memory() -> Self {
        Self::with(true, None)
    }

    /// A cache that also persists entries under `dir` (created on first
    /// store), surviving across process runs.
    #[must_use]
    pub fn with_disk_dir(dir: impl Into<PathBuf>) -> Self {
        Self::with(true, Some(dir.into()))
    }

    /// A pass-through cache: every compile runs the pipeline.
    #[must_use]
    pub fn disabled() -> Self {
        Self::with(false, None)
    }

    /// Builds a cache from the environment: `OVERLAP_CACHE=0` disables
    /// caching, a non-empty `OVERLAP_CACHE_DIR` adds the disk tier, and
    /// `OVERLAP_CACHE_VERIFY=1` recompiles on every hit to assert the
    /// served artifact is bit-identical to a cold compile.
    #[must_use]
    pub fn from_env() -> Self {
        let disabled = std::env::var("OVERLAP_CACHE").is_ok_and(|v| v == "0");
        let dir = std::env::var("OVERLAP_CACHE_DIR").ok().filter(|d| !d.is_empty());
        let mut cache = match (disabled, dir) {
            (true, _) => Self::disabled(),
            (false, Some(d)) => Self::with_disk_dir(d),
            (false, None) => Self::in_memory(),
        };
        cache.verify_hits = std::env::var("OVERLAP_CACHE_VERIFY").is_ok_and(|v| v == "1");
        cache
    }

    /// Forces every future hit to recompile and compare (bit-identical
    /// schedules, summaries, decisions and module identity), panicking on
    /// divergence. Expensive; for tests and CI.
    pub fn set_verify_hits(&mut self, verify: bool) {
        self.verify_hits = verify;
    }

    /// Whether lookups can hit at all (false only for
    /// [`ArtifactCache::disabled`]).
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// The disk-tier directory, if configured.
    #[must_use]
    pub fn disk_dir(&self) -> Option<&Path> {
        self.disk_dir.as_deref()
    }

    /// Counters since construction.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            memory_hits: self.memory_hits.load(Ordering::Relaxed),
            disk_hits: self.disk_hits.load(Ordering::Relaxed),
            peer_hits: self.peer_hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }

    /// Empties the in-memory tier (disk entries stay). The benchmark
    /// harness uses this to time a "cold except disk" pass.
    pub fn clear_memory(&self) {
        self.slots.lock().expect("cache lock").clear();
        self.ready.notify_all();
    }

    /// Compiles `module` for `machine` with `pipeline`'s options, serving
    /// from cache when possible. Exactly [`OverlapPipeline::run`]
    /// observable behavior: a hit returns a bundle bit-identical to what
    /// a cold compile would produce (guarded by the identity
    /// fingerprint), except that [`Compiled::timings`] describe the run
    /// that originally produced the artifact.
    ///
    /// # Errors
    ///
    /// Returns [`HloError`] only for pipeline failures; cache-layer
    /// problems (unreadable, corrupt or stale disk entries) silently
    /// degrade to a miss.
    ///
    /// # Panics
    ///
    /// Panics if a hit diverges from a cold compile while
    /// [`ArtifactCache::set_verify_hits`] is on, or if the cache lock is
    /// poisoned by a panic on another thread.
    pub fn compile(
        &self,
        pipeline: &OverlapPipeline,
        module: &Module,
        machine: &Machine,
    ) -> Result<Compiled, HloError> {
        self.compile_traced(pipeline, module, machine).map(|(compiled, _)| compiled)
    }

    /// [`ArtifactCache::compile`] that also reports where the artifact
    /// came from — the per-call view of the aggregate [`CacheStats`].
    ///
    /// # Errors
    ///
    /// Exactly as [`ArtifactCache::compile`].
    ///
    /// # Panics
    ///
    /// Exactly as [`ArtifactCache::compile`].
    pub fn compile_traced(
        &self,
        pipeline: &OverlapPipeline,
        module: &Module,
        machine: &Machine,
    ) -> Result<(Compiled, CacheOutcome), HloError> {
        self.compile_traced_with_fetch(pipeline, module, machine, &mut || None)
    }

    /// [`ArtifactCache::compile_traced`] with a peer-fetch hook: when
    /// both local tiers miss, `fetch` is asked for candidate wire
    /// entries (the versioned JSON produced by [`ArtifactCache::
    /// export_entry`] on another node) until it returns `None` or one
    /// candidate survives the full disk-tier revalidation (fingerprint
    /// metadata, payload hash, verify-on-load, cost-table rebuild). A
    /// candidate that fails validation is rejected with a warning and
    /// the hook is asked for the *next* one — a corrupt peer entry is
    /// never retried, only skipped. Accepted entries install into the
    /// memory tier, persist to the disk tier (re-sharing), count as
    /// [`CacheStats::peer_hits`] and report [`CacheOutcome::PeerHit`].
    ///
    /// # Errors
    ///
    /// Exactly as [`ArtifactCache::compile`].
    ///
    /// # Panics
    ///
    /// Exactly as [`ArtifactCache::compile`].
    pub fn compile_traced_with_fetch(
        &self,
        pipeline: &OverlapPipeline,
        module: &Module,
        machine: &Machine,
        fetch: &mut dyn FnMut() -> Option<Json>,
    ) -> Result<(Compiled, CacheOutcome), HloError> {
        if !self.enabled {
            return pipeline.run(module, machine).map(|c| (c, CacheOutcome::Miss));
        }
        let faults = pipeline.effective_faults();
        let key = artifact_key_faulted(module, machine, pipeline.options(), faults);
        let identity = module.identity_fingerprint();

        // Fast path + single-flight election under one lock.
        {
            let mut slots = self.slots.lock().expect("cache lock");
            loop {
                match slots.get(&key.as_u128()) {
                    Some(Slot::Ready(e)) if e.meta.input_identity == identity => {
                        // Take the Arc, not the payload: cloning a large
                        // `Compiled` under the lock would serialize every
                        // concurrent hit.
                        let entry = Arc::clone(e);
                        drop(slots);
                        self.memory_hits.fetch_add(1, Ordering::Relaxed);
                        let out = entry.compiled.clone();
                        self.maybe_verify_hit(pipeline, module, machine, &out);
                        return Ok((out, CacheOutcome::MemoryHit));
                    }
                    // Identity mismatch (same structure, renamed input) or
                    // empty slot: this thread becomes the leader.
                    Some(Slot::Ready(_)) | None => {
                        slots.insert(key.as_u128(), Slot::InFlight);
                        break;
                    }
                    Some(Slot::InFlight) => {
                        slots = self.ready.wait(slots).expect("cache lock");
                    }
                }
            }
        }

        // Leader: on any exit without `install` (error or panic inside the
        // pipeline), the guard clears the in-flight marker and wakes the
        // waiters so one of them can take over.
        let flight = Flight { cache: self, key: key.as_u128(), installed: false };
        let meta = EntryMeta::of(key, identity, module, machine, pipeline.options(), faults);

        let disk = self.load_disk(&meta, machine);
        if let DiskLoad::Hit(compiled) = disk {
            let compiled = *compiled;
            self.disk_hits.fetch_add(1, Ordering::Relaxed);
            flight.install(MemEntry { meta, compiled: compiled.clone() });
            self.maybe_verify_hit(pipeline, module, machine, &compiled);
            return Ok((compiled, CacheOutcome::DiskHit));
        }

        // Peer tier: every candidate entry is as untrusted as a disk
        // file and goes through the identical revalidation.
        while let Some(candidate) = fetch() {
            match decode_entry(&candidate, &meta, machine) {
                EntryDecode::Hit(compiled) => {
                    let compiled = *compiled;
                    self.peer_hits.fetch_add(1, Ordering::Relaxed);
                    self.store_disk(&meta, &compiled);
                    flight.install(MemEntry { meta, compiled: compiled.clone() });
                    self.maybe_verify_hit(pipeline, module, machine, &compiled);
                    return Ok((compiled, CacheOutcome::PeerHit));
                }
                EntryDecode::Stale => {
                    eprintln!(
                        "warning: overlap cache: peer entry for {key} is stale; trying next peer"
                    );
                }
                EntryDecode::Corrupt(what) => {
                    eprintln!(
                        "warning: overlap cache: peer entry for {key} is corrupt ({what}); \
                         trying next peer"
                    );
                }
            }
        }

        let compiled = pipeline.run(module, machine)?;
        self.misses.fetch_add(1, Ordering::Relaxed);
        self.store_disk(&meta, &compiled);
        flight.install(MemEntry { meta, compiled: compiled.clone() });
        let outcome = match disk {
            DiskLoad::Hit(_) => unreachable!("disk hits return above"),
            DiskLoad::Absent => CacheOutcome::Miss,
            DiskLoad::Io => CacheOutcome::MissDiskIo,
            DiskLoad::Corrupt => CacheOutcome::MissDiskCorrupt,
        };
        Ok((compiled, outcome))
    }

    fn maybe_verify_hit(
        &self,
        pipeline: &OverlapPipeline,
        module: &Module,
        machine: &Machine,
        served: &Compiled,
    ) {
        if !self.verify_hits {
            return;
        }
        let cold = pipeline.run(module, machine).expect("verify-hit recompile failed");
        assert_eq!(
            cold.module.identity_fingerprint(),
            served.module.identity_fingerprint(),
            "cache hit served a different module than a cold compile"
        );
        assert_eq!(cold.order, served.order, "cache hit served a different schedule");
        assert_eq!(cold.summaries, served.summaries, "cache hit served different summaries");
        assert_eq!(cold.decisions, served.decisions, "cache hit served different decisions");
        assert_eq!(cold.fallbacks, served.fallbacks, "cache hit served different fallbacks");
    }

    fn entry_path(&self, key: Fingerprint) -> Option<PathBuf> {
        self.disk_dir.as_ref().map(|d| d.join(format!("{key}.json")))
    }

    /// Exports the full versioned wire entry for `key` — the same JSON
    /// layout the disk tier persists — so a fleet peer can transfer it
    /// and revalidate it independently. Served from the memory tier
    /// (re-encoded from the live [`Compiled`]) or, failing that, read
    /// back from the disk tier. `None` when this cache holds no entry
    /// for `key`; the *importer* performs all validation, so a corrupt
    /// local disk file is shipped as-is and rejected on the other end.
    #[must_use]
    pub fn export_entry(&self, key: Fingerprint) -> Option<Json> {
        let mem = {
            let slots = self.slots.lock().expect("cache lock");
            match slots.get(&key.as_u128()) {
                Some(Slot::Ready(e)) => Some(Arc::clone(e)),
                _ => None,
            }
        };
        if let Some(e) = mem {
            return Some(encode_entry(&e.meta, &e.compiled));
        }
        let path = self.entry_path(key)?;
        let text = std::fs::read_to_string(path).ok()?;
        let v = Json::parse(&text).ok()?;
        // Cheap sanity only — don't serve a file that is for another key
        // outright; deeper validation is the importer's job.
        (v["key"].as_str() == Some(key.to_string().as_str())).then_some(v)
    }

    /// Loads, revalidates and rehydrates a disk entry. Any failure is a
    /// miss, but the causes are distinguished (and surface in
    /// [`CacheOutcome`]): a missing file is the ordinary cold-cache case
    /// and stays silent, an unreadable file (I/O error other than
    /// not-found) and a corrupt entry (unparseable JSON, payload-hash
    /// mismatch, undecodable or unverifiable payload) each warn once on
    /// stderr so a sick disk or bit rot is visible instead of
    /// masquerading as an eternal miss. Stale-but-well-formed metadata
    /// (old version, other fingerprints) is expected churn and stays
    /// silent too.
    fn load_disk(&self, meta: &EntryMeta, machine: &Machine) -> DiskLoad {
        let Some(path) = self.entry_path(meta.key) else { return DiskLoad::Absent };
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return DiskLoad::Absent,
            Err(e) => {
                eprintln!(
                    "warning: overlap cache: cannot read {}: {e} (treating as miss)",
                    path.display()
                );
                return DiskLoad::Io;
            }
        };
        let Ok(v) = Json::parse(&text) else {
            eprintln!(
                "warning: overlap cache: corrupt entry {} (unparseable JSON); recompiling",
                path.display()
            );
            return DiskLoad::Corrupt;
        };
        match decode_entry(&v, meta, machine) {
            EntryDecode::Hit(compiled) => DiskLoad::Hit(compiled),
            EntryDecode::Stale => DiskLoad::Absent,
            EntryDecode::Corrupt(what) => {
                eprintln!(
                    "warning: overlap cache: corrupt entry {} ({what}); recompiling",
                    path.display()
                );
                DiskLoad::Corrupt
            }
        }
    }

    /// Persists an entry atomically (temp file + rename). I/O failures
    /// are swallowed: a cache that cannot write is slow, not broken.
    fn store_disk(&self, meta: &EntryMeta, compiled: &Compiled) {
        let Some(path) = self.entry_path(meta.key) else { return };
        let Some(dir) = self.disk_dir.as_ref() else { return };
        let entry = encode_entry(meta, compiled);
        if std::fs::create_dir_all(dir).is_err() {
            return;
        }
        let tmp = dir.join(format!(".{}.{}.tmp", meta.key, std::process::id()));
        if std::fs::write(&tmp, entry.to_pretty()).is_ok()
            && std::fs::rename(&tmp, &path).is_err()
        {
            let _ = std::fs::remove_file(&tmp);
        }
    }
}

/// How one disk-tier lookup resolved; the miss cases carry *why* so
/// [`CacheOutcome`] can report provenance a peering layer acts on
/// (retry I/O, never retry corruption).
enum DiskLoad {
    /// Revalidated entry, ready to serve.
    Hit(Box<Compiled>),
    /// No entry (missing file, no disk tier, or stale metadata).
    Absent,
    /// Entry exists but could not be read.
    Io,
    /// Entry exists but failed validation.
    Corrupt,
}

/// How one untrusted wire/disk entry decoded against the expected
/// metadata.
enum EntryDecode {
    /// Fully revalidated and rehydrated.
    Hit(Box<Compiled>),
    /// Well-formed but recorded for different inputs (or an older
    /// version) — expected churn, not damage.
    Stale,
    /// Structurally damaged: missing or hash-mismatched payload,
    /// undecodable fields, or a payload that fails verification.
    Corrupt(&'static str),
}

/// The stable string form of a fault-spec fingerprint in entry
/// metadata; `"none"` for fault-free compiles.
fn fault_fp_string(faults: Option<&FaultSpec>) -> String {
    match faults.filter(|s| !s.is_noop()) {
        Some(spec) => spec.fingerprint().to_string(),
        None => "none".to_string(),
    }
}

/// Encodes the canonical wire/disk entry: metadata block + payload +
/// payload hash. [`decode_entry`] is its exact inverse (plus
/// validation).
fn encode_entry(meta: &EntryMeta, compiled: &Compiled) -> Json {
    let payload = Json::obj()
        .with("module", compiled.module.to_json())
        .with("order", compiled.order.to_json())
        .with("summaries", compiled.summaries.to_json())
        .with("decisions", compiled.decisions.to_json())
        .with("fallbacks", compiled.fallbacks.to_json())
        .with("timings", compiled.timings.to_json());
    Json::obj()
        .with("version", VERSION)
        .with("key", meta.key.to_string())
        .with("module_fingerprint", meta.module_fp.to_string())
        .with("machine_fingerprint", meta.machine_fp.to_string())
        .with("options_fingerprint", meta.options_fp.to_string())
        .with("fault_fingerprint", meta.fault_fp.clone())
        .with("input_identity", meta.input_identity.to_string())
        .with("payload_fingerprint", payload_fingerprint(&payload).to_string())
        .with("payload", payload)
}

/// Validates and rehydrates one untrusted entry (disk file or peer
/// transfer) against the metadata this lookup derived independently.
/// The shared core of the disk tier and the fleet's cache peering: an
/// entry is served only if every recorded fingerprint matches, the
/// payload hash survives a re-encode, the decoded module verifies, and
/// its cost table rebuilds.
fn decode_entry(v: &Json, meta: &EntryMeta, machine: &Machine) -> EntryDecode {
    // Stale metadata → silent miss. Every fingerprint recorded at
    // store time must match what this lookup derived independently.
    let hex = |k: &str| Fingerprint::from_hex(v[k].as_str()?);
    if v["version"].as_str() != Some(VERSION)
        || hex("key") != Some(meta.key)
        || hex("module_fingerprint") != Some(meta.module_fp)
        || hex("machine_fingerprint") != Some(meta.machine_fp)
        || hex("options_fingerprint") != Some(meta.options_fp)
        || v["fault_fingerprint"].as_str() != Some(meta.fault_fp.as_str())
        || hex("input_identity") != Some(meta.input_identity)
    {
        return EntryDecode::Stale;
    }

    // The payload hash covers the canonical encoding of everything
    // below; re-encoding the decoded payload and comparing detects
    // any edit or bit rot that survived parsing.
    let Some(payload) = v.get("payload") else {
        return EntryDecode::Corrupt("missing payload");
    };
    if hex("payload_fingerprint") != Some(payload_fingerprint(payload)) {
        return EntryDecode::Corrupt("payload hash mismatch");
    }

    let decoded = (|| -> Result<_, String> {
        let module = Module::from_json(payload.get("module").ok_or("no module")?)?;
        let order = Vec::<InstrId>::from_json(payload.get("order").ok_or("no order")?)?;
        let summaries = Vec::<DecomposeSummary>::from_json(
            payload.get("summaries").ok_or("no summaries")?,
        )?;
        let decisions = Vec::<GateDecision>::from_json(
            payload.get("decisions").ok_or("no decisions")?,
        )?;
        let fallbacks = Vec::<FallbackRecord>::from_json(
            payload.get("fallbacks").ok_or("no fallbacks")?,
        )?;
        let timings = PhaseTimings::from_json(payload.get("timings").ok_or("no timings")?)?;
        Ok((module, order, summaries, decisions, fallbacks, timings))
    })();
    let Ok((module, order, summaries, decisions, fallbacks, timings)) = decoded else {
        return EntryDecode::Corrupt("undecodable payload");
    };

    // Decoded modules are untrusted until verified; the cost table is
    // rebuilt (deterministically) rather than persisted.
    if module.verify().is_err() {
        return EntryDecode::Corrupt("payload module fails verification");
    }
    let mut analysis = ModuleAnalysis::of(&module);
    analysis.mark_verified(&module);
    let Ok(cost_table) = CostTable::with_analysis(&module, &analysis, machine) else {
        return EntryDecode::Corrupt("payload module has no computable costs");
    };
    EntryDecode::Hit(Box::new(Compiled {
        module,
        order,
        summaries,
        decisions,
        fallbacks,
        cost_table,
        timings,
    }))
}

/// Hash of a payload's canonical (compact) encoding.
fn payload_fingerprint(payload: &Json) -> Fingerprint {
    let mut h = StableHasher::new("overlap-artifact-payload-v1");
    h.write_str(&payload.to_string());
    h.finish()
}

/// Clears the in-flight marker on failure; see [`ArtifactCache::compile`].
struct Flight<'c> {
    cache: &'c ArtifactCache,
    key: u128,
    installed: bool,
}

impl Flight<'_> {
    fn install(mut self, entry: MemEntry) {
        let mut slots = self.cache.slots.lock().expect("cache lock");
        slots.insert(self.key, Slot::Ready(Arc::new(entry)));
        drop(slots);
        self.installed = true;
        self.cache.ready.notify_all();
    }
}

impl Drop for Flight<'_> {
    fn drop(&mut self) {
        if self.installed {
            return;
        }
        let mut slots = self.cache.slots.lock().expect("cache lock");
        if matches!(slots.get(&self.key), Some(Slot::InFlight)) {
            slots.remove(&self.key);
        }
        drop(slots);
        self.cache.ready.notify_all();
    }
}

impl OverlapPipeline {
    /// [`OverlapPipeline::run`] through `cache`: a repeated compilation of
    /// the same (module, machine, options) triple — within a sweep or
    /// across process runs via the disk tier — is served from cache,
    /// bit-identical to the cold result.
    ///
    /// # Errors
    ///
    /// Returns [`HloError`] if the input or the compiled module fails
    /// verification (cache problems degrade to a miss, never an error).
    pub fn compile_cached(
        &self,
        module: &Module,
        machine: &Machine,
        cache: &ArtifactCache,
    ) -> Result<Compiled, HloError> {
        cache.compile(self, module, machine)
    }
}

#[cfg(test)]
mod tests {
    use overlap_hlo::{Builder, DType, DotDims, ReplicaGroups, Shape};
    use overlap_mesh::DeviceMesh;
    use overlap_sim::simulate_order_with;

    use super::*;

    fn layer(n: usize, name: &str) -> Module {
        let mut b = Builder::new(name, n);
        let x = b.parameter(Shape::new(DType::F32, vec![16384, 2048]), "x");
        let w = b.parameter(Shape::new(DType::F32, vec![2048, 16384 / n]), "w");
        let wg = b.all_gather(w, 1, ReplicaGroups::full(n), "wg");
        let y = b.einsum(x, wg, DotDims::matmul(), "y");
        b.build(vec![y])
    }

    fn assert_bit_identical(a: &Compiled, b: &Compiled) {
        assert_eq!(a.module.identity_fingerprint(), b.module.identity_fingerprint());
        assert_eq!(a.order, b.order);
        assert_eq!(a.summaries, b.summaries);
        assert_eq!(a.decisions, b.decisions);
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .expect("clock")
            .as_nanos();
        let dir = std::env::temp_dir().join(format!(
            "overlap-cache-test-{tag}-{}-{nanos}",
            std::process::id()
        ));
        std::fs::create_dir_all(&dir).expect("create temp dir");
        dir
    }

    #[test]
    fn memory_hit_is_bit_identical_to_cold() {
        let n = 8;
        let m = layer(n, "layer");
        let machine = Machine::with_mesh(DeviceMesh::ring(n));
        let pipeline = OverlapPipeline::new(OverlapOptions::paper_default());
        let cold = pipeline.run(&m, &machine).unwrap();

        let cache = ArtifactCache::in_memory();
        let first = pipeline.compile_cached(&m, &machine, &cache).unwrap();
        let second = pipeline.compile_cached(&m, &machine, &cache).unwrap();
        assert_eq!(
            cache.stats(),
            CacheStats { memory_hits: 1, disk_hits: 0, peer_hits: 0, misses: 1 }
        );
        assert_bit_identical(&cold, &first);
        assert_bit_identical(&cold, &second);

        // The rehydrated bundle simulates to the same bits.
        let a = simulate_order_with(&cold.cost_table, &cold.module, &machine, &cold.order)
            .unwrap();
        let b = simulate_order_with(&second.cost_table, &second.module, &machine, &second.order)
            .unwrap();
        assert_eq!(a.makespan().to_bits(), b.makespan().to_bits());
    }

    #[test]
    fn renamed_input_recompiles_despite_equal_structural_key() {
        let n = 4;
        let m1 = layer(n, "alpha");
        let m2 = layer(n, "beta");
        let machine = Machine::with_mesh(DeviceMesh::ring(n));
        let pipeline = OverlapPipeline::new(OverlapOptions::paper_default());
        assert_eq!(
            artifact_key(&m1, &machine, pipeline.options()),
            artifact_key(&m2, &machine, pipeline.options()),
            "module names must not shift the structural key"
        );

        let cache = ArtifactCache::in_memory();
        let c1 = pipeline.compile_cached(&m1, &machine, &cache).unwrap();
        let c2 = pipeline.compile_cached(&m2, &machine, &cache).unwrap();
        assert_eq!(cache.stats().misses, 2, "identity guard must force a recompile");
        assert_eq!(c1.module.name(), "alpha");
        assert_eq!(c2.module.name(), "beta");
        assert_eq!(c1.order, c2.order);
    }

    #[test]
    fn options_and_machine_changes_miss() {
        let n = 4;
        let m = layer(n, "layer");
        let machine = Machine::with_mesh(DeviceMesh::ring(n));
        let cache = ArtifactCache::in_memory();

        let defaults = OverlapPipeline::new(OverlapOptions::paper_default());
        defaults.compile_cached(&m, &machine, &cache).unwrap();
        let no_gate = OverlapPipeline::new(OverlapOptions {
            disable_cost_gate: true,
            ..OverlapOptions::paper_default()
        });
        no_gate.compile_cached(&m, &machine, &cache).unwrap();
        let other_machine = Machine::tpu_v4_like(n);
        defaults.compile_cached(&m, &other_machine, &cache).unwrap();
        assert_eq!(cache.stats(), CacheStats { memory_hits: 0, disk_hits: 0, peer_hits: 0, misses: 3 });
    }

    #[test]
    fn single_flight_compiles_once_across_threads() {
        let n = 8;
        let m = layer(n, "layer");
        let machine = Machine::with_mesh(DeviceMesh::ring(n));
        let pipeline = OverlapPipeline::new(OverlapOptions::paper_default());
        let cache = ArtifactCache::in_memory();
        let cold = pipeline.run(&m, &machine).unwrap();

        std::thread::scope(|s| {
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    s.spawn(|| pipeline.compile_cached(&m, &machine, &cache).unwrap())
                })
                .collect();
            for h in handles {
                assert_bit_identical(&cold, &h.join().unwrap());
            }
        });
        let stats = cache.stats();
        assert_eq!(stats.misses, 1, "single flight must compile exactly once");
        assert_eq!(stats.memory_hits, 7);
        assert!((stats.hit_rate() - 7.0 / 8.0).abs() < 1e-12);
    }

    #[test]
    fn disk_tier_survives_process_boundaries_and_rejects_corruption() {
        let n = 8;
        let m = layer(n, "layer");
        let machine = Machine::with_mesh(DeviceMesh::ring(n));
        let pipeline = OverlapPipeline::new(OverlapOptions::paper_default());
        let dir = temp_dir("disk");

        // "Process 1": cold compile, entry persisted.
        let cache1 = ArtifactCache::with_disk_dir(&dir);
        let cold = pipeline.compile_cached(&m, &machine, &cache1).unwrap();
        assert_eq!(cache1.stats().misses, 1);
        let key = artifact_key(&m, &machine, pipeline.options());
        let path = dir.join(format!("{key}.json"));
        assert!(path.exists(), "entry file must exist at the fingerprint-keyed path");

        // "Process 2": fresh cache, same dir — disk hit, bit-identical,
        // and the rehydrated cost table simulates to the same bits.
        let cache2 = ArtifactCache::with_disk_dir(&dir);
        let warm = pipeline.compile_cached(&m, &machine, &cache2).unwrap();
        assert_eq!(cache2.stats(), CacheStats { memory_hits: 0, disk_hits: 1, peer_hits: 0, misses: 0 });
        assert_bit_identical(&cold, &warm);
        let a = simulate_order_with(&cold.cost_table, &cold.module, &machine, &cold.order)
            .unwrap();
        let b = simulate_order_with(&warm.cost_table, &warm.module, &machine, &warm.order)
            .unwrap();
        assert_eq!(a.makespan().to_bits(), b.makespan().to_bits());

        // Tamper with the payload (drop one order element): the payload
        // hash no longer matches → miss, then the entry is rewritten.
        let text = std::fs::read_to_string(&path).unwrap();
        let mut v = Json::parse(&text).unwrap();
        let order = v["payload"]["order"].as_array().unwrap().to_vec();
        v["payload"]["order"] = Json::Arr(order[..order.len() - 1].to_vec());
        std::fs::write(&path, v.to_string()).unwrap();
        let cache3 = ArtifactCache::with_disk_dir(&dir);
        let recompiled = pipeline.compile_cached(&m, &machine, &cache3).unwrap();
        assert_eq!(cache3.stats(), CacheStats { memory_hits: 0, disk_hits: 0, peer_hits: 0, misses: 1 });
        assert_bit_identical(&cold, &recompiled);

        // Unparseable file → miss, not an error.
        std::fs::write(&path, "{ not json").unwrap();
        let cache4 = ArtifactCache::with_disk_dir(&dir);
        pipeline.compile_cached(&m, &machine, &cache4).unwrap();
        assert_eq!(cache4.stats().misses, 1);

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stale_entries_from_other_inputs_miss() {
        let n = 4;
        let m = layer(n, "layer");
        let machine = Machine::with_mesh(DeviceMesh::ring(n));
        let pipeline = OverlapPipeline::new(OverlapOptions::paper_default());
        let dir = temp_dir("stale");

        let cache = ArtifactCache::with_disk_dir(&dir);
        pipeline.compile_cached(&m, &machine, &cache).unwrap();
        let key = artifact_key(&m, &machine, pipeline.options());
        let path = dir.join(format!("{key}.json"));

        // Simulate a stale entry: same file name, but recorded for other
        // options (as if the pipeline semantics changed under the key).
        let text = std::fs::read_to_string(&path).unwrap();
        let mut v = Json::parse(&text).unwrap();
        v["options_fingerprint"] = Json::from(Fingerprint::neutral().to_string());
        std::fs::write(&path, v.to_string()).unwrap();

        let fresh = ArtifactCache::with_disk_dir(&dir);
        pipeline.compile_cached(&m, &machine, &fresh).unwrap();
        assert_eq!(fresh.stats(), CacheStats { memory_hits: 0, disk_hits: 0, peer_hits: 0, misses: 1 });

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn disabled_cache_passes_through() {
        let n = 4;
        let m = layer(n, "layer");
        let machine = Machine::with_mesh(DeviceMesh::ring(n));
        let pipeline = OverlapPipeline::new(OverlapOptions::paper_default());
        let cache = ArtifactCache::disabled();
        pipeline.compile_cached(&m, &machine, &cache).unwrap();
        pipeline.compile_cached(&m, &machine, &cache).unwrap();
        assert_eq!(cache.stats(), CacheStats::default());
        assert!(!cache.is_enabled());
    }

    #[test]
    fn verify_hits_accepts_honest_entries() {
        let n = 4;
        let m = layer(n, "layer");
        let machine = Machine::with_mesh(DeviceMesh::ring(n));
        let pipeline = OverlapPipeline::new(OverlapOptions::paper_default());
        let mut cache = ArtifactCache::in_memory();
        cache.set_verify_hits(true);
        pipeline.compile_cached(&m, &machine, &cache).unwrap();
        pipeline.compile_cached(&m, &machine, &cache).unwrap();
        assert_eq!(cache.stats().memory_hits, 1);
    }

    #[test]
    fn fault_specs_key_and_cache_separately() {
        let n = 8;
        let m = layer(n, "layer");
        let machine = Machine::with_mesh(DeviceMesh::ring(n));
        let cache = ArtifactCache::in_memory();
        let plain = OverlapPipeline::new(OverlapOptions::paper_default());
        let spec = overlap_mesh::FaultSpec::seeded(7).with_straggler(0, 4.0);
        let faulted = plain.clone().with_faults(spec.clone());

        plain.compile_cached(&m, &machine, &cache).unwrap();
        faulted.compile_cached(&m, &machine, &cache).unwrap();
        assert_eq!(cache.stats().misses, 2, "fault spec must take its own slot");

        // A no-op spec compiles bit-identically, so it shares the
        // fault-free artifact (memory hit, not a third miss).
        let noop = plain.clone().with_faults(overlap_mesh::FaultSpec::seeded(9));
        noop.compile_cached(&m, &machine, &cache).unwrap();
        assert_eq!(cache.stats().memory_hits, 1);
        assert_eq!(cache.stats().misses, 2);

        let base = artifact_key(&m, &machine, plain.options());
        assert_eq!(
            artifact_key_faulted(
                &m,
                &machine,
                plain.options(),
                Some(&overlap_mesh::FaultSpec::default())
            ),
            base,
            "no-op specs reduce to the fault-free key"
        );
        assert_ne!(
            artifact_key_faulted(&m, &machine, plain.options(), Some(&spec)),
            base
        );
    }

    #[test]
    fn faulted_disk_entries_roundtrip_with_fallbacks() {
        let n = 8;
        let m = layer(n, "layer");
        let machine = Machine::with_mesh(DeviceMesh::ring(n));
        let dir = temp_dir("faults");
        // Heavy jitter forces a per-pattern fallback; the record must
        // survive the disk roundtrip.
        let spec = overlap_mesh::FaultSpec::seeded(3).with_jitter(10e-3);
        let pipeline =
            OverlapPipeline::new(OverlapOptions::paper_default()).with_faults(spec);

        let cache1 = ArtifactCache::with_disk_dir(&dir);
        let cold = pipeline.compile_cached(&m, &machine, &cache1).unwrap();
        assert_eq!(cold.fallbacks.len(), 1);

        let cache2 = ArtifactCache::with_disk_dir(&dir);
        let warm = pipeline.compile_cached(&m, &machine, &cache2).unwrap();
        assert_eq!(cache2.stats(), CacheStats { memory_hits: 0, disk_hits: 1, peer_hits: 0, misses: 0 });
        assert_bit_identical(&cold, &warm);
        assert_eq!(cold.fallbacks, warm.fallbacks);

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn exported_entries_import_as_peer_hits_bit_identically() {
        let n = 8;
        let m = layer(n, "layer");
        let machine = Machine::with_mesh(DeviceMesh::ring(n));
        let pipeline = OverlapPipeline::new(OverlapOptions::paper_default());

        // "Owner node": memory tier only — export must work without disk.
        let owner = ArtifactCache::in_memory();
        let cold = pipeline.compile_cached(&m, &machine, &owner).unwrap();
        let key = artifact_key(&m, &machine, pipeline.options());
        let entry = owner.export_entry(key).expect("memory tier must export");
        assert!(owner.export_entry(Fingerprint::neutral()).is_none());

        // "Non-owner node": miss, fetch the owner's entry, revalidate,
        // serve as a peer hit; a second lookup is a plain memory hit.
        let fetcher = ArtifactCache::in_memory();
        let mut feed = vec![entry.clone()];
        let (fetched, outcome) = fetcher
            .compile_traced_with_fetch(&pipeline, &m, &machine, &mut || feed.pop())
            .unwrap();
        assert_eq!(outcome, CacheOutcome::PeerHit);
        assert_eq!(outcome.as_str(), "peer");
        assert!(!outcome.compiled());
        assert_bit_identical(&cold, &fetched);
        assert_eq!(
            fetcher.stats(),
            CacheStats { memory_hits: 0, disk_hits: 0, peer_hits: 1, misses: 0 }
        );
        let (_, warm) = fetcher.compile_traced(&pipeline, &m, &machine).unwrap();
        assert_eq!(warm, CacheOutcome::MemoryHit);

        // A disk-tier node exports the entry it persisted (memory tier
        // cleared, so this is the file read-back path), and the export
        // revalidates end to end on yet another node. Payload hashes are
        // not compared across exports: timings record each producing
        // run's wall clock, so two cold compiles encode different bytes.
        let dir = temp_dir("export");
        let disky = ArtifactCache::with_disk_dir(&dir);
        pipeline.compile_cached(&m, &machine, &disky).unwrap();
        disky.clear_memory();
        let from_disk = disky.export_entry(key).expect("disk tier must export");
        assert_eq!(from_disk["key"], entry["key"]);
        let mut feed = vec![from_disk];
        let another = ArtifactCache::in_memory();
        let (_, outcome) = another
            .compile_traced_with_fetch(&pipeline, &m, &machine, &mut || feed.pop())
            .unwrap();
        assert_eq!(outcome, CacheOutcome::PeerHit);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_peer_entries_are_skipped_never_served() {
        let n = 8;
        let m = layer(n, "layer");
        let machine = Machine::with_mesh(DeviceMesh::ring(n));
        let pipeline = OverlapPipeline::new(OverlapOptions::paper_default());
        let owner = ArtifactCache::in_memory();
        let cold = pipeline.compile_cached(&m, &machine, &owner).unwrap();
        let key = artifact_key(&m, &machine, pipeline.options());
        let good = owner.export_entry(key).unwrap();

        // Candidate 1: payload tampered (hash mismatch). Candidate 2:
        // stale (foreign options fingerprint). Candidate 3: good. The
        // fetch hook is drained in order; only the good one serves.
        let mut tampered = good.clone();
        let order = tampered["payload"]["order"].as_array().unwrap().to_vec();
        tampered["payload"]["order"] = Json::Arr(order[..order.len() - 1].to_vec());
        let mut stale = good.clone();
        stale["options_fingerprint"] = Json::from(Fingerprint::neutral().to_string());

        let fetcher = ArtifactCache::in_memory();
        let mut feed = vec![good, stale, tampered]; // popped back to front
        let calls = std::cell::Cell::new(0u32);
        let (served, outcome) = fetcher
            .compile_traced_with_fetch(&pipeline, &m, &machine, &mut || {
                calls.set(calls.get() + 1);
                feed.pop()
            })
            .unwrap();
        assert_eq!(outcome, CacheOutcome::PeerHit);
        assert_eq!(calls.get(), 3, "both bad candidates must be skipped");
        assert_bit_identical(&cold, &served);

        // All candidates bad → local compile, counted as a plain miss.
        let mut rotten = vec![fetcher.export_entry(key).unwrap()];
        rotten[0]["payload_fingerprint"] = Json::from(Fingerprint::neutral().to_string());
        let lonely = ArtifactCache::in_memory();
        let (_, outcome) = lonely
            .compile_traced_with_fetch(&pipeline, &m, &machine, &mut || rotten.pop())
            .unwrap();
        assert_eq!(outcome, CacheOutcome::Miss);
        assert_eq!(lonely.stats().peer_hits, 0);
        assert_eq!(lonely.stats().misses, 1);
    }

    #[test]
    fn disk_miss_reasons_surface_in_the_outcome() {
        let n = 4;
        let m = layer(n, "layer");
        let machine = Machine::with_mesh(DeviceMesh::ring(n));
        let pipeline = OverlapPipeline::new(OverlapOptions::paper_default());
        let dir = temp_dir("reasons");

        let seeded = ArtifactCache::with_disk_dir(&dir);
        let (_, cold) = seeded.compile_traced(&pipeline, &m, &machine).unwrap();
        assert_eq!(cold, CacheOutcome::Miss);
        let key = artifact_key(&m, &machine, pipeline.options());
        let path = dir.join(format!("{key}.json"));

        // Corrupt file → the miss says so.
        std::fs::write(&path, "{ not json").unwrap();
        let fresh = ArtifactCache::with_disk_dir(&dir);
        let (_, outcome) = fresh.compile_traced(&pipeline, &m, &machine).unwrap();
        assert_eq!(outcome, CacheOutcome::MissDiskCorrupt);
        assert_eq!(outcome.as_str(), "compiled-disk-corrupt");
        assert!(outcome.compiled());

        // Unreadable file (a directory at the entry path) → I/O miss.
        std::fs::remove_file(&path).unwrap();
        std::fs::create_dir_all(&path).unwrap();
        let fresh = ArtifactCache::with_disk_dir(&dir);
        let (_, outcome) = fresh.compile_traced(&pipeline, &m, &machine).unwrap();
        assert_eq!(outcome, CacheOutcome::MissDiskIo);
        assert_eq!(outcome.as_str(), "compiled-disk-io");

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn options_fingerprint_separates_every_knob() {
        use crate::strategy::{
            FusionAggressiveness, PartitionHint, PatternStrategy, RingDirection, StrategySpec,
        };
        let base = OverlapOptions::paper_default();
        let spec = StrategySpec::paper_default();
        let variants = [
            OverlapOptions::with_strategy(spec.with_unroll(false)),
            OverlapOptions::with_strategy(spec.with_ring(RingDirection::Unidirectional)),
            OverlapOptions::with_strategy(spec.with_pad_max_concat(true)),
            OverlapOptions::with_strategy(
                spec.with_ring(RingDirection::Unidirectional).with_chunk(2),
            ),
            OverlapOptions::with_strategy(
                spec.with_ring(RingDirection::Unidirectional).with_chunk(4),
            ),
            // Per-pattern asymmetry: the same knob flipped on only one of
            // the two pattern kinds must hash differently from both the
            // base and the both-patterns flip.
            OverlapOptions::with_strategy(StrategySpec {
                all_gather: PatternStrategy { unroll: false, ..spec.all_gather },
                ..spec
            }),
            OverlapOptions::with_strategy(StrategySpec {
                reduce_scatter: PatternStrategy { unroll: false, ..spec.reduce_scatter },
                ..spec
            }),
            OverlapOptions::with_strategy(spec.with_fusion(FusionAggressiveness::Off)),
            OverlapOptions::with_strategy(
                spec.with_fusion(FusionAggressiveness::Conservative),
            ),
            OverlapOptions::with_strategy(StrategySpec {
                partitioning: PartitionHint::OneD,
                ..spec
            }),
            OverlapOptions::with_strategy(StrategySpec {
                partitioning: PartitionHint::TwoD,
                ..spec
            }),
            OverlapOptions { scheduler: crate::SchedulerKind::TopDown, ..base },
            OverlapOptions { scheduler: crate::SchedulerKind::Original, ..base },
            OverlapOptions { disable_cost_gate: true, ..base },
            OverlapOptions { split_all_reduce: true, ..base },
        ];
        let mut fps = vec![base.fingerprint()];
        fps.extend(variants.iter().map(OverlapOptions::fingerprint));
        for i in 0..fps.len() {
            for j in i + 1..fps.len() {
                assert_ne!(fps[i], fps[j], "variants {i} and {j} collide");
            }
        }
        assert_eq!(base.fingerprint(), OverlapOptions::paper_default().fingerprint());
    }

    #[test]
    fn default_and_tuned_artifacts_never_collide_in_cache() {
        // E2E: compile the same module/machine under paper_default and a
        // tuned strategy through one shared cache; both cold compiles must
        // miss (distinct keys), and re-requesting each must hit its own
        // entry bit-identically.
        use crate::strategy::{RingDirection, StrategySpec};
        let n = 8;
        let m = layer(n, "layer");
        let machine = Machine::with_mesh(DeviceMesh::ring(n));
        let tuned = OverlapOptions::with_strategy(
            StrategySpec::paper_default()
                .with_ring(RingDirection::Unidirectional)
                .with_chunk(2),
        );
        let default = OverlapOptions::paper_default();
        assert_ne!(
            artifact_key(&m, &machine, &default),
            artifact_key(&m, &machine, &tuned)
        );

        let cache = ArtifactCache::in_memory();
        let a = OverlapPipeline::new(default).compile_cached(&m, &machine, &cache).unwrap();
        let b = OverlapPipeline::new(tuned).compile_cached(&m, &machine, &cache).unwrap();
        assert_eq!(cache.stats(), CacheStats { memory_hits: 0, disk_hits: 0, peer_hits: 0, misses: 2 });

        let a2 = OverlapPipeline::new(default).compile_cached(&m, &machine, &cache).unwrap();
        let b2 = OverlapPipeline::new(tuned).compile_cached(&m, &machine, &cache).unwrap();
        assert_eq!(cache.stats(), CacheStats { memory_hits: 2, disk_hits: 0, peer_hits: 0, misses: 2 });
        assert_bit_identical(&a, &a2);
        assert_bit_identical(&b, &b2);
    }
}
