//! Identification of decomposable collective/einsum pairs.

use overlap_hlo::{DotDims, InstrId, Module, ModuleAnalysis, Op};

/// Which §5.1 AllGather case a pattern falls into, determined by the role
/// of the gathered dimension in the einsum.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AgCase {
    /// Case 1: the gathered operand dimension is a free (non-contracting)
    /// dimension — partial results are placed with `DynamicUpdateSlice`.
    Free,
    /// Case 2: the gathered dimension is contracting — the other operand
    /// is `DynamicSlice`d and partial results are accumulated with `Add`.
    Contracting,
    /// Case 3: the gathered dimension is a batch dimension — the other
    /// operand is sliced along its batch dimension and partial results are
    /// placed with `DynamicUpdateSlice` along the output batch dimension.
    Batch,
}

/// The kind of decomposable pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PatternKind {
    /// `AllGather` feeding one einsum operand (§5.1, Fig. 4).
    AllGatherEinsum {
        /// Whether the gathered operand is the einsum LHS.
        gathered_is_lhs: bool,
        /// The AllGather case classification.
        case: AgCase,
    },
    /// Einsum feeding a `ReduceScatter` (§5.1, Fig. 5). The operand owning
    /// the scattered output dimension is `DynamicSlice`d per iteration.
    EinsumReduceScatter {
        /// Whether the operand that owns the scattered output dimension is
        /// the LHS.
        sliced_is_lhs: bool,
        /// That operand's dimension corresponding to the scattered output
        /// dimension.
        sliced_dim: usize,
    },
}

/// One decomposable `collective`/`einsum` pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pattern {
    /// The einsum instruction.
    pub einsum: InstrId,
    /// The `AllGather` (operand) or `ReduceScatter` (user) instruction.
    pub collective: InstrId,
    /// Classification.
    pub kind: PatternKind,
}

fn classify_ag_dim(dims: &DotDims, dim: usize, is_lhs: bool) -> AgCase {
    let (batch, contracting) = if is_lhs {
        (dims.is_lhs_batch(dim), dims.is_lhs_contracting(dim))
    } else {
        (dims.is_rhs_batch(dim), dims.is_rhs_contracting(dim))
    };
    if batch {
        AgCase::Batch
    } else if contracting {
        AgCase::Contracting
    } else {
        AgCase::Free
    }
}

/// Finds every decomposable pattern in `module`.
///
/// A pattern requires exclusive dataflow — the collective's only user is
/// the einsum (AllGather case), or the einsum's only user is the
/// ReduceScatter (ReduceScatter case) — so the rewrite can consume the
/// pair. An einsum may appear in several candidate patterns (e.g. both
/// operands all-gathered); the §5.5 cost model picks at most one to
/// decompose.
///
/// Patterns whose collective has `group_size == 1` (nothing to transfer)
/// are skipped, as are ReduceScatters over output batch dimensions (not
/// covered by §5.1's transformation).
#[must_use]
pub fn find_patterns(module: &Module) -> Vec<Pattern> {
    find_patterns_in(module, &module.users())
}

/// [`find_patterns`] with the users table taken from a shared
/// [`ModuleAnalysis`] instead of recomputed from scratch.
///
/// # Panics
///
/// Panics if `analysis` does not cover `module`.
#[must_use]
pub fn find_patterns_with(module: &Module, analysis: &ModuleAnalysis) -> Vec<Pattern> {
    assert_eq!(analysis.len(), module.len(), "analysis does not cover module");
    find_patterns_in(module, analysis.users())
}

fn find_patterns_in(module: &Module, users: &[Vec<InstrId>]) -> Vec<Pattern> {
    let mut patterns = Vec::new();
    for (id, ins) in module.iter() {
        let Op::Einsum(dims) = ins.op() else { continue };

        // AllGather -> Einsum: check each operand.
        for (opi, &operand) in ins.operands().iter().enumerate() {
            let op_ins = module.instr(operand);
            if let Op::AllGather { dim, groups, .. } = op_ins.op() {
                if groups.group_size() < 2 || users[operand.index()].len() != 1 {
                    continue;
                }
                let gathered_is_lhs = opi == 0;
                let case = classify_ag_dim(dims, *dim, gathered_is_lhs);
                patterns.push(Pattern {
                    einsum: id,
                    collective: operand,
                    kind: PatternKind::AllGatherEinsum { gathered_is_lhs, case },
                });
            }
        }

        // Einsum -> ReduceScatter: the einsum's single user.
        if users[id.index()].len() == 1 {
            let user = users[id.index()][0];
            if let Op::ReduceScatter { dim, groups, .. } = module.instr(user).op() {
                if groups.group_size() < 2 {
                    continue;
                }
                let lhs = module.shape_of(ins.operands()[0]);
                let rhs = module.shape_of(ins.operands()[1]);
                // Map the scattered output dim back to an operand free dim.
                let mut found = None;
                for d in 0..lhs.rank() {
                    if dims.output_dim_of_lhs_free(lhs.rank(), d) == Some(*dim) {
                        found = Some((true, d));
                    }
                }
                for d in 0..rhs.rank() {
                    if dims.output_dim_of_rhs_free(lhs.rank(), rhs.rank(), d) == Some(*dim) {
                        found = Some((false, d));
                    }
                }
                if let Some((sliced_is_lhs, sliced_dim)) = found {
                    patterns.push(Pattern {
                        einsum: id,
                        collective: user,
                        kind: PatternKind::EinsumReduceScatter { sliced_is_lhs, sliced_dim },
                    });
                }
            }
        }
    }
    patterns
}

#[cfg(test)]
mod tests {
    use overlap_hlo::{Builder, DType, ReplicaGroups, Shape};

    use super::*;

    fn f32s(dims: &[usize]) -> Shape {
        Shape::new(DType::F32, dims.to_vec())
    }

    #[test]
    fn finds_ag_einsum_cases() {
        let n = 4;
        let mut b = Builder::new("m", n);
        let x = b.parameter(f32s(&[8, 16]), "x");
        // Case 1: RHS gathered along its free dim 1.
        let w1 = b.parameter(f32s(&[16, 8]), "w1");
        let g1 = b.all_gather(w1, 1, ReplicaGroups::full(n), "g1");
        let e1 = b.einsum(x, g1, DotDims::matmul(), "e1");
        // Case 2: RHS gathered along its contracting dim 0.
        let w2 = b.parameter(f32s(&[4, 8]), "w2");
        let g2 = b.all_gather(w2, 0, ReplicaGroups::full(n), "g2");
        let e2 = b.einsum(x, g2, DotDims::matmul(), "e2");
        // Case 3: LHS gathered along a batch dim.
        let a = b.parameter(f32s(&[2, 8, 4]), "a");
        let ga = b.all_gather(a, 0, ReplicaGroups::full(n), "ga");
        let rb = b.parameter(f32s(&[8, 4, 2]), "rb");
        let e3 = b.einsum(ga, rb, DotDims::batch_matmul(), "e3");
        let m = b.build(vec![e1, e2, e3]);
        m.verify().unwrap();

        let pats = find_patterns(&m);
        assert_eq!(pats.len(), 3);
        assert_eq!(
            pats[0].kind,
            PatternKind::AllGatherEinsum { gathered_is_lhs: false, case: AgCase::Free }
        );
        assert_eq!(
            pats[1].kind,
            PatternKind::AllGatherEinsum { gathered_is_lhs: false, case: AgCase::Contracting }
        );
        assert_eq!(
            pats[2].kind,
            PatternKind::AllGatherEinsum { gathered_is_lhs: true, case: AgCase::Batch }
        );
    }

    #[test]
    fn finds_einsum_rs() {
        let n = 2;
        let mut b = Builder::new("m", n);
        let x = b.parameter(f32s(&[8, 16]), "x");
        let w = b.parameter(f32s(&[16, 8]), "w");
        let e = b.einsum(x, w, DotDims::matmul(), "e");
        let rs = b.reduce_scatter(e, 1, ReplicaGroups::full(n), "rs");
        let m = b.build(vec![rs]);
        let pats = find_patterns(&m);
        assert_eq!(pats.len(), 1);
        assert_eq!(
            pats[0].kind,
            PatternKind::EinsumReduceScatter { sliced_is_lhs: false, sliced_dim: 1 }
        );
        assert_eq!(pats[0].einsum, e);
        assert_eq!(pats[0].collective, rs);
    }

    #[test]
    fn multi_user_gather_not_matched() {
        let n = 2;
        let mut b = Builder::new("m", n);
        let x = b.parameter(f32s(&[8, 16]), "x");
        let w = b.parameter(f32s(&[8, 8]), "w");
        let g = b.all_gather(w, 0, ReplicaGroups::full(n), "g");
        let e = b.einsum(x, g, DotDims::matmul(), "e");
        let c = b.copy(g, "c"); // second user of the gather
        let m = b.build(vec![e, c]);
        assert!(find_patterns(&m).is_empty());
    }

    #[test]
    fn multi_user_einsum_not_matched_for_rs() {
        let n = 2;
        let mut b = Builder::new("m", n);
        let x = b.parameter(f32s(&[8, 16]), "x");
        let w = b.parameter(f32s(&[16, 8]), "w");
        let e = b.einsum(x, w, DotDims::matmul(), "e");
        let rs = b.reduce_scatter(e, 1, ReplicaGroups::full(n), "rs");
        let c = b.copy(e, "c");
        let m = b.build(vec![rs, c]);
        assert!(find_patterns(&m).is_empty());
    }

    #[test]
    fn einsum_with_two_gathers_yields_two_candidates() {
        let n = 2;
        let mut b = Builder::new("m", n);
        let x = b.parameter(f32s(&[4, 16]), "x");
        let w = b.parameter(f32s(&[8, 8]), "w");
        let gx = b.all_gather(x, 0, ReplicaGroups::full(n), "gx");
        let gw = b.all_gather(w, 0, ReplicaGroups::full(n), "gw");
        let e = b.einsum(gx, gw, DotDims::matmul(), "e");
        let m = b.build(vec![e]);
        let pats = find_patterns(&m);
        assert_eq!(pats.len(), 2);
        assert_eq!(pats[0].einsum, e);
        assert_eq!(pats[1].einsum, e);
    }

    #[test]
    fn rs_on_batch_dim_not_matched() {
        let n = 2;
        let mut b = Builder::new("m", n);
        let x = b.parameter(f32s(&[4, 8, 16]), "x");
        let w = b.parameter(f32s(&[4, 16, 8]), "w");
        let e = b.einsum(x, w, DotDims::batch_matmul(), "e");
        let rs = b.reduce_scatter(e, 0, ReplicaGroups::full(n), "rs");
        let m = b.build(vec![rs]);
        assert!(find_patterns(&m).is_empty());
    }
}
