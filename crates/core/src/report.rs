//! Human-readable compilation reports.
//!
//! [`CompileReport`] aggregates what the pipeline did to a module — the
//! §5.5 gate decisions, per-pattern decomposition summaries, before/after
//! instruction statistics and the memory-profile delta — and renders it
//! as text. The `overlapc` CLI and the `diag` tool print these.

use std::fmt;
use std::fmt::Write as _;

use overlap_hlo::{module_stats, Module, ModuleStats};
use overlap_mesh::Machine;
use overlap_sim::memory_profile;

use crate::pipeline::Compiled;

/// Aggregated description of one pipeline run.
#[derive(Debug, Clone)]
pub struct CompileReport {
    /// Statistics of the input module.
    pub before: ModuleStats,
    /// Statistics of the compiled module.
    pub after: ModuleStats,
    /// Peak live bytes of the input module in its own order.
    pub peak_bytes_before: usize,
    /// Peak live bytes of the compiled module under its schedule.
    pub peak_bytes_after: usize,
    /// Patterns decomposed / candidates evaluated.
    pub decomposed: usize,
    /// Candidates the gate evaluated (including kept-synchronous ones).
    pub evaluated: usize,
    /// Lines describing each gate decision.
    pub decision_lines: Vec<String>,
    /// Lines describing each fault-induced fallback (empty on fault-free
    /// compiles).
    pub fallback_lines: Vec<String>,
    /// Lines recording strategy knobs the decomposition could not honor
    /// (e.g. unrolling dropped for an odd group, a chunk width that does
    /// not divide the group); empty when every requested knob applied.
    pub strategy_notes: Vec<String>,
}

impl CompileReport {
    /// Builds the report for a `compiled` result of `input`.
    ///
    /// # Panics
    ///
    /// Panics if the compiled order is inconsistent with its module
    /// (cannot happen for pipeline output).
    #[must_use]
    pub fn new(input: &Module, compiled: &Compiled, machine: &Machine) -> Self {
        let _ = machine;
        let decision_lines = compiled
            .decisions
            .iter()
            .map(|d| {
                format!(
                    "{:<24} comp {:>9.3}ms comm {:>8.3}ms ring {:>8.3}ms -> {}",
                    input.instr(d.pattern.einsum).name(),
                    d.comp_t * 1e3,
                    d.comm_t * 1e3,
                    d.comm_t_ring * 1e3,
                    if d.beneficial {
                        if d.bidirectional { "overlap (bidi)" } else { "overlap (uni)" }
                    } else {
                        "keep"
                    }
                )
            })
            .collect();
        let fallback_lines = compiled
            .fallbacks
            .iter()
            .map(|fb| format!("fallback {:<24} {}", fb.einsum, fb.reason))
            .collect();
        let mut strategy_notes = Vec::new();
        for s in &compiled.summaries {
            for (knob, reason) in [
                ("unroll", &s.unroll_fallback),
                ("bidirectional", &s.bidirectional_fallback),
                ("chunk", &s.chunk_fallback),
            ] {
                if let Some(reason) = reason {
                    strategy_notes.push(format!("note {:<24} {knob}: {reason}", s.einsum));
                }
            }
        }
        CompileReport {
            before: module_stats(input),
            after: module_stats(&compiled.module),
            peak_bytes_before: memory_profile(input, &input.arena_order()).peak_bytes,
            peak_bytes_after: memory_profile(&compiled.module, &compiled.order).peak_bytes,
            decomposed: compiled.summaries.len(),
            evaluated: compiled.decisions.len(),
            decision_lines,
            fallback_lines,
            strategy_notes,
        }
    }

    /// The combined notes section: fault-induced fallback lines and
    /// strategy knobs the decomposition could not honor, merged and
    /// sorted into one deterministic block — the renderer (and the
    /// `overlapc` banner) must not depend on which pass recorded a note
    /// first.
    #[must_use]
    pub fn notes(&self) -> Vec<String> {
        let mut notes: Vec<String> =
            self.fallback_lines.iter().chain(&self.strategy_notes).cloned().collect();
        notes.sort();
        notes
    }
}

impl fmt::Display for CompileReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "instructions: {} -> {} live ({:.1} GFLOP/device)",
            self.before.live,
            self.after.live,
            self.after.einsum_flops as f64 / 1e9
        )?;
        writeln!(
            f,
            "peak live memory: {:.1} MB -> {:.1} MB",
            self.peak_bytes_before as f64 / 1e6,
            self.peak_bytes_after as f64 / 1e6
        )?;
        writeln!(f, "patterns decomposed: {} of {} evaluated", self.decomposed, self.evaluated)?;
        let mut ops = String::new();
        for (name, count) in &self.after.op_counts {
            let _ = write!(ops, "{name}={count} ");
        }
        writeln!(f, "op mix: {}", ops.trim_end())?;
        for line in &self.decision_lines {
            writeln!(f, "  {line}")?;
        }
        for line in self.notes() {
            writeln!(f, "  {line}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use overlap_hlo::{Builder, DType, DotDims, ReplicaGroups, Shape};
    use overlap_mesh::{DeviceMesh, Machine};

    use super::*;
    use crate::{OverlapOptions, OverlapPipeline};

    #[test]
    fn report_summarizes_a_compilation() {
        let n = 4;
        let mut b = Builder::new("m", n);
        let x = b.parameter(Shape::new(DType::BF16, vec![4096, 2048]), "x");
        let w = b.parameter(Shape::new(DType::BF16, vec![2048, 2048 / n]), "w");
        let wg = b.all_gather(w, 1, ReplicaGroups::full(n), "wg");
        let y = b.einsum(x, wg, DotDims::matmul(), "y");
        let m = b.build(vec![y]);
        let machine = Machine::with_mesh(DeviceMesh::ring(n));
        let compiled = OverlapPipeline::new(OverlapOptions {
            disable_cost_gate: true,
            ..OverlapOptions::paper_default()
        })
        .run(&m, &machine)
        .unwrap();
        let report = CompileReport::new(&m, &compiled, &machine);
        assert_eq!(report.decomposed, 1);
        assert!(report.after.live > report.before.live);
        let text = report.to_string();
        assert!(text.contains("patterns decomposed: 1 of 1"));
        assert!(text.contains("overlap"));
        assert!(text.contains("peak live memory"));
    }

    #[test]
    fn report_surfaces_strategy_fallback_notes() {
        // An odd replica group cannot run the bidirectional ring; the
        // recorded reason must surface as a banner note.
        let n = 3;
        let mut b = Builder::new("m", n);
        let x = b.parameter(Shape::new(DType::BF16, vec![4096, 2049]), "x");
        let w = b.parameter(Shape::new(DType::BF16, vec![2049, 683]), "w");
        let wg = b.all_gather(w, 1, ReplicaGroups::full(n), "wg");
        let y = b.einsum(x, wg, DotDims::matmul(), "y");
        let m = b.build(vec![y]);
        let machine = Machine::with_mesh(DeviceMesh::ring(n));
        let compiled = OverlapPipeline::new(OverlapOptions {
            disable_cost_gate: true,
            ..OverlapOptions::paper_default()
        })
        .run(&m, &machine)
        .unwrap();
        let report = CompileReport::new(&m, &compiled, &machine);
        assert!(!report.strategy_notes.is_empty());
        let text = report.to_string();
        assert!(text.contains("note"));
        assert!(text.contains("bidirectional"));
    }

    #[test]
    fn notes_merge_fallbacks_and_strategy_notes_deterministically() {
        // Fault fallbacks and strategy notes must render as ONE sorted
        // block, interleaved by content — not two independent sections whose
        // order depends on which pass recorded what.
        let n = 3;
        let mut b = Builder::new("m", n);
        let x = b.parameter(Shape::new(DType::BF16, vec![4096, 2049]), "x");
        let w = b.parameter(Shape::new(DType::BF16, vec![2049, 683]), "w");
        let wg = b.all_gather(w, 1, ReplicaGroups::full(n), "wg");
        let y = b.einsum(x, wg, DotDims::matmul(), "y");
        let m = b.build(vec![y]);
        let machine = Machine::with_mesh(DeviceMesh::ring(n));
        let compiled = OverlapPipeline::new(OverlapOptions {
            disable_cost_gate: true,
            ..OverlapOptions::paper_default()
        })
        .run(&m, &machine)
        .unwrap();
        let mut report = CompileReport::new(&m, &compiled, &machine);
        // Inject fallback lines that lexically bracket the real strategy
        // note ("note ...") so the merged block must interleave the two
        // sources rather than concatenate them.
        report.fallback_lines =
            vec!["z-fallback late gate regressed".into(), "a-fallback early gate regressed".into()];
        assert!(!report.strategy_notes.is_empty(), "odd group must record a note");

        let notes = report.notes();
        assert_eq!(notes.len(), report.fallback_lines.len() + report.strategy_notes.len());
        let mut sorted = notes.clone();
        sorted.sort();
        assert_eq!(notes, sorted, "notes block must be deterministically ordered");
        // The strategy note sorts between the two fallback lines: the
        // sections really are combined, not concatenated.
        assert!(notes[0].starts_with("a-fallback"));
        assert!(notes[notes.len() - 1].starts_with("z-fallback"));
        assert!(notes[1..notes.len() - 1].iter().any(|l| l.contains("bidirectional")));
        // And the rendering emits exactly that block, in that order.
        let text = report.to_string();
        let mut last = 0;
        for line in &notes {
            let at = text.find(line.as_str()).unwrap_or_else(|| panic!("missing {line}"));
            assert!(at >= last, "{line} rendered out of order");
            last = at;
        }
    }
}
