//! The service layer's contract, end to end.
//!
//! Three layers of coverage:
//!
//! 1. **Codecs** — every request/response variant round-trips through
//!    its JSON encoding.
//! 2. **Framing** — malformed headers, truncated payloads (short
//!    reads), unknown protocol versions and oversized frames each
//!    produce the matching typed [`WireError`], never a panic or a
//!    misparse.
//! 3. **End to end** — a real `Server` on an ephemeral localhost port,
//!    driven by concurrent clients: responses must be byte-identical
//!    to direct `OverlapPipeline` + simulator calls, identical
//!    in-flight requests must collapse to one pipeline run
//!    (fingerprint-level dedup), and a shutdown request must drain
//!    gracefully.

// The offline proptest stub expands `proptest!` to nothing, leaving
// the fuzz helpers and imports below unused; with the real crate
// nothing is dead.
#![allow(dead_code, unused_imports)]

use overlap_core::{ArtifactCache, OverlapOptions, OverlapPipeline};
use proptest::prelude::*;
use overlap_hlo::{Builder, DType, DotDims, Module, ReplicaGroups, Shape};
use overlap_json::{FromJson, Json, ToJson};
use overlap_mesh::{FaultSpec, Machine};
use overlap_serve::exec::{execute, Deadline};
use overlap_serve::{
    read_frame, write_frame, Client, ClientError, CompileRequest, ErrorKind, ErrorResponse,
    FrameReader, LatencySummary, MachineSpec, ModelRef, Request, Response, ServeConfig, Server,
    ServedInfo, StatsResponse, WireError, PROTOCOL_VERSION,
};
use overlap_sim::simulate_order;

/// A small 4-way layer that exercises decomposition without the cost
/// of a Table-1 workload. The row count varies with `name`: the
/// artifact key fingerprints structure, not names, so two same-shaped
/// modules would share a cache slot (and recompile on every identity
/// mismatch) instead of deduping independently.
fn tiny_module(name: &str) -> Module {
    let n = 4;
    let rows = 2048 + 512 * (name.bytes().map(usize::from).sum::<usize>() % 4);
    let mut b = Builder::new(name, n);
    let x = b.parameter(Shape::new(DType::BF16, vec![rows, 1024]), "x");
    let w = b.parameter(Shape::new(DType::BF16, vec![1024, 4096 / n]), "w");
    let wg = b.all_gather(w, 1, ReplicaGroups::full(n), "wg");
    let y = b.einsum(x, wg, DotDims::matmul(), "y");
    b.build(vec![y])
}

fn inline_request(name: &str) -> CompileRequest {
    CompileRequest {
        model: ModelRef::Inline(Box::new(tiny_module(name))),
        machine: MachineSpec::ModelDefault,
        options: OverlapOptions::paper_default(),
        fault_spec: None,
        deadline_ms: None,
    }
}

// ---------------------------------------------------------------------------
// 1. Codecs
// ---------------------------------------------------------------------------

#[test]
fn every_request_variant_roundtrips() {
    let requests = [
        Request::Ping,
        Request::Stats,
        Request::Shutdown,
        Request::Subscribe,
        Request::FleetStats,
        Request::Fetch { key: "00ff00ff00ff00ff00ff00ff00ff00ff".into() },
        Request::Compile(Box::new(CompileRequest::named("GPT_32B"))),
        Request::Compile(Box::new(CompileRequest {
            model: ModelRef::Inline(Box::new(tiny_module("wire"))),
            machine: MachineSpec::TpuV4 { chips: 4 },
            options: OverlapOptions { disable_cost_gate: true, ..OverlapOptions::paper_default() },
            fault_spec: Some(FaultSpec::seeded(7).with_straggler(0, 2.0)),
            deadline_ms: Some(1500),
        })),
        Request::Compile(Box::new(CompileRequest {
            model: ModelRef::Named("GPT_64B".into()),
            machine: MachineSpec::GpuCluster { chips: 16 },
            options: OverlapOptions::paper_default(),
            fault_spec: None,
            deadline_ms: None,
        })),
    ];
    for req in requests {
        let wire = req.to_json().to_string();
        let back = Request::from_json(&Json::parse(&wire).unwrap()).unwrap();
        assert_eq!(req, back, "request did not survive the wire: {wire}");
    }
}

#[test]
fn every_response_variant_roundtrips() {
    // A real compile response (exercises the nested result codec).
    let (result, _) =
        execute(&inline_request("codec"), &ArtifactCache::in_memory(), Deadline::none())
            .unwrap();
    let responses = [
        Response::Pong,
        Response::ShuttingDown,
        Response::Subscribed,
        Response::Event(Box::new(overlap_serve::EventRecord {
            seq: 7,
            t_ms: 1.25,
            event: overlap_serve::ServeEvent::Shed { conn: 3, scope: "request".into() },
        })),
        Response::Error(ErrorResponse {
            kind: ErrorKind::Overloaded,
            message: "busy".into(),
        }),
        Response::Stats(Box::new(StatsResponse {
            node: "node-1".into(),
            uptime_ms: 12.5,
            requests: 9,
            ok: 7,
            errors: 2,
            shed: 1,
            coalesced: 2,
            batches: 6,
            pipelined: 4,
            queue_depth: 3,
            workers: 4,
            qps: 0.5,
            cache_memory_hits: 5,
            cache_disk_hits: 1,
            cache_peer_hits: 2,
            cache_misses: 3,
            cache_hit_rate: 0.6667,
            fetches: 4,
            peer_fetches: 6,
            latency: LatencySummary { count: 9, p50_ms: 1.0, p90_ms: 2.0, p99_ms: 3.0, max_ms: 4.0 },
            latency_buckets: vec![3, 0, 6],
        })),
        Response::Artifact(Box::new(overlap_serve::ArtifactResponse {
            key: "deadbeef".into(),
            entry: None,
        })),
        Response::Artifact(Box::new(overlap_serve::ArtifactResponse {
            key: "deadbeef".into(),
            entry: Some(Json::obj().with("key", "deadbeef").with("payload", "x")),
        })),
        Response::FleetStats(Box::new(overlap_serve::FleetStatsResponse {
            origin: "node-0".into(),
            total: 2,
            alive: 1,
            requests: 11,
            ok: 10,
            errors: 1,
            shed: 0,
            coalesced: 3,
            batches: 5,
            pipelined: 2,
            fetches: 1,
            peer_fetches: 2,
            cache_memory_hits: 4,
            cache_disk_hits: 1,
            cache_peer_hits: 1,
            cache_misses: 5,
            cache_hit_rate: 0.5455,
            latency: LatencySummary { count: 11, p50_ms: 1.0, p90_ms: 2.0, p99_ms: 3.0, max_ms: 4.0 },
            nodes: vec![
                overlap_serve::FleetNodeStatus {
                    node: "node-0".into(),
                    alive: true,
                    requests: 11,
                    cache_misses: 5,
                    cache_peer_hits: 1,
                },
                overlap_serve::FleetNodeStatus {
                    node: "node-1".into(),
                    alive: false,
                    requests: 0,
                    cache_misses: 0,
                    cache_peer_hits: 0,
                },
            ],
        })),
        Response::Compiled(Box::new(overlap_serve::CompileResponse {
            result,
            served: ServedInfo { source: "compiled".into(), queue_ms: 0.1, service_ms: 5.0 },
        })),
    ];
    for resp in responses {
        let wire = resp.to_json().to_string();
        let back = Response::from_json(&Json::parse(&wire).unwrap()).unwrap();
        assert_eq!(resp, back, "response did not survive the wire: {wire}");
    }
}

#[test]
fn every_error_kind_has_a_stable_wire_name() {
    for kind in [
        ErrorKind::UnknownVersion,
        ErrorKind::Malformed,
        ErrorKind::FrameTooLarge,
        ErrorKind::UnknownModel,
        ErrorKind::InvalidModule,
        ErrorKind::InvalidFaultSpec,
        ErrorKind::InvalidRequest,
        ErrorKind::Overloaded,
        ErrorKind::DeadlineExceeded,
        ErrorKind::ShuttingDown,
        ErrorKind::Internal,
    ] {
        let back = ErrorKind::from_json(&kind.to_json()).unwrap();
        assert_eq!(kind, back);
    }
    assert!(ErrorKind::from_json(&Json::from("made-up")).is_err());
}

// ---------------------------------------------------------------------------
// 2. Framing
// ---------------------------------------------------------------------------

fn read_all(bytes: &[u8]) -> Result<Json, WireError> {
    let mut cursor = std::io::Cursor::new(bytes.to_vec());
    read_frame(&mut cursor, &mut FrameReader::new())
}

#[test]
fn frames_roundtrip_even_byte_by_byte() {
    let payload = Request::Ping.to_json();
    let mut buf = Vec::new();
    write_frame(&mut buf, &payload).unwrap();
    assert_eq!(read_all(&buf).unwrap(), payload);

    // A reader fed one byte at a time must produce the same frame —
    // this is the short-read resilience the incremental reader exists
    // for.
    struct OneByte(std::io::Cursor<Vec<u8>>);
    impl std::io::Read for OneByte {
        fn read(&mut self, out: &mut [u8]) -> std::io::Result<usize> {
            let take = 1.min(out.len());
            std::io::Read::read(&mut self.0, &mut out[..take])
        }
    }
    let mut dribble = OneByte(std::io::Cursor::new(buf));
    assert_eq!(read_frame(&mut dribble, &mut FrameReader::new()).unwrap(), payload);
}

#[test]
fn truncated_payload_is_a_typed_malformed_error() {
    let mut buf = Vec::new();
    write_frame(&mut buf, &Request::Stats.to_json()).unwrap();
    let cut = buf.len() - 4;
    match read_all(&buf[..cut]) {
        Err(WireError::Malformed(m)) => assert!(m.contains("ended inside"), "{m}"),
        other => panic!("expected Malformed for a short read, got {other:?}"),
    }
}

#[test]
fn unknown_version_is_rejected_before_the_payload() {
    let buf = b"overlap-serve/999 4\n{}  ".to_vec();
    match read_all(&buf) {
        Err(WireError::UnknownVersion(v)) => assert_eq!(v, "overlap-serve/999"),
        other => panic!("expected UnknownVersion, got {other:?}"),
    }
    assert_eq!(
        WireError::UnknownVersion(String::new()).to_error_kind(),
        Some(ErrorKind::UnknownVersion)
    );
}

#[test]
fn garbage_headers_and_oversized_frames_are_typed() {
    // The first header token is the version, so free-form garbage reads
    // as a version we do not speak; a one-token header is malformed.
    assert!(matches!(read_all(b"not a header at all\n"), Err(WireError::UnknownVersion(v)) if v == "not"));
    assert!(matches!(read_all(b"noheader\n"), Err(WireError::Malformed(_))));
    assert!(matches!(
        read_all(format!("{PROTOCOL_VERSION} not-a-number\n").as_bytes()),
        Err(WireError::Malformed(_))
    ));
    // A header that never terminates.
    assert!(matches!(read_all(&[b'x'; 200]), Err(WireError::Malformed(_))));
    // An announced length beyond the cap, rejected before allocation.
    match read_all(format!("{PROTOCOL_VERSION} 99999999999\n").as_bytes()) {
        Err(WireError::FrameTooLarge(n)) => assert_eq!(n, 99_999_999_999usize),
        other => panic!("expected FrameTooLarge, got {other:?}"),
    }
    // Unparseable payload JSON.
    assert!(matches!(
        read_all(format!("{PROTOCOL_VERSION} 3\n{{,}}").as_bytes()),
        Err(WireError::Malformed(_))
    ));
    // Clean EOF between frames is Closed, not an error.
    assert!(matches!(read_all(b""), Err(WireError::Closed)));
}

#[test]
fn two_frames_on_one_stream_both_decode() {
    let mut buf = Vec::new();
    write_frame(&mut buf, &Request::Ping.to_json()).unwrap();
    write_frame(&mut buf, &Request::Stats.to_json()).unwrap();
    let mut cursor = std::io::Cursor::new(buf);
    let mut reader = FrameReader::new();
    assert_eq!(read_frame(&mut cursor, &mut reader).unwrap(), Request::Ping.to_json());
    assert_eq!(read_frame(&mut cursor, &mut reader).unwrap(), Request::Stats.to_json());
    assert!(matches!(read_frame(&mut cursor, &mut reader), Err(WireError::Closed)));
}

// ---------------------------------------------------------------------------
// 2b. Framing fuzz: random tears, truncations, announcements
// ---------------------------------------------------------------------------

/// A reader that tears the stream into the given chunk sizes (cycled),
/// delivering at most one chunk per `read` call — the adversarial
/// version of a slow peer dribbling bytes.
struct TornReader {
    data: Vec<u8>,
    pos: usize,
    sizes: Vec<usize>,
    turn: usize,
}

impl std::io::Read for TornReader {
    fn read(&mut self, out: &mut [u8]) -> std::io::Result<usize> {
        if self.pos >= self.data.len() {
            return Ok(0);
        }
        let want = self.sizes[self.turn % self.sizes.len()].max(1);
        self.turn += 1;
        let n = want.min(out.len()).min(self.data.len() - self.pos);
        out[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
        self.pos += n;
        Ok(n)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// However the kernel splits the bytes, every frame reassembles
    /// exactly once, in order, and the stream ends Closed.
    #[test]
    fn torn_streams_reassemble_every_frame(
        seed in 0u64..1_000_000,
        sizes in proptest::collection::vec(1usize..9, 1..8),
        frames in 1usize..5,
    ) {
        let payloads: Vec<Json> = (0..frames)
            .map(|i| {
                let pad = (seed as usize).wrapping_mul(31).wrapping_add(i * 13) % 64;
                Json::obj()
                    .with("i", i as u64)
                    .with("seed", seed)
                    .with("pad", "x".repeat(pad))
            })
            .collect();
        let mut buf = Vec::new();
        for p in &payloads {
            write_frame(&mut buf, p).unwrap();
        }
        let mut src = TornReader { data: buf, pos: 0, sizes, turn: 0 };
        let mut reader = FrameReader::new();
        for p in &payloads {
            prop_assert_eq!(&read_frame(&mut src, &mut reader).unwrap(), p);
        }
        prop_assert!(matches!(read_frame(&mut src, &mut reader), Err(WireError::Closed)));
    }

    /// A stream cut anywhere never panics and never fabricates a
    /// frame: each decode is one of the originals, at most once each,
    /// and the tail is a typed Malformed or a clean Closed.
    #[test]
    fn truncated_streams_never_panic_or_misparse(cut_frac in 0.0f64..1.0) {
        let a = Request::Ping.to_json();
        let b = Request::Stats.to_json();
        let mut buf = Vec::new();
        write_frame(&mut buf, &a).unwrap();
        write_frame(&mut buf, &b).unwrap();
        let cut = ((buf.len() as f64) * cut_frac) as usize;
        let mut cursor = std::io::Cursor::new(buf[..cut.min(buf.len())].to_vec());
        let mut reader = FrameReader::new();
        let mut decoded = 0usize;
        loop {
            match read_frame(&mut cursor, &mut reader) {
                Ok(v) => {
                    let want = if decoded == 0 { &a } else { &b };
                    prop_assert_eq!(&v, want, "fabricated or reordered frame");
                    decoded += 1;
                    prop_assert!(decoded <= 2);
                }
                Err(WireError::Closed | WireError::Malformed(_)) => break,
                Err(e) => prop_assert!(false, "unexpected error shape: {e:?}"),
            }
        }
    }

    /// Any announced length past the cap is rejected as a typed
    /// FrameTooLarge before any payload allocation happens.
    #[test]
    fn oversized_announcements_are_rejected(extra in 1usize..1_000_000_000) {
        let n = overlap_serve::MAX_FRAME_BYTES + extra;
        match read_all(format!("{PROTOCOL_VERSION} {n}\n").as_bytes()) {
            Err(WireError::FrameTooLarge(m)) => prop_assert_eq!(m, n),
            other => prop_assert!(false, "expected FrameTooLarge, got {other:?}"),
        }
    }
}

// ---------------------------------------------------------------------------
// 3. End to end
// ---------------------------------------------------------------------------

/// Spawns a server on an ephemeral port; returns its address and the
/// thread serving it.
fn spawn_server(
    config: ServeConfig,
) -> (String, std::thread::JoinHandle<std::io::Result<()>>) {
    let server = Server::bind(&config, ArtifactCache::in_memory()).unwrap();
    let addr = server.local_addr().unwrap().to_string();
    let handle = std::thread::spawn(move || server.run());
    (addr, handle)
}

#[test]
fn concurrent_clients_get_byte_identical_deduped_responses() {
    let (addr, server) = spawn_server(ServeConfig {
        addr: "127.0.0.1:0".into(),
        workers: 4,
        queue_depth: 16,
    });

    // The oracle: direct pipeline + simulator calls, no server.
    let names = ["serve_a", "serve_b"];
    let expected: Vec<String> = names
        .iter()
        .map(|n| {
            let (result, _) =
                execute(&inline_request(n), &ArtifactCache::in_memory(), Deadline::none())
                    .unwrap();
            // Cross-check the oracle itself against a hand-rolled
            // compile, so the shared exec path cannot drift silently.
            let module = tiny_module(n);
            let machine = Machine::tpu_v4_like(4);
            let pipeline = OverlapPipeline::new(OverlapOptions::paper_default());
            let compiled =
                pipeline.compile_cached(&module, &machine, &ArtifactCache::in_memory()).unwrap();
            let over =
                simulate_order(&compiled.module, &machine, &compiled.order).unwrap();
            assert_eq!(result.order_len, compiled.order.len());
            assert_eq!(result.overlapped.makespan.to_bits(), over.makespan().to_bits());
            result.to_json().to_string()
        })
        .collect();

    // 8 concurrent clients, each compiling both modules twice.
    let sources = std::sync::Mutex::new(Vec::new());
    std::thread::scope(|s| {
        for tid in 0..8 {
            let addr = &addr;
            let expected = &expected;
            let sources = &sources;
            s.spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                for round in 0..2 {
                    for (i, name) in names.iter().enumerate() {
                        let pick = (tid + round + i) % names.len();
                        let resp = client.compile(inline_request(names[pick])).unwrap();
                        assert_eq!(
                            resp.result.to_json().to_string(),
                            expected[pick],
                            "server response for {name} diverged from the direct pipeline"
                        );
                        sources.lock().unwrap().push(resp.served.source.clone());
                    }
                }
            });
        }
    });

    // Fingerprint-level dedup: 32 compile requests over 2 distinct
    // artifacts must run the pipeline exactly twice. Everything else
    // is served either from the single-flight cache ("memory") or by
    // joining an in-flight batch for the same fingerprint
    // ("coalesced") — both are dedup, split by which layer caught it.
    let sources = sources.into_inner().unwrap();
    assert_eq!(sources.len(), 32);
    let compiled = sources.iter().filter(|s| *s == "compiled").count();
    let deduped =
        sources.iter().filter(|s| *s == "memory" || *s == "coalesced").count();
    assert_eq!(compiled, names.len(), "each artifact must compile exactly once");
    assert_eq!(deduped, 32 - names.len());

    let mut client = Client::connect(&addr).unwrap();
    let stats = client.stats().unwrap();
    assert_eq!(stats.cache_misses, names.len() as u64);
    // Batch joins never reach the cache, so the two counters split the
    // same 30 deduped requests between them.
    assert_eq!(stats.cache_memory_hits + stats.coalesced, 30);
    assert!(stats.latency.count >= 32);
    assert_eq!(stats.errors, 0);

    // Graceful drain: shutdown is acknowledged, the server thread
    // joins, and late clients are refused.
    client.shutdown().unwrap();
    server.join().unwrap().unwrap();
}

#[test]
fn typed_errors_for_bad_requests_and_draining() {
    let (addr, server) = spawn_server(ServeConfig {
        addr: "127.0.0.1:0".into(),
        workers: 1,
        queue_depth: 4,
    });
    let mut client = Client::connect(&addr).unwrap();

    // Unknown model.
    let err = client.compile(CompileRequest::named("NOT_A_MODEL")).unwrap_err();
    match err {
        ClientError::Server(e) => {
            assert_eq!(e.kind, ErrorKind::UnknownModel);
            assert!(e.message.contains("GPT_32B"), "should list known names: {}", e.message);
        }
        other => panic!("expected a typed server error, got {other}"),
    }

    // Fault spec that does not fit the machine.
    let mut req = inline_request("faulted");
    req.fault_spec = Some(FaultSpec::seeded(1).with_straggler(99, 3.0));
    match client.compile(req).unwrap_err() {
        ClientError::Server(e) => assert_eq!(e.kind, ErrorKind::InvalidFaultSpec),
        other => panic!("expected invalid-fault-spec, got {other}"),
    }

    // Machine/module mismatch.
    let mut req = inline_request("mismatch");
    req.machine = MachineSpec::TpuV4 { chips: 8 }; // module is 4-way
    match client.compile(req).unwrap_err() {
        ClientError::Server(e) => assert_eq!(e.kind, ErrorKind::InvalidRequest),
        other => panic!("expected invalid-request, got {other}"),
    }

    // An already-expired deadline.
    let mut req = inline_request("late");
    req.deadline_ms = Some(0);
    match client.compile(req).unwrap_err() {
        ClientError::Server(e) => assert_eq!(e.kind, ErrorKind::DeadlineExceeded),
        other => panic!("expected deadline-exceeded, got {other}"),
    }

    // Well-formed JSON that is not a request.
    match client.request(&Request::Ping) {
        Ok(Response::Pong) => {}
        other => panic!("ping failed: {other:?}"),
    }

    // Compiles during a drain are refused with a typed error.
    client.shutdown().unwrap();
    let mut late = Client::connect(&addr);
    if let Ok(late) = late.as_mut() {
        match late.compile(inline_request("too_late")) {
            Err(ClientError::Server(e)) => assert!(e.kind.is_backpressure()),
            // The listener may already be gone; a wire error is an
            // acceptable refusal too.
            Err(ClientError::Wire(_)) => {}
            Ok(_) => panic!("a draining server accepted new work"),
            Err(other) => panic!("unexpected failure shape: {other}"),
        }
    }
    server.join().unwrap().unwrap();
}

#[test]
fn malformed_frames_get_typed_responses_over_the_wire() {
    use std::io::Write as _;

    let (addr, server) = spawn_server(ServeConfig {
        addr: "127.0.0.1:0".into(),
        workers: 1,
        queue_depth: 4,
    });

    // Unknown version: the server answers with a typed error frame.
    let mut raw = std::net::TcpStream::connect(&addr).unwrap();
    raw.write_all(b"overlap-serve/0 2\n{}").unwrap();
    let v = read_frame(&mut raw, &mut FrameReader::new()).unwrap();
    match Response::from_json(&v).unwrap() {
        Response::Error(e) => assert_eq!(e.kind, ErrorKind::UnknownVersion),
        other => panic!("expected a typed error, got {other:?}"),
    }
    // Close before the next connect: a rebound `raw` would stay open
    // until end of scope, pinning the test's single worker.
    drop(raw);

    // Valid frame, invalid request shape.
    let mut raw = std::net::TcpStream::connect(&addr).unwrap();
    write_frame(&mut raw, &Json::obj().with("request", "frobnicate")).unwrap();
    let v = read_frame(&mut raw, &mut FrameReader::new()).unwrap();
    match Response::from_json(&v).unwrap() {
        Response::Error(e) => assert_eq!(e.kind, ErrorKind::InvalidRequest),
        other => panic!("expected a typed error, got {other:?}"),
    }
    drop(raw);

    // Oversized announced length.
    let mut raw = std::net::TcpStream::connect(&addr).unwrap();
    raw.write_all(format!("{PROTOCOL_VERSION} 99999999999\n").as_bytes()).unwrap();
    let v = read_frame(&mut raw, &mut FrameReader::new()).unwrap();
    match Response::from_json(&v).unwrap() {
        Response::Error(e) => assert_eq!(e.kind, ErrorKind::FrameTooLarge),
        other => panic!("expected a typed error, got {other:?}"),
    }

    let mut client = Client::connect(&addr).unwrap();
    client.shutdown().unwrap();
    server.join().unwrap().unwrap();
}
