//! End-to-end overlap pipeline on the full multi-head-attention layer.
//!
//! `tests/equivalence.rs` checks the raw decomposition on this layer;
//! here the *whole* pipeline (§5.5 gate, decomposition, asyncification,
//! overlap-aware fusion, CSE, bottom-up scheduling) runs on the rank-4
//! attention module, and we assert both the performance direction on a
//! realistically-sized layer and numerical equivalence on a small one.

use overlap::core::{OverlapOptions, OverlapPipeline};
use overlap::models::{build_attention_layer, Arch, ModelConfig, PartitionStrategy};
use overlap::numerics::{run_spmd, Literal};
use overlap::sim::{simulate, simulate_order};

fn cfg(model_dim: usize, ff: usize, batch: usize, seq: usize, chips: usize) -> ModelConfig {
    ModelConfig {
        name: "attn_pipeline".into(),
        params: 0.0,
        layers: 1,
        model_dim,
        ff_dim: ff,
        batch,
        seq_len: seq,
        chips,
        arch: Arch::Decoder,
        strategy: PartitionStrategy::TwoD,
    }
}

#[test]
fn pipeline_speeds_up_attention_layer() {
    let c = cfg(4096, 16384, 256, 256, 16);
    let module = build_attention_layer(&c, 32).expect("attention layer");
    let machine = c.machine();
    let baseline = simulate(&module, &machine).expect("baseline");
    let compiled = OverlapPipeline::new(OverlapOptions::paper_default())
        .run(&module, &machine)
        .expect("pipeline");
    let over = simulate_order(&compiled.module, &machine, &compiled.order).expect("sim");
    let speedup = baseline.makespan() / over.makespan();
    assert!(
        speedup > 1.02,
        "attention layer should benefit from overlap, got {speedup:.3}x"
    );
    // The attention core itself is collective-free, so every decomposed
    // loop belongs to a projection or MLP pattern.
    assert!(!compiled.summaries.is_empty(), "some pattern decomposed");
}

#[test]
fn gate_keeps_attention_layer_non_regressing() {
    // Even at sizes where decomposition barely pays, the §5.5 gate must
    // keep the compiled module at least as fast as the baseline (within
    // the estimator's documented tolerance).
    for (d, f, b, s) in [(256, 1024, 32, 32), (1024, 4096, 64, 64)] {
        let c = cfg(d, f, b, s, 16);
        let module = build_attention_layer(&c, 16).expect("attention layer");
        let machine = c.machine();
        let baseline = simulate(&module, &machine).expect("baseline").makespan();
        let compiled = OverlapPipeline::new(OverlapOptions::paper_default())
            .run(&module, &machine)
            .expect("pipeline");
        let over = simulate_order(&compiled.module, &machine, &compiled.order)
            .expect("sim")
            .makespan();
        assert!(
            over <= baseline * 1.06,
            "gate let a regression through at d={d}: {:.3} ms -> {:.3} ms",
            baseline * 1e3,
            over * 1e3
        );
    }
}

#[test]
fn full_pipeline_preserves_attention_numerics() {
    // Small enough for the interpreter, large enough that every einsum
    // is genuinely partitioned on the [2, 2] mesh.
    let c = cfg(32, 64, 4, 8, 4);
    let module = build_attention_layer(&c, 4).expect("attention layer");
    let machine = c.machine();
    let compiled = OverlapPipeline::new(OverlapOptions {
        disable_cost_gate: true, // force decomposition regardless of benefit
        ..OverlapOptions::paper_default()
    })
    .run(&module, &machine)
    .expect("pipeline");
    compiled.module.verify().expect("compiled verifies");

    let n = module.num_partitions();
    let params = module.parameters();
    assert_eq!(params.len(), compiled.module.parameters().len());
    let inputs: Vec<Vec<Literal>> = (0..n)
        .map(|d| {
            params
                .iter()
                .enumerate()
                .map(|(p, &id)| {
                    Literal::from_fn(module.shape_of(id).clone(), move |i| {
                        let x = (i as u64 + 1)
                            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                            .wrapping_add((d * 37 + p) as u64);
                        ((x >> 40) % 512) as f64 / 256.0 - 1.0
                    })
                })
                .collect()
        })
        .collect();
    let expect = run_spmd(&module, &inputs).expect("original runs");
    let got = run_spmd(&compiled.module, &inputs).expect("compiled runs");
    assert_eq!(expect.len(), got.len());
    for (o, (e_dev, g_dev)) in expect.iter().zip(&got).enumerate() {
        for d in 0..n {
            assert!(
                e_dev[d].allclose(&g_dev[d], 1e-9),
                "output {o} device {d}: max abs diff {}",
                e_dev[d].max_abs_diff(&g_dev[d])
            );
        }
    }
}
