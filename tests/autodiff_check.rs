//! Finite-difference validation of the reverse-mode autodiff: for random
//! small modules, the gradient module's outputs must match central
//! finite differences of the scalar loss `L = Σ seed ∘ output`.

use overlap::hlo::{gradients, Builder, DType, DotDims, InstrId, Module, Shape};
use overlap::numerics::{run_spmd, Literal};
use proptest::prelude::*;

fn f32s(dims: &[usize]) -> Shape {
    Shape::new(DType::F32, dims.to_vec())
}

/// Evaluates `L = Σ seed ∘ output(params)` for a single-device module.
fn loss(module: &Module, params: &[Literal], seed: &Literal, output: usize) -> f64 {
    let out = run_spmd(module, &[params.to_vec()]).expect("runs");
    out[output][0]
        .data()
        .iter()
        .zip(seed.data())
        .map(|(a, b)| a * b)
        .sum()
}

fn check_gradients(module: &Module, output: InstrId, seed_value: u64) {
    let params = module.parameters();
    let grad = gradients(module, output, &params).expect("differentiable");
    grad.module.verify().expect("grad module verifies");

    let inputs: Vec<Literal> = params
        .iter()
        .enumerate()
        .map(|(p, &id)| {
            Literal::from_fn(module.shape_of(id).clone(), move |i| {
                ((i as u64 * 13 + p as u64 * 7 + seed_value) % 11) as f64 / 4.0 - 1.2
            })
        })
        .collect();
    let seed = Literal::from_fn(module.shape_of(output).clone(), move |i| {
        ((i as u64 * 5 + seed_value) % 7) as f64 / 3.0 - 1.0
    });

    // Analytic gradients.
    let mut grad_inputs = inputs.clone();
    grad_inputs.push(seed.clone());
    let analytic = run_spmd(&grad.module, &[grad_inputs]).expect("grad runs");

    // Central finite differences on a handful of coordinates per param.
    let h = 1e-5;
    for (p, input) in inputs.iter().enumerate() {
        let n = input.data().len();
        for coord in [0, n / 2, n - 1] {
            let mut plus = inputs.clone();
            plus[p].data_mut()[coord] += h;
            let mut minus = inputs.clone();
            minus[p].data_mut()[coord] -= h;
            let fd = (loss(module, &plus, &seed, 0) - loss(module, &minus, &seed, 0))
                / (2.0 * h);
            let an = analytic[1 + p][0].data()[coord];
            assert!(
                (fd - an).abs() <= 1e-5 * (1.0 + fd.abs().max(an.abs())),
                "param {p} coord {coord}: fd {fd} vs autodiff {an}"
            );
        }
    }
}

#[test]
fn matmul_chain_gradients() {
    let mut b = Builder::new("chain", 1);
    let x = b.parameter(f32s(&[3, 4]), "x");
    let w1 = b.parameter(f32s(&[4, 5]), "w1");
    let w2 = b.parameter(f32s(&[5, 2]), "w2");
    let h = b.einsum(x, w1, DotDims::matmul(), "h");
    let y = b.einsum(h, w2, DotDims::matmul(), "y");
    let m = b.build(vec![y]);
    check_gradients(&m, y, 3);
}

#[test]
fn residual_and_elementwise_gradients() {
    let mut b = Builder::new("residual", 1);
    let x = b.parameter(f32s(&[4, 4]), "x");
    let w = b.parameter(f32s(&[4, 4]), "w");
    let y = b.einsum(x, w, DotDims::matmul(), "y");
    let scaled = b.mul(y, x, "scaled"); // elementwise product with x
    let out = b.add(scaled, x, "residual");
    let m = b.build(vec![out]);
    check_gradients(&m, out, 11);
}

#[test]
fn batch_matmul_with_transpose_gradients() {
    let mut b = Builder::new("batched", 1);
    let x = b.parameter(f32s(&[2, 3, 4]), "x");
    let w = b.parameter(f32s(&[2, 4, 3]), "w");
    let y = b.einsum(x, w, DotDims::batch_matmul(), "y"); // [2, 3, 3]
    let t = b.transpose(y, vec![0, 2, 1], "t");
    let s = b.sub(t, y, "antisym");
    let m = b.build(vec![s]);
    check_gradients(&m, s, 29);
}

#[test]
fn relu_mlp_gradients() {
    // relu between two matmuls: the VJP must mask by step(h_pre).
    let mut b = Builder::new("relu_mlp", 1);
    let x = b.parameter(f32s(&[4, 6]), "x");
    let w1 = b.parameter(f32s(&[6, 5]), "w1");
    let w2 = b.parameter(f32s(&[5, 3]), "w2");
    let h_pre = b.einsum(x, w1, DotDims::matmul(), "h_pre");
    let h = b.relu(h_pre, "h");
    let y = b.einsum(h, w2, DotDims::matmul(), "y");
    let m = b.build(vec![y]);
    check_gradients(&m, y, 57);
}

#[test]
fn contract_first_dims_gradients() {
    // x^T-style contraction: einsum over dim 0 of both.
    let mut b = Builder::new("xt", 1);
    let x = b.parameter(f32s(&[5, 3]), "x");
    let w = b.parameter(f32s(&[5, 2]), "w");
    let dims = DotDims::new(vec![], vec![(0, 0)]).unwrap();
    let y = b.einsum(x, w, dims, "y"); // [3, 2]
    let m = b.build(vec![y]);
    check_gradients(&m, y, 41);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Random matmul shapes: autodiff matches finite differences.
    #[test]
    fn random_matmul_shapes(
        m_dim in 1usize..5,
        k_dim in 1usize..5,
        n_dim in 1usize..5,
        seed in 0u64..10_000,
    ) {
        let mut b = Builder::new("rand", 1);
        let x = b.parameter(f32s(&[m_dim, k_dim]), "x");
        let w = b.parameter(f32s(&[k_dim, n_dim]), "w");
        let y = b.einsum(x, w, DotDims::matmul(), "y");
        let module = b.build(vec![y]);
        check_gradients(&module, y, seed);
    }
}
