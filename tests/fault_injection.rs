//! End-to-end contract of the fault-injection layer: a seeded
//! [`FaultSpec`] must be exactly reproducible — same seed, same report
//! bytes, whether the sweep runs serially or fanned across rayon
//! workers, and whether the compile comes cold or from the artifact
//! cache's disk tier — and `FaultSpec::default()` must be bit-identical
//! to the fault-free simulator on arbitrary modules.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{SystemTime, UNIX_EPOCH};

use overlap::core::{ArtifactCache, CompileReport, OverlapOptions, OverlapPipeline};
use overlap::hlo::{Builder, DType, DotDims, Module, ReplicaGroups, Shape};
use overlap::mesh::{DeviceMesh, FaultSpec, Machine};
use overlap::sharding::mlp::{fig3_forward, MlpConfig};
use overlap::sim::{par_map, simulate, simulate_faulted, simulate_order_faulted_with};
use overlap_json::ToJson;
use proptest::prelude::*;

fn layer_module(n: usize) -> Module {
    let mut b = Builder::new("faults_e2e", n);
    let x = b.parameter(Shape::new(DType::BF16, vec![4096, 2048]), "x");
    let w1 = b.parameter(Shape::new(DType::BF16, vec![2048, 8192 / n]), "w1_shard");
    let w2 = b.parameter(Shape::new(DType::BF16, vec![8192 / n, 2048]), "w2_shard");
    let w1f = b.all_gather(w1, 1, ReplicaGroups::full(n), "w1");
    let h = b.einsum(x, w1f, DotDims::matmul(), "h");
    let w2f = b.all_gather(w2, 0, ReplicaGroups::full(n), "w2");
    let y = b.einsum(h, w2f, DotDims::matmul(), "y");
    b.build(vec![y])
}

fn unique_temp_dir(tag: &str) -> PathBuf {
    static SALT: AtomicU64 = AtomicU64::new(0);
    let nanos = SystemTime::now().duration_since(UNIX_EPOCH).unwrap().as_nanos();
    std::env::temp_dir().join(format!(
        "overlap-{tag}-{}-{nanos}-{}",
        std::process::id(),
        SALT.fetch_add(1, Ordering::Relaxed)
    ))
}

/// Compiles `module` under `spec` and simulates the result under the
/// same spec, returning the report's exact JSON bytes plus the recorded
/// fallbacks.
fn faulted_report_bytes(
    module: &Module,
    machine: &Machine,
    spec: &FaultSpec,
    cache: &ArtifactCache,
) -> (String, Vec<String>) {
    let compiled = OverlapPipeline::new(OverlapOptions::paper_default())
        .with_faults(spec.clone())
        .compile_cached(module, machine, cache)
        .expect("faulted compile");
    let report = simulate_order_faulted_with(
        &compiled.cost_table,
        &compiled.module,
        machine,
        &compiled.order,
        spec,
    )
    .expect("faulted simulation");
    let fallbacks = compiled.fallbacks.iter().map(|f| format!("{}: {}", f.einsum, f.reason));
    (report.to_json().to_string(), fallbacks.collect())
}

#[test]
fn same_seed_is_byte_identical_serial_and_fanned() {
    let n = 8;
    let module = layer_module(n);
    let machine = Machine::tpu_v4_like(n);
    let spec = FaultSpec::seeded(21)
        .with_straggler(3, 1.4)
        .with_derated_link_fraction(machine.mesh(), 0.25, 0.8)
        .with_jitter(2e-5)
        .with_dma_stalls(0.05, 1e-6, 8);

    let (serial, serial_fb) =
        faulted_report_bytes(&module, &machine, &spec, &ArtifactCache::disabled());

    // Eight copies fanned across the rayon pool, each compiling from
    // scratch: every worker must reproduce the serial bytes exactly.
    let copies: Vec<usize> = (0..8).collect();
    let fanned = par_map(&copies, |_| {
        faulted_report_bytes(&module, &machine, &spec, &ArtifactCache::disabled())
    });
    for (bytes, fb) in fanned {
        assert_eq!(bytes, serial, "a fanned faulted run diverged from the serial bytes");
        assert_eq!(fb, serial_fb);
    }
}

#[test]
fn cold_and_warm_disk_cache_serve_identical_faulted_reports() {
    let n = 8;
    let module = layer_module(n);
    let machine = Machine::tpu_v4_like(n);
    // Heavy jitter: at least one pattern must fall back, and the
    // fallback list must survive the disk round-trip.
    let spec = FaultSpec::seeded(9).with_jitter(10e-3);
    let dir = unique_temp_dir("faultwarm");

    let cold_cache = ArtifactCache::with_disk_dir(&dir);
    let (cold, cold_fb) = faulted_report_bytes(&module, &machine, &spec, &cold_cache);
    assert_eq!(cold_cache.stats().misses, 1);
    assert!(!cold_fb.is_empty(), "heavy jitter must record a fallback");

    // A fresh cache over the same directory models a new process: the
    // compile must come from disk and reproduce every byte.
    let warm_cache = ArtifactCache::with_disk_dir(&dir);
    let (warm, warm_fb) = faulted_report_bytes(&module, &machine, &spec, &warm_cache);
    assert_eq!(warm_cache.stats().disk_hits, 1);
    assert_eq!(warm, cold);
    assert_eq!(warm_fb, cold_fb);

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn fallbacks_surface_in_the_compile_report() {
    let n = 8;
    let module = layer_module(n);
    let machine = Machine::tpu_v4_like(n);
    let compiled = OverlapPipeline::new(OverlapOptions::paper_default())
        .with_faults(FaultSpec::seeded(9).with_jitter(10e-3))
        .run(&module, &machine)
        .expect("faulted compile");
    assert!(!compiled.fallbacks.is_empty());
    let text = CompileReport::new(&module, &compiled, &machine).to_string();
    assert!(text.contains("fallback"), "report must print the fallback lines:\n{text}");
}

/// The noop-spec identity checked exhaustively over a small grid of
/// Fig. 3 MLP modules — the deterministic counterpart of the property
/// test below, so the contract is exercised even where `proptest` is
/// stubbed out.
#[test]
fn default_spec_is_bit_identical_on_sampled_modules() {
    for (mesh_m, mesh_n) in [(2, 2), (2, 3), (3, 2), (3, 3)] {
        for mult in [1usize, 2] {
            let mesh = DeviceMesh::new(vec![mesh_m, mesh_n]);
            let cfg = MlpConfig { batch: 12 * mult, feature: 12 * mult, hidden: 24 * mult };
            let module = fig3_forward(&mesh, cfg).expect("builds");
            let machine = Machine::with_mesh(mesh);
            let pristine = simulate(&module, &machine).expect("pristine");
            let faulted = simulate_faulted(&module, &machine, &FaultSpec::default())
                .expect("noop faulted");
            assert_eq!(
                pristine.to_json().to_string(),
                faulted.to_json().to_string(),
                "noop spec diverged on {mesh_m}x{mesh_n} mult {mult}"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// `FaultSpec::default()` injects nothing: on arbitrary Fig. 3 MLP
    /// modules the faulted engine must reproduce the pristine report
    /// bit for bit (same JSON bytes).
    #[test]
    fn default_spec_is_bit_identical_on_random_modules(
        mesh_m in 2usize..4,
        mesh_n in 2usize..4,
        batch_mult in 1usize..3,
        feat_mult in 1usize..3,
    ) {
        let mesh = DeviceMesh::new(vec![mesh_m, mesh_n]);
        // Sizes must divide both axes; lcm(2..4) = 12 keeps it safe.
        let cfg = MlpConfig {
            batch: 12 * batch_mult,
            feature: 12 * feat_mult,
            hidden: 12 * feat_mult,
        };
        let module = fig3_forward(&mesh, cfg).expect("builds");
        let machine = Machine::with_mesh(mesh);
        let pristine = simulate(&module, &machine).expect("pristine");
        let faulted =
            simulate_faulted(&module, &machine, &FaultSpec::default()).expect("noop faulted");
        prop_assert_eq!(
            pristine.to_json().to_string(),
            faulted.to_json().to_string()
        );
    }
}
