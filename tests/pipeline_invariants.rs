//! End-to-end pipeline invariants across model configurations.

use overlap::core::{OverlapOptions, OverlapPipeline, SchedulerKind};
use overlap::hlo::Op;
use overlap::models::{Arch, ModelConfig, PartitionStrategy};
use overlap::sim::{simulate, simulate_order};

fn small_config(chips: usize, arch: Arch, strategy: PartitionStrategy) -> ModelConfig {
    ModelConfig {
        name: format!("inv_{chips}"),
        params: 0.0,
        layers: 2,
        model_dim: 512,
        ff_dim: 2048,
        batch: 64 * chips.max(8),
        seq_len: 16,
        chips,
        arch,
        strategy,
    }
}

fn configs() -> Vec<ModelConfig> {
    vec![
        small_config(4, Arch::Decoder, PartitionStrategy::TwoD),
        small_config(8, Arch::Decoder, PartitionStrategy::TwoD),
        small_config(16, Arch::Encoder, PartitionStrategy::TwoD),
        small_config(16, Arch::MoE { experts: 4 }, PartitionStrategy::TwoD),
        small_config(16, Arch::EncoderDecoder, PartitionStrategy::TwoD),
        small_config(128, Arch::Speech, PartitionStrategy::OneD),
    ]
}

/// With the cost gate on, the overlapped schedule is never meaningfully
/// slower than the baseline. The gate is an analytic estimate (§5.5:
/// "simply estimated against the peak FLOPS and interconnect bandwidth"),
/// so some slack is allowed for effects it cannot see — a few percent at
/// pod scale, more for the microsecond-scale 1-D toy where single kernel
/// launches move the total by whole percents.
#[test]
fn gated_pipeline_never_regresses() {
    for cfg in configs() {
        let module = cfg.layer_module();
        let machine = cfg.machine();
        let base = simulate(&module, &machine).expect("baseline");
        let compiled = OverlapPipeline::new(OverlapOptions::paper_default())
            .run(&module, &machine)
            .expect("pipeline");
        let over =
            simulate_order(&compiled.module, &machine, &compiled.order).expect("simulate");
        let slack =
            if matches!(cfg.strategy, PartitionStrategy::OneD) { 1.12 } else { 1.06 };
        assert!(
            over.makespan() <= base.makespan() * slack,
            "{}: overlap {:.4e} vs baseline {:.4e}",
            cfg.name,
            over.makespan(),
            base.makespan()
        );
    }
}

/// Both schedulers produce valid orders and identical total FLOPs (the
/// schedule changes timing, never work).
#[test]
fn schedulers_preserve_work() {
    for cfg in configs().into_iter().take(3) {
        let module = cfg.layer_module();
        let machine = cfg.machine();
        let base = simulate(&module, &machine).expect("baseline");
        let mut flops = Vec::new();
        for sched in [SchedulerKind::BottomUp, SchedulerKind::TopDown] {
            let compiled = OverlapPipeline::new(OverlapOptions {
                scheduler: sched,
                ..OverlapOptions::paper_default()
            })
            .run(&module, &machine)
            .expect("pipeline");
            let r = simulate_order(&compiled.module, &machine, &compiled.order)
                .expect("simulate");
            flops.push(r.total_flops());
        }
        assert_eq!(flops[0], flops[1], "{}: schedulers disagree on work", cfg.name);
        assert_eq!(flops[0], base.total_flops(), "{}: decomposition changed FLOPs", cfg.name);
    }
}

/// Decomposition conserves communicated payload: the decomposed permutes
/// move at least as many bytes as the collectives they replaced (the ring
/// uses one direction, hence the §5.5 trade-off), and the original
/// collectives are gone.
#[test]
fn decomposition_replaces_collectives() {
    let cfg = small_config(8, Arch::Decoder, PartitionStrategy::TwoD);
    let module = cfg.layer_module();
    let machine = cfg.machine();
    let count_coll = |m: &overlap::hlo::Module| {
        m.count_live(|i| {
            matches!(i.op(), Op::AllGather { .. } | Op::ReduceScatter { .. })
        })
    };
    let before = count_coll(&module);
    let compiled = OverlapPipeline::new(OverlapOptions::paper_default())
        .run(&module, &machine)
        .expect("pipeline");
    let after = count_coll(&compiled.module);
    let starts = compiled
        .module
        .count_live(|i| matches!(i.op(), Op::CollectivePermuteStart { .. }));
    assert_eq!(after, before - compiled.summaries.len(), "one collective consumed per pattern");
    let expected_permutes: usize = compiled.summaries.iter().map(|s| s.permutes).sum();
    assert_eq!(starts, expected_permutes);
}

/// The MoE AllToAlls survive the pipeline untouched (not decomposable).
#[test]
fn all_to_alls_are_preserved() {
    let cfg = small_config(16, Arch::MoE { experts: 4 }, PartitionStrategy::TwoD);
    let module = cfg.layer_module();
    let machine = cfg.machine();
    let before = module.count_live(|i| matches!(i.op(), Op::AllToAll { .. }));
    let compiled = OverlapPipeline::new(OverlapOptions::paper_default())
        .run(&module, &machine)
        .expect("pipeline");
    let after = compiled.module.count_live(|i| matches!(i.op(), Op::AllToAll { .. }));
    assert_eq!(before, after);
    assert!(before > 0);
}

/// Fusion ablation (Fig. 11): the overlap-aware heuristic is never slower
/// than the default heuristic on the decomposed layer.
#[test]
fn overlap_aware_fusion_not_slower() {
    use overlap::core::{fuse, FusionOptions};
    let cfg = small_config(8, Arch::Decoder, PartitionStrategy::TwoD);
    let module = cfg.layer_module();
    let machine = cfg.machine();
    let compiled = OverlapPipeline::new(OverlapOptions::with_strategy(
        overlap::core::StrategySpec::paper_default()
            .with_fusion(overlap::core::FusionAggressiveness::Off),
    ))
    .run(&module, &machine)
    .expect("pipeline");
    let mut makespans = Vec::new();
    for aware in [true, false] {
        let fused = fuse(&compiled.module, &FusionOptions { overlap_aware: aware });
        let r = simulate_order(&fused, &machine, &compiled.order).expect("simulate");
        makespans.push(r.makespan());
    }
    assert!(
        makespans[0] <= makespans[1] + 1e-12,
        "overlap-aware {:.4e} vs default {:.4e}",
        makespans[0],
        makespans[1]
    );
}

/// The §5.5 gate is load-bearing on a communication-starved machine: it
/// rejects patterns the ungated pipeline would decompose, and keeps the
/// result close to the baseline (the whole point of §5.5).
#[test]
fn gate_protects_comm_bound_configs() {
    // A communication-starved machine makes decomposition unprofitable.
    let cfg = small_config(8, Arch::Decoder, PartitionStrategy::TwoD);
    let module = cfg.layer_module();
    let machine = cfg.machine().with_link_bandwidth(1e9);
    let gated = OverlapPipeline::new(OverlapOptions::paper_default())
        .run(&module, &machine)
        .expect("pipeline");
    let ungated = OverlapPipeline::new(OverlapOptions {
        disable_cost_gate: true,
        ..OverlapOptions::paper_default()
    })
    .run(&module, &machine)
    .expect("pipeline");
    let r_gated =
        simulate_order(&gated.module, &machine, &gated.order).expect("simulate");
    let r_ungated =
        simulate_order(&ungated.module, &machine, &ungated.order).expect("simulate");
    assert!(gated.summaries.len() <= ungated.summaries.len());
    let base = simulate(&module, &machine).expect("baseline").makespan();
    assert!(
        r_gated.makespan() <= base * 1.06,
        "gated {:.4e} vs baseline {:.4e}",
        r_gated.makespan(),
        base
    );
    let _ = r_ungated;
}
