//! Property tests for the §5.2 schedulers on randomly generated DAGs:
//! every schedule is a complete topological order, simulates without
//! error, never loses to the unscheduled order, and keeps peak memory
//! within a constant factor of the baseline (the §5.2 liveness concern).

// The offline proptest stub expands `proptest!` to nothing, leaving the
// helpers and imports below unused; with the real crate nothing is dead.
#![allow(dead_code, unused_imports)]
use overlap::core::{
    schedule_bottom_up, schedule_bottom_up_ctx, schedule_top_down, schedule_top_down_ctx,
    ScheduleContext, ScheduleWindow,
};
use overlap::hlo::{Builder, DType, DotDims, InstrId, LayerTags, Module, ModuleAnalysis, Shape};
use overlap::mesh::{DeviceMesh, Machine};
use overlap::sim::{memory_profile, simulate, simulate_order, CostTable};
use proptest::prelude::*;

fn f32s(dims: &[usize]) -> Shape {
    Shape::new(DType::F32, dims.to_vec())
}

/// Builds a random module: a few parameters, then a mix of elementwise
/// ops, einsums and async permute pairs wired to random earlier values.
fn random_module(n_partitions: usize, ops: Vec<u8>, seed: u64) -> Module {
    let mut b = Builder::new("rand", n_partitions);
    let dim = 64usize;
    let mut values: Vec<InstrId> = (0..3)
        .map(|i| b.parameter(f32s(&[dim, dim]), &format!("p{i}")))
        .collect();
    let mut pending_starts: Vec<InstrId> = Vec::new();
    let pick = |values: &[InstrId], salt: u64| {
        values[((seed ^ salt).wrapping_mul(2654435761) % values.len() as u64) as usize]
    };
    for (i, &op) in ops.iter().enumerate() {
        let salt = i as u64 + 1;
        match op % 5 {
            0 => {
                let a = pick(&values, salt);
                let c = pick(&values, salt * 3);
                values.push(b.add(a, c, &format!("add{i}")));
            }
            1 => {
                let a = pick(&values, salt);
                values.push(b.neg(a, &format!("neg{i}")));
            }
            2 => {
                let a = pick(&values, salt);
                let c = pick(&values, salt * 7);
                values.push(b.einsum(a, c, DotDims::matmul(), &format!("mm{i}")));
            }
            3 if n_partitions >= 2 => {
                let a = pick(&values, salt);
                let pairs: Vec<(u32, u32)> = (0..n_partitions as u32)
                    .map(|p| (p, (p + 1) % n_partitions as u32))
                    .collect();
                let s = b.collective_permute_start(a, pairs, &format!("s{i}"));
                pending_starts.push(s);
            }
            _ => {
                if let Some(s) = pending_starts.pop() {
                    values.push(b.collective_permute_done(s, &format!("d{i}")));
                } else {
                    let a = pick(&values, salt);
                    values.push(b.copy(a, &format!("cp{i}")));
                }
            }
        }
    }
    // Retire any dangling starts (verifier demands exactly one done each).
    for (i, s) in pending_starts.into_iter().enumerate() {
        values.push(b.collective_permute_done(s, &format!("tail_done{i}")));
    }
    // Root everything so nothing is dead.
    let outputs = values.split_off(values.len().saturating_sub(4));
    b.build(outputs)
}

/// Like [`random_module`], but instruction names carry `L{k}.` stage
/// prefixes so [`LayerTags`] recognizes `depth` monotone layer stages —
/// the shape the cross-layer scheduling window constrains.
fn layered_random_module(n_partitions: usize, depth: usize, ops: Vec<u8>, seed: u64) -> Module {
    let mut b = Builder::new("layered", n_partitions);
    let dim = 64usize;
    let mut values: Vec<InstrId> = (0..3)
        .map(|i| b.parameter(f32s(&[dim, dim]), &format!("p{i}")))
        .collect();
    let per_layer = ops.len().div_ceil(depth).max(1);
    let mut pending_starts: Vec<InstrId> = Vec::new();
    let pick = |values: &[InstrId], salt: u64| {
        values[((seed ^ salt).wrapping_mul(2654435761) % values.len() as u64) as usize]
    };
    for (i, &op) in ops.iter().enumerate() {
        let layer = (i / per_layer).min(depth - 1);
        let salt = i as u64 + 1;
        match op % 5 {
            0 => {
                let a = pick(&values, salt);
                let c = pick(&values, salt * 3);
                values.push(b.add(a, c, &format!("L{layer}.add{i}")));
            }
            1 => {
                let a = pick(&values, salt);
                values.push(b.neg(a, &format!("L{layer}.neg{i}")));
            }
            2 => {
                let a = pick(&values, salt);
                let c = pick(&values, salt * 7);
                values.push(b.einsum(a, c, DotDims::matmul(), &format!("L{layer}.mm{i}")));
            }
            3 if n_partitions >= 2 => {
                let a = pick(&values, salt);
                let pairs: Vec<(u32, u32)> = (0..n_partitions as u32)
                    .map(|p| (p, (p + 1) % n_partitions as u32))
                    .collect();
                let s = b.collective_permute_start(a, pairs, &format!("L{layer}.s{i}"));
                pending_starts.push(s);
            }
            _ => {
                if let Some(s) = pending_starts.pop() {
                    values.push(b.collective_permute_done(s, &format!("L{layer}.d{i}")));
                } else {
                    let a = pick(&values, salt);
                    values.push(b.copy(a, &format!("L{layer}.cp{i}")));
                }
            }
        }
    }
    // Retire dangling starts in the last stage (a done may sit in a
    // later stage than its start; tags stay monotone).
    for (i, s) in pending_starts.into_iter().enumerate() {
        values.push(b.collective_permute_done(s, &format!("L{}.tail_done{i}", depth - 1)));
    }
    let outputs = values.split_off(values.len().saturating_sub(4));
    b.build(outputs)
}

/// Replays [`WindowCursor`]'s forward admission rule over `order`: at
/// every position the instruction's stage must sit inside the window
/// measured from the lowest incomplete stage.
fn assert_forward_window_bounded(tags: &LayerTags, order: &[InstrId], window: usize) {
    let mut remaining = vec![0usize; tags.num_layers() as usize];
    for &id in order {
        remaining[tags.layer_of(id) as usize] += 1;
    }
    let mut frontier = 0usize;
    for &id in order {
        let l = tags.layer_of(id) as usize;
        assert!(
            l < frontier + window,
            "stage {l} scheduled while the frontier is {frontier} (window {window})"
        );
        remaining[l] -= 1;
        while frontier < remaining.len() - 1 && remaining[frontier] == 0 {
            frontier += 1;
        }
    }
}

/// The mirrored reverse rule for the bottom-up scheduler (which builds
/// the order back-to-front): walking the order in reverse, stages may
/// run ahead of the highest incomplete stage by at most the window.
fn assert_reverse_window_bounded(tags: &LayerTags, order: &[InstrId], window: usize) {
    let mut remaining = vec![0usize; tags.num_layers() as usize];
    for &id in order {
        remaining[tags.layer_of(id) as usize] += 1;
    }
    let mut frontier = remaining.len() - 1;
    for &id in order.iter().rev() {
        let l = tags.layer_of(id) as usize;
        assert!(
            l + window > frontier,
            "stage {l} scheduled while the reverse frontier is {frontier} (window {window})"
        );
        remaining[l] -= 1;
        while frontier > 0 && remaining[frontier] == 0 {
            frontier -= 1;
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn schedules_are_valid_and_no_worse(
        ops in prop::collection::vec(0u8..5, 4..40),
        seed in 0u64..1_000_000,
    ) {
        let n = 4;
        let module = random_module(n, ops, seed);
        module.verify().expect("random module verifies");
        let machine = Machine::with_mesh(DeviceMesh::ring(n));
        let baseline = simulate(&module, &machine).expect("baseline simulates");
        // Both schedulers are heuristics tuned for the decomposition's
        // loop structure; on adversarial random DAGs a regression versus
        // the input order is possible. What always holds is the sound
        // worst case: every transfer fully exposed and all overlapped
        // compute paying the interference tax.
        for schedule in [
            schedule_bottom_up(&module, &machine),
            schedule_top_down(&module, &machine),
        ] {
            prop_assert_eq!(schedule.len(), module.len());
            // simulate_order validates completeness + topology.
            let r = simulate_order(&module, &machine, &schedule).expect("valid order");
            let worst = (baseline.compute_time() + baseline.memory_time())
                * (1.0 + machine.dma_interference())
                + baseline.sync_comm_time()
                + baseline.hidden_async_time()
                + baseline.exposed_async_time()
                + r.hidden_async_time()
                + r.exposed_async_time();
            prop_assert!(
                r.makespan() <= worst + 1e-12,
                "scheduled {:.4e} exceeds the sound bound {:.4e}",
                r.makespan(),
                worst
            );
            // Work is conserved.
            prop_assert_eq!(r.total_flops(), baseline.total_flops());
            // §5.2: liveness must not explode (allow 2x the input order).
            let base_mem = memory_profile(&module, &module.arena_order());
            let sched_mem = memory_profile(&module, &schedule);
            prop_assert!(
                sched_mem.peak_bytes <= base_mem.peak_bytes * 2,
                "peak {} vs baseline {}",
                sched_mem.peak_bytes,
                base_mem.peak_bytes
            );
        }
    }

    /// The in-flight async budget is respected by construction in the
    /// top-down scheduler: at no point do more starts than
    /// `max_inflight_async` precede their dones.
    #[test]
    fn top_down_respects_budget(
        ops in prop::collection::vec(0u8..5, 8..40),
        seed in 0u64..1_000_000,
        budget in 1usize..4,
    ) {
        let n = 4;
        let module = random_module(n, ops, seed);
        let machine =
            Machine::with_mesh(DeviceMesh::ring(n)).with_max_inflight_async(budget);
        let order = schedule_top_down(&module, &machine);
        let mut inflight = 0usize;
        let mut max_seen = 0usize;
        for id in order {
            match module.instr(id).op() {
                overlap::hlo::Op::CollectivePermuteStart { .. } => {
                    inflight += 1;
                    max_seen = max_seen.max(inflight);
                }
                overlap::hlo::Op::CollectivePermuteDone => {
                    inflight = inflight.saturating_sub(1);
                }
                _ => {}
            }
        }
        // The scheduler may exceed the budget only when forced by
        // dependences (a start whose only ready predecessor is another
        // start); allow budget + 1 for that boundary case.
        prop_assert!(
            max_seen <= budget + 1,
            "saw {max_seen} in flight with budget {budget}"
        );
    }

    /// Cross-layer windows are inert on untagged modules: any module
    /// without `L{k}.` stage prefixes (every committed single-scope
    /// figure) schedules byte-identically no matter what
    /// `window_layers` says.
    #[test]
    fn windows_are_inert_on_untagged_modules(
        ops in prop::collection::vec(0u8..5, 4..40),
        seed in 0u64..1_000_000,
        window in 1usize..5,
    ) {
        let n = 4;
        let module = random_module(n, ops, seed);
        let machine = Machine::with_mesh(DeviceMesh::ring(n));
        let tags = LayerTags::of(&module);
        prop_assert!(ScheduleWindow::new(&tags, window).is_none());
        let table = CostTable::new(&module, &machine).expect("cost table");
        let analysis = ModuleAnalysis::of(&module);
        let ctx = ScheduleContext::new(&table, &analysis, &module, &machine)
            .with_window(ScheduleWindow::new(&tags, window));
        prop_assert_eq!(
            schedule_bottom_up_ctx(&ctx, &module, &machine),
            schedule_bottom_up(&module, &machine)
        );
        prop_assert_eq!(
            schedule_top_down_ctx(&ctx, &module, &machine),
            schedule_top_down(&module, &machine)
        );
    }

    /// Windowed schedules on layer-tagged random DAGs are complete
    /// topological orders that respect the window's admission rule
    /// (forward rule for the top-down pass, mirrored reverse rule for
    /// the bottom-up pass), and a window at least as wide as the module
    /// collapses to the unwindowed pass byte-identically.
    #[test]
    fn windowed_schedules_are_valid_and_window_bounded(
        ops in prop::collection::vec(0u8..5, 8..40),
        seed in 0u64..1_000_000,
        depth in 2usize..5,
        window in 1usize..6,
    ) {
        let n = 4;
        let module = layered_random_module(n, depth, ops, seed);
        module.verify().expect("layered module verifies");
        let machine = Machine::with_mesh(DeviceMesh::ring(n));
        let tags = LayerTags::of(&module);
        let table = CostTable::new(&module, &machine).expect("cost table");
        let analysis = ModuleAnalysis::of(&module);
        let baseline = simulate(&module, &machine).expect("baseline simulates");
        let ctx = ScheduleContext::new(&table, &analysis, &module, &machine)
            .with_window(ScheduleWindow::new(&tags, window));
        let bu = schedule_bottom_up_ctx(&ctx, &module, &machine);
        let td = schedule_top_down_ctx(&ctx, &module, &machine);
        for order in [&bu, &td] {
            prop_assert_eq!(order.len(), module.len());
            // simulate_order validates completeness + topology.
            let r = simulate_order(&module, &machine, order).expect("valid order");
            prop_assert_eq!(r.total_flops(), baseline.total_flops());
        }
        if (tags.num_layers() as usize) > window {
            assert_reverse_window_bounded(&tags, &bu, window);
            assert_forward_window_bounded(&tags, &td, window);
        } else {
            // Too-wide windows are inert by construction.
            prop_assert!(ScheduleWindow::new(&tags, window).is_none());
            prop_assert_eq!(bu, schedule_bottom_up(&module, &machine));
            prop_assert_eq!(td, schedule_top_down(&module, &machine));
        }
    }
}
