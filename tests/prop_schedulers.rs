//! Property tests for the §5.2 schedulers on randomly generated DAGs:
//! every schedule is a complete topological order, simulates without
//! error, never loses to the unscheduled order, and keeps peak memory
//! within a constant factor of the baseline (the §5.2 liveness concern).

// The offline proptest stub expands `proptest!` to nothing, leaving the
// helpers and imports below unused; with the real crate nothing is dead.
#![allow(dead_code, unused_imports)]
use overlap::core::{schedule_bottom_up, schedule_top_down};
use overlap::hlo::{Builder, DType, DotDims, InstrId, Module, Shape};
use overlap::mesh::{DeviceMesh, Machine};
use overlap::sim::{memory_profile, simulate, simulate_order};
use proptest::prelude::*;

fn f32s(dims: &[usize]) -> Shape {
    Shape::new(DType::F32, dims.to_vec())
}

/// Builds a random module: a few parameters, then a mix of elementwise
/// ops, einsums and async permute pairs wired to random earlier values.
fn random_module(n_partitions: usize, ops: Vec<u8>, seed: u64) -> Module {
    let mut b = Builder::new("rand", n_partitions);
    let dim = 64usize;
    let mut values: Vec<InstrId> = (0..3)
        .map(|i| b.parameter(f32s(&[dim, dim]), &format!("p{i}")))
        .collect();
    let mut pending_starts: Vec<InstrId> = Vec::new();
    let pick = |values: &[InstrId], salt: u64| {
        values[((seed ^ salt).wrapping_mul(2654435761) % values.len() as u64) as usize]
    };
    for (i, &op) in ops.iter().enumerate() {
        let salt = i as u64 + 1;
        match op % 5 {
            0 => {
                let a = pick(&values, salt);
                let c = pick(&values, salt * 3);
                values.push(b.add(a, c, &format!("add{i}")));
            }
            1 => {
                let a = pick(&values, salt);
                values.push(b.neg(a, &format!("neg{i}")));
            }
            2 => {
                let a = pick(&values, salt);
                let c = pick(&values, salt * 7);
                values.push(b.einsum(a, c, DotDims::matmul(), &format!("mm{i}")));
            }
            3 if n_partitions >= 2 => {
                let a = pick(&values, salt);
                let pairs: Vec<(u32, u32)> = (0..n_partitions as u32)
                    .map(|p| (p, (p + 1) % n_partitions as u32))
                    .collect();
                let s = b.collective_permute_start(a, pairs, &format!("s{i}"));
                pending_starts.push(s);
            }
            _ => {
                if let Some(s) = pending_starts.pop() {
                    values.push(b.collective_permute_done(s, &format!("d{i}")));
                } else {
                    let a = pick(&values, salt);
                    values.push(b.copy(a, &format!("cp{i}")));
                }
            }
        }
    }
    // Retire any dangling starts (verifier demands exactly one done each).
    for (i, s) in pending_starts.into_iter().enumerate() {
        values.push(b.collective_permute_done(s, &format!("tail_done{i}")));
    }
    // Root everything so nothing is dead.
    let outputs = values.split_off(values.len().saturating_sub(4));
    b.build(outputs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn schedules_are_valid_and_no_worse(
        ops in prop::collection::vec(0u8..5, 4..40),
        seed in 0u64..1_000_000,
    ) {
        let n = 4;
        let module = random_module(n, ops, seed);
        module.verify().expect("random module verifies");
        let machine = Machine::with_mesh(DeviceMesh::ring(n));
        let baseline = simulate(&module, &machine).expect("baseline simulates");
        // Both schedulers are heuristics tuned for the decomposition's
        // loop structure; on adversarial random DAGs a regression versus
        // the input order is possible. What always holds is the sound
        // worst case: every transfer fully exposed and all overlapped
        // compute paying the interference tax.
        for schedule in [
            schedule_bottom_up(&module, &machine),
            schedule_top_down(&module, &machine),
        ] {
            prop_assert_eq!(schedule.len(), module.len());
            // simulate_order validates completeness + topology.
            let r = simulate_order(&module, &machine, &schedule).expect("valid order");
            let worst = (baseline.compute_time() + baseline.memory_time())
                * (1.0 + machine.dma_interference())
                + baseline.sync_comm_time()
                + baseline.hidden_async_time()
                + baseline.exposed_async_time()
                + r.hidden_async_time()
                + r.exposed_async_time();
            prop_assert!(
                r.makespan() <= worst + 1e-12,
                "scheduled {:.4e} exceeds the sound bound {:.4e}",
                r.makespan(),
                worst
            );
            // Work is conserved.
            prop_assert_eq!(r.total_flops(), baseline.total_flops());
            // §5.2: liveness must not explode (allow 2x the input order).
            let base_mem = memory_profile(&module, &module.arena_order());
            let sched_mem = memory_profile(&module, &schedule);
            prop_assert!(
                sched_mem.peak_bytes <= base_mem.peak_bytes * 2,
                "peak {} vs baseline {}",
                sched_mem.peak_bytes,
                base_mem.peak_bytes
            );
        }
    }

    /// The in-flight async budget is respected by construction in the
    /// top-down scheduler: at no point do more starts than
    /// `max_inflight_async` precede their dones.
    #[test]
    fn top_down_respects_budget(
        ops in prop::collection::vec(0u8..5, 8..40),
        seed in 0u64..1_000_000,
        budget in 1usize..4,
    ) {
        let n = 4;
        let module = random_module(n, ops, seed);
        let machine =
            Machine::with_mesh(DeviceMesh::ring(n)).with_max_inflight_async(budget);
        let order = schedule_top_down(&module, &machine);
        let mut inflight = 0usize;
        let mut max_seen = 0usize;
        for id in order {
            match module.instr(id).op() {
                overlap::hlo::Op::CollectivePermuteStart { .. } => {
                    inflight += 1;
                    max_seen = max_seen.max(inflight);
                }
                overlap::hlo::Op::CollectivePermuteDone => {
                    inflight = inflight.saturating_sub(1);
                }
                _ => {}
            }
        }
        // The scheduler may exceed the budget only when forced by
        // dependences (a start whose only ready predecessor is another
        // start); allow budget + 1 for that boundary case.
        prop_assert!(
            max_seen <= budget + 1,
            "saw {max_seen} in flight with budget {budget}"
        );
    }
}
