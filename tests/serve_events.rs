//! The event loop's behavioral contract, end to end.
//!
//! `tests/serve_protocol.rs` pins the wire protocol and the
//! byte-identity oracle; this file pins the *scheduling* semantics the
//! PR-6 event loop added on top:
//!
//! * **Pipelining** — N requests written back-to-back on one
//!   connection complete out of order internally (a compile parks in
//!   the pool while pings answer inline) but the responses arrive in
//!   request order.
//! * **Batching** — identical compile fingerprints admitted while a
//!   matching job is in flight join that job instead of dispatching
//!   their own; with one pool worker the join counts are exact, not
//!   racy.
//! * **Drain** — a shutdown queued behind pipelined compiles answers
//!   every request already admitted, then refuses new work.
//! * **Record/replay** — the `--record` JSON stream parsed back
//!   projects to the same [`DecisionSummary`] as the live bus, and an
//!   identical workload re-run reproduces it decision for decision.
//! * **Subscriptions** — a `subscribe` connection streams the compile
//!   lifecycle of other connections as typed events.

use std::io::Write as _;
use std::net::TcpStream;
use std::sync::Arc;

use overlap_core::{ArtifactCache, OverlapOptions};
use overlap_hlo::{Builder, DType, DotDims, Module, ReplicaGroups, Shape};
use overlap_json::{FromJson, ToJson};
use overlap_serve::exec::{execute, Deadline};
use overlap_serve::{
    parse_records, read_frame, write_frame, Client, ClientError, CollectObserver,
    CompileRequest, DecisionSummary, EventObserver, FrameReader, MachineSpec, ModelRef,
    RecordObserver, Request, Response, ServeConfig, ServeEvent, Server,
};

/// A 4-way module of `layers` square all-gather + einsum layers. One
/// layer compiles in well under a millisecond; several layers are slow
/// enough to keep a pool worker busy while the event loop admits an
/// entire burst of buffered frames — the timing wedge the pipelining
/// and batching tests below lean on.
fn chained_module(name: &str, layers: usize) -> Module {
    let n = 4;
    let rows = 2048 + 512 * (name.bytes().map(usize::from).sum::<usize>() % 4);
    let mut b = Builder::new(name, n);
    let mut x = b.parameter(Shape::new(DType::BF16, vec![rows, 1024]), "x");
    for i in 0..layers {
        let w = b.parameter(Shape::new(DType::BF16, vec![1024, 1024 / n]), &format!("w{i}"));
        let wg = b.all_gather(w, 1, ReplicaGroups::full(n), &format!("wg{i}"));
        x = b.einsum(x, wg, DotDims::matmul(), &format!("y{i}"));
    }
    b.build(vec![x])
}

fn request(name: &str, layers: usize) -> CompileRequest {
    CompileRequest {
        model: ModelRef::Inline(Box::new(chained_module(name, layers))),
        machine: MachineSpec::ModelDefault,
        options: OverlapOptions::paper_default(),
        fault_spec: None,
        deadline_ms: None,
    }
}

/// The byte-identity oracle: the direct exec path, no server.
fn oracle(req: &CompileRequest) -> String {
    let (result, _) = execute(req, &ArtifactCache::in_memory(), Deadline::none()).unwrap();
    result.to_json().to_string()
}

fn spawn_server(config: ServeConfig) -> (String, std::thread::JoinHandle<std::io::Result<()>>) {
    let server = Server::bind(&config, ArtifactCache::in_memory()).unwrap();
    let addr = server.local_addr().unwrap().to_string();
    (addr, std::thread::spawn(move || server.run()))
}

/// Encodes `reqs` into one contiguous buffer and ships it with a
/// single write. Frame-by-frame sends leave a scheduling window where
/// an early compile can finish before the next frame even arrives;
/// one write makes the whole burst visible to the event loop at once,
/// so "admitted while the first request is in flight" is a certainty,
/// not a race.
fn send_burst(stream: &mut TcpStream, reqs: &[Request]) {
    let mut buf = Vec::new();
    for req in reqs {
        write_frame(&mut buf, &req.to_json()).unwrap();
    }
    stream.write_all(&buf).unwrap();
}

fn recv_response(stream: &mut TcpStream, reader: &mut FrameReader) -> Response {
    Response::from_json(&read_frame(stream, reader).unwrap()).unwrap()
}

#[test]
fn pipelined_responses_arrive_in_request_order() {
    let (addr, server) = spawn_server(ServeConfig {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        queue_depth: 16,
    });
    let slow = request("order_slow", 48);
    let fast = request("order_fast", 1);
    let slow_expected = oracle(&slow);
    let fast_expected = oracle(&fast);

    // Four requests in one burst: a slow compile, two inline-answered
    // requests, a fast compile. The pings and the fast compile all
    // finish while the slow compile is still on a worker — yet the
    // wire order must match the send order, slow answer first.
    let mut stream = TcpStream::connect(&addr).unwrap();
    let mut reader = FrameReader::new();
    send_burst(
        &mut stream,
        &[
            Request::Compile(Box::new(slow)),
            Request::Ping,
            Request::Stats,
            Request::Compile(Box::new(fast)),
        ],
    );

    match recv_response(&mut stream, &mut reader) {
        Response::Compiled(c) => {
            assert_eq!(c.result.to_json().to_string(), slow_expected);
            assert_eq!(c.served.source, "compiled");
        }
        other => panic!("first response must be the slow compile, got {other:?}"),
    }
    assert!(matches!(recv_response(&mut stream, &mut reader), Response::Pong));
    assert!(matches!(recv_response(&mut stream, &mut reader), Response::Stats(_)));
    match recv_response(&mut stream, &mut reader) {
        Response::Compiled(c) => assert_eq!(c.result.to_json().to_string(), fast_expected),
        other => panic!("fourth response must be the fast compile, got {other:?}"),
    }
    drop(stream);

    // Requests 2-4 all arrived while request 1 was in flight.
    let mut client = Client::connect(&addr).unwrap();
    let stats = client.stats().unwrap();
    assert_eq!(stats.pipelined, 3, "the burst's three follow-ups were pipelined");
    assert_eq!(stats.errors, 0);

    client.shutdown().unwrap();
    server.join().unwrap().unwrap();
}

#[test]
fn batch_coalescing_is_exact_with_one_worker() {
    let (addr, server) = spawn_server(ServeConfig {
        addr: "127.0.0.1:0".into(),
        workers: 1,
        queue_depth: 16,
    });
    let blocker = request("batch_blocker", 48);
    let join = request("batch_join", 1);
    let join_expected = oracle(&join);

    // The blocker occupies the only worker; the four identical `join`
    // requests are admitted while it runs. The first one opens a batch
    // (its job queues behind the blocker), the other three join it —
    // exactly three coalesces, exactly two dispatched jobs, no races.
    let mut stream = TcpStream::connect(&addr).unwrap();
    let mut reader = FrameReader::new();
    let mut burst = vec![Request::Compile(Box::new(blocker))];
    for _ in 0..4 {
        burst.push(Request::Compile(Box::new(join.clone())));
    }
    send_burst(&mut stream, &burst);
    let mut sources = Vec::new();
    for i in 0..5 {
        match recv_response(&mut stream, &mut reader) {
            Response::Compiled(c) => {
                if i > 0 {
                    assert_eq!(
                        c.result.to_json().to_string(),
                        join_expected,
                        "batch follower diverged from the oracle"
                    );
                }
                sources.push(c.served.source.clone());
            }
            other => panic!("response {i} was not a compile: {other:?}"),
        }
    }
    assert_eq!(
        sources,
        ["compiled", "compiled", "coalesced", "coalesced", "coalesced"],
        "batch leader compiles, followers coalesce, in request order"
    );
    drop(stream);

    let mut client = Client::connect(&addr).unwrap();
    let stats = client.stats().unwrap();
    assert_eq!(stats.batches, 2, "blocker + batch leader, one job each");
    assert_eq!(stats.coalesced, 3);
    assert_eq!(stats.cache_misses, 2);
    assert_eq!(stats.cache_memory_hits, 0, "joins never reach the cache");
    assert_eq!(stats.pipelined, 4);

    client.shutdown().unwrap();
    server.join().unwrap().unwrap();
}

#[test]
fn drain_answers_pipelined_work_then_refuses_new() {
    let (addr, server) = spawn_server(ServeConfig {
        addr: "127.0.0.1:0".into(),
        workers: 1,
        queue_depth: 8,
    });
    let expected_a = oracle(&request("drain_a", 2));
    let expected_b = oracle(&request("drain_b", 2));

    // Two compiles with a shutdown pipelined behind them: both must be
    // answered (in order, byte-identical) before the drain
    // acknowledgement — a drain finishes admitted work, it does not
    // drop it. With one worker the second job is still queued when the
    // shutdown frame arrives.
    let mut stream = TcpStream::connect(&addr).unwrap();
    let mut reader = FrameReader::new();
    send_burst(
        &mut stream,
        &[
            Request::Compile(Box::new(request("drain_a", 2))),
            Request::Compile(Box::new(request("drain_b", 2))),
            Request::Shutdown,
        ],
    );

    for expected in [&expected_a, &expected_b] {
        match recv_response(&mut stream, &mut reader) {
            Response::Compiled(c) => {
                assert_eq!(&c.result.to_json().to_string(), expected);
                assert_eq!(c.served.source, "compiled");
            }
            other => panic!("expected a compile answer before the drain ack, got {other:?}"),
        }
    }
    assert!(matches!(recv_response(&mut stream, &mut reader), Response::ShuttingDown));
    drop(stream);

    // New work is refused: either the listener is already gone or the
    // request gets a typed backpressure answer.
    if let Ok(mut late) = Client::connect(&addr) {
        match late.compile(request("drain_b", 1)) {
            Err(ClientError::Server(e)) => assert!(e.kind.is_backpressure()),
            Err(ClientError::Wire(_)) => {}
            Ok(_) => panic!("a draining server accepted new work"),
            Err(other) => panic!("unexpected refusal shape: {other}"),
        }
    }
    server.join().unwrap().unwrap();
}

/// Runs the canonical record/replay workload against a fresh server
/// wearing `extra` observers; returns the live collected stream.
fn run_recorded_workload(extra: Vec<Arc<dyn EventObserver>>) -> Vec<overlap_serve::EventRecord> {
    let collect = Arc::new(CollectObserver::default());
    let mut observers: Vec<Arc<dyn EventObserver>> =
        vec![Arc::clone(&collect) as Arc<dyn EventObserver>];
    observers.extend(extra);
    let config =
        ServeConfig { addr: "127.0.0.1:0".into(), workers: 1, queue_depth: 8 };
    let server =
        Server::bind_with_observers(&config, ArtifactCache::in_memory(), observers).unwrap();
    let addr = server.local_addr().unwrap().to_string();
    let handle = std::thread::spawn(move || server.run());

    // Strictly sequential on one connection, so every decision the
    // server makes is a pure function of the workload: compile, warm
    // re-compile (memory), a second artifact, ping, drain.
    let mut client = Client::connect(&addr).unwrap();
    client.compile(request("replay_a", 1)).unwrap();
    client.compile(request("replay_a", 1)).unwrap();
    client.compile(request("replay_b", 1)).unwrap();
    client.ping().unwrap();
    client.shutdown().unwrap();
    handle.join().unwrap().unwrap();
    collect.snapshot()
}

#[test]
fn record_stream_replays_to_identical_decisions() {
    let path = std::env::temp_dir()
        .join(format!("overlap-serve-record-{}.jsonl", std::process::id()));
    let path_str = path.to_str().unwrap().to_string();

    let live = run_recorded_workload(vec![Arc::new(
        RecordObserver::to_file(&path_str).unwrap(),
    )]);
    let text = std::fs::read_to_string(&path).unwrap();
    std::fs::remove_file(&path).ok();

    // Replay: the file stream parses back to exactly the live records,
    // so the decision projection is identical by construction — and we
    // assert it explicitly, since that is the contract `--record`
    // exists for.
    let replayed = parse_records(&text).unwrap();
    assert_eq!(replayed, live, "recorded stream must equal the live bus stream");
    let live_summary = DecisionSummary::from_records(&live);
    assert_eq!(DecisionSummary::from_records(&replayed), live_summary);

    // The decisions themselves are what the workload forces. Note the
    // warm re-compile still dispatches a (cheap) job — batching and
    // caching both live behind the dispatch queue — so it shows up in
    // the job outcomes too, as a "memory" completion.
    assert_eq!(live_summary.cache_outcomes, ["compiled", "memory", "compiled"]);
    assert_eq!(live_summary.job_outcomes, ["compiled", "memory", "compiled"]);
    assert_eq!(live_summary.sheds, 0);
    assert_eq!(live_summary.coalesced, 0);
    assert!(live_summary.drained);
    let compiles: Vec<_> =
        live_summary.answers.iter().filter(|(kind, _)| kind == "compile").collect();
    assert_eq!(compiles.len(), 3);
    assert!(compiles.iter().all(|(_, ok)| *ok));

    // Determinism across runs: an identical workload on a fresh server
    // reproduces every decision (timings differ; decisions may not).
    let rerun_summary = DecisionSummary::from_records(&run_recorded_workload(Vec::new()));
    assert_eq!(rerun_summary, live_summary);
}

#[test]
fn subscription_streams_other_connections_lifecycles() {
    let (addr, server) = spawn_server(ServeConfig {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        queue_depth: 8,
    });

    let mut events = Client::connect(&addr).unwrap().subscribe().unwrap();
    let streamer = std::thread::spawn(move || {
        let mut seen = Vec::new();
        while let Some(record) = events.next_event().unwrap() {
            seen.push(record.event);
        }
        seen
    });

    let mut client = Client::connect(&addr).unwrap();
    let resp = client.compile(request("subscribed", 1)).unwrap();
    assert_eq!(resp.served.source, "compiled");
    client.shutdown().unwrap();
    server.join().unwrap().unwrap();

    // The subscriber saw the whole compile lifecycle of the *other*
    // connection, then a clean end of stream when the server drained.
    let seen = streamer.join().unwrap();
    assert!(
        seen.iter().any(
            |e| matches!(e, ServeEvent::Admit { kind, .. } if kind == "compile")
        ),
        "missing compile admit in {seen:?}"
    );
    assert!(seen
        .iter()
        .any(|e| matches!(e, ServeEvent::CompileStart { model, .. } if model == "subscribed")));
    assert!(seen.iter().any(|e| matches!(
        e,
        ServeEvent::CompileFinish { outcome, .. } if outcome == "compiled"
    )));
    assert!(seen.iter().any(|e| matches!(
        e,
        ServeEvent::CacheOutcome { source, .. } if source == "compiled"
    )));
    assert!(seen.iter().any(|e| matches!(
        e,
        ServeEvent::Done { kind, ok, .. } if kind == "compile" && *ok
    )));
}
