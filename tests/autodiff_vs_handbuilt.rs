//! Cross-validation of the model zoo's hand-built backward pass against
//! the autodiff + module-partitioner stack: both must produce the same
//! collective pattern for an MLP block under Fig. 2's strategy, i.e.
//! "the AllGathers become ReduceScatters" in backward (§2.2).

use overlap::hlo::{gradients, Builder, DType, DotDims, Op, Shape};
use overlap::mesh::{Axis, DeviceMesh};
use overlap::sharding::{partition_module, TensorSharding};

fn f32s(dims: &[usize]) -> Shape {
    Shape::new(DType::F32, dims.to_vec())
}

#[test]
fn autodiff_backward_contains_reduce_scatters() {
    // Dense MLP forward.
    let (t, d, f) = (32usize, 16, 24);
    let mut b = Builder::new("mlp", 1);
    let x = b.parameter(f32s(&[t, d]), "x");
    let w1 = b.parameter(f32s(&[d, f]), "w1");
    let w2 = b.parameter(f32s(&[f, d]), "w2");
    let h = b.einsum(x, w1, DotDims::matmul(), "h");
    let y = b.einsum(h, w2, DotDims::matmul(), "y");
    let dense = b.build(vec![y]);

    // Forward-only partition under Fig. 2's strategy: weight gathers only.
    let mesh = DeviceMesh::ring(4);
    let batch = TensorSharding::replicated(2).with_dim(0, Axis(0));
    let row = TensorSharding::replicated(2).with_dim(0, Axis(0));
    let fwd = partition_module(&dense, &mesh, &[batch.clone(), row.clone(), row.clone()])
        .expect("forward partitions");
    let fwd_ag = fwd.module.count_live(|i| matches!(i.op(), Op::AllGather { .. }));
    let fwd_rs = fwd.module.count_live(|i| matches!(i.op(), Op::ReduceScatter { .. }));
    assert_eq!((fwd_ag, fwd_rs), (2, 0), "forward: gathers only");

    // Forward + backward via autodiff, then partition.
    let grad = gradients(&dense, y, &[w1, w2]).expect("differentiable");
    let bwd = partition_module(
        &grad.module,
        &mesh,
        &[batch.clone(), row.clone(), row, batch],
    )
    .expect("backward partitions");
    let bwd_ag = bwd.module.count_live(|i| matches!(i.op(), Op::AllGather { .. }));
    let bwd_rs = bwd.module.count_live(|i| matches!(i.op(), Op::ReduceScatter { .. }));
    // dW einsums contract the batch-sharded token dimension on both
    // sides, so each weight gradient ends in a ReduceScatter (§2.2:
    // "the AllGathers will become ReduceScatters").
    assert_eq!(bwd_rs, 2, "one reduce-scatter per weight gradient");
    assert!(bwd_ag > fwd_ag, "dX einsums re-gather the weights");
    // Each weight gradient is scattered down to one shard's worth of
    // elements (the propagation may scatter along a different dimension
    // than the storage sharding — a real system would add a resharding
    // permute — but the communication volume is the same).
    for (out_ix, param_ix) in [(1usize, 1usize), (2, 2)] {
        let grad_elems =
            bwd.module.shape_of(bwd.module.outputs()[out_ix]).num_elements();
        let shard_elems =
            bwd.module.shape_of(bwd.module.parameters()[param_ix]).num_elements();
        assert_eq!(grad_elems, shard_elems, "dW{param_ix} is shard-sized");
    }
}

#[test]
fn hand_built_zoo_layer_has_matching_collective_mix() {
    // The zoo's 1-D layer (also Fig. 2's strategy) hand-writes the same
    // pattern the autodiff derives: forward weight gathers, backward
    // weight-gradient reduce-scatters plus dX regathers.
    let cfg = overlap::models::ModelConfig {
        name: "cross".into(),
        params: 0.0,
        layers: 1,
        model_dim: 64,
        ff_dim: 256,
        batch: 1024,
        seq_len: 4,
        chips: 128,
        arch: overlap::models::Arch::Speech,
        strategy: overlap::models::PartitionStrategy::OneD,
    };
    let m = cfg.layer_module();
    let ag = m.count_live(|i| matches!(i.op(), Op::AllGather { .. }));
    let rs = m.count_live(|i| matches!(i.op(), Op::ReduceScatter { .. }));
    // 4 forward einsums: 4 gathers; 4 dX einsums: 4 regathers;
    // 4 dW einsums: 4 reduce-scatters.
    assert_eq!(ag, 8);
    assert_eq!(rs, 4);
}
