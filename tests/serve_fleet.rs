//! Fleet behavior, end to end: N real servers in one process behind a
//! consistent-hash [`Router`].
//!
//! Covered here:
//!
//! 1. **Sharded dedup** — through the router, every distinct artifact
//!    compiles on exactly one node cluster-wide, responses are
//!    byte-identical to a direct pipeline oracle, and repeats are warm.
//! 2. **Cache peering** — a compile sent straight at a *non-owner*
//!    is served from the owner's cache over the `fetch` frame
//!    (`served.source == "peer"`), then from local memory on repeat.
//! 3. **Kill-a-node** — taking a node down mid-run loses zero
//!    requests: the router fails over down the ring, survivors
//!    recompile what the victim owned, and answers stay
//!    byte-identical.
//! 4. **Fleet stats** — one `fleet-stats` frame aggregates the whole
//!    cluster and reports dead nodes as such.

use std::time::Duration;

use overlap_core::{ArtifactCache, OverlapOptions};
use overlap_hlo::{Builder, DType, DotDims, Module, ReplicaGroups, Shape};
use overlap_json::ToJson;
use overlap_serve::exec::{execute, Deadline};
use overlap_serve::{
    Client, CompileRequest, FleetHarness, HealthPolicy, MachineSpec, ModelRef, RetryPolicy,
    Router, ServeConfig,
};

/// Same tiny 4-way layer as the protocol tests, except each caller
/// passes an explicit row index: the artifact key fingerprints
/// structure, not names, so distinct requests need structurally
/// distinct modules or they'd share (and evict) one cache slot.
fn tiny_module(name: &str, idx: usize) -> Module {
    let n = 4;
    let rows = 1024 + 64 * idx;
    let mut b = Builder::new(name, n);
    let x = b.parameter(Shape::new(DType::BF16, vec![rows, 1024]), "x");
    let w = b.parameter(Shape::new(DType::BF16, vec![1024, 4096 / n]), "w");
    let wg = b.all_gather(w, 1, ReplicaGroups::full(n), "wg");
    let y = b.einsum(x, wg, DotDims::matmul(), "y");
    b.build(vec![y])
}

fn inline_request(name: &str, idx: usize) -> CompileRequest {
    CompileRequest {
        model: ModelRef::Inline(Box::new(tiny_module(name, idx))),
        machine: MachineSpec::ModelDefault,
        options: OverlapOptions::paper_default(),
        fault_spec: None,
        deadline_ms: None,
    }
}

fn serve_config() -> ServeConfig {
    ServeConfig { addr: "127.0.0.1:0".into(), workers: 2, queue_depth: 16 }
}

/// The no-fleet oracle: a direct pipeline + simulator call.
fn oracle(name: &str, idx: usize) -> String {
    let (result, _) =
        execute(&inline_request(name, idx), &ArtifactCache::in_memory(), Deadline::none())
            .unwrap();
    result.to_json().to_string()
}

/// Launches an `n`-node fleet with test-speed knobs: fast peer-fetch
/// retries and short timeouts so a dead peer costs milliseconds, not
/// the production-grade patience.
fn launch(n: usize) -> FleetHarness {
    FleetHarness::launch(n, &serve_config(), &|_| ArtifactCache::in_memory(), |mut cfg| {
        cfg.io_timeout = Duration::from_millis(500);
        cfg.retry = RetryPolicy {
            attempts: 2,
            base: Duration::from_millis(2),
            cap: Duration::from_millis(10),
            seed: 42,
        };
        cfg
    })
    .unwrap()
}

/// A router tuned the same way: short connect budget, one-strike
/// ejection, probation long enough to stay out of the test's way.
fn fast_router(fleet: &FleetHarness) -> Router {
    Router::with_policies(
        fleet.addrs(),
        RetryPolicy {
            attempts: 2,
            base: Duration::from_millis(2),
            cap: Duration::from_millis(10),
            seed: 7,
        },
        HealthPolicy { eject_after: 1, probation: Duration::from_secs(60) },
        Duration::from_millis(300),
    )
}

#[test]
fn router_shards_dedups_and_matches_the_oracle() {
    let fleet = launch(4);
    let router = fleet.router();
    let mut session = router.session();

    let names = ["fleet_a", "fleet_b", "fleet_c", "fleet_d", "fleet_e", "fleet_f"];

    // Cold pass: each artifact lands on its ring owner and compiles
    // there (sources "compiled*", never "peer" — nobody else has it).
    for (idx, name) in names.iter().enumerate() {
        let req = inline_request(name, idx);
        let owner = router.owner_of(&req);
        let (resp, served_by) = session.compile(&req).unwrap();
        assert_eq!(served_by, owner, "healthy fleet must serve {name} on its owner");
        assert!(
            resp.served.source.starts_with("compiled"),
            "{name} cold source was {:?}",
            resp.served.source
        );
        assert_eq!(resp.result.to_json().to_string(), oracle(name, idx), "{name} diverged");
    }

    // Warm pass, from a *fresh* session (new connections): same owner,
    // memory hit, byte-identical — each artifact compiled exactly once
    // cluster-wide.
    let mut session = router.session();
    for (idx, name) in names.iter().enumerate() {
        let req = inline_request(name, idx);
        let (resp, served_by) = session.compile(&req).unwrap();
        assert_eq!(served_by, router.owner_of(&req));
        assert_eq!(resp.served.source, "memory", "{name} should be warm on its owner");
        assert_eq!(resp.result.to_json().to_string(), oracle(name, idx));
    }

    // The cluster aggregate agrees: every node alive, one local
    // compile per distinct artifact, no peer traffic.
    let agg = session.fleet_stats().unwrap();
    assert_eq!(agg.total, 4);
    assert_eq!(agg.alive, 4);
    assert_eq!(agg.nodes.len(), 4);
    assert!(agg.nodes.iter().all(|n| n.alive));
    let misses: u64 = agg.nodes.iter().map(|n| n.cache_misses).sum();
    assert_eq!(misses, names.len() as u64, "each artifact must compile exactly once");
    let peer_hits: u64 = agg.nodes.iter().map(|n| n.cache_peer_hits).sum();
    assert_eq!(peer_hits, 0, "routed traffic never needs the peer tier");

    fleet.shutdown_all();
}

#[test]
fn a_non_owner_serves_from_the_peer_tier() {
    let fleet = launch(2);
    let router = fleet.router();
    let req = inline_request("peered", 9);

    // Compile on the owner (through the router, like any client).
    let (first, owner) = router.session().compile(&req).unwrap();
    assert!(first.served.source.starts_with("compiled"));

    // Now hit the other node directly, bypassing the router. Its
    // memory and disk tiers miss; the peer tier must fetch the
    // owner's entry, revalidate it, and serve it.
    let other = 1 - owner;
    let mut client = Client::connect(&fleet.addrs()[other]).unwrap();
    let peer = client.compile(req.clone()).unwrap();
    assert_eq!(peer.served.source, "peer", "non-owner should fetch, not recompile");
    assert_eq!(
        peer.result.to_json().to_string(),
        first.result.to_json().to_string(),
        "a peer-fetched artifact must be byte-identical"
    );

    // The fetched entry was installed locally: repeats are memory hits.
    let again = client.compile(req).unwrap();
    assert_eq!(again.served.source, "memory");

    // And the aggregate saw it: one compile, one peer hit.
    let agg = client.fleet_stats().unwrap();
    let misses: u64 = agg.nodes.iter().map(|n| n.cache_misses).sum();
    let peer_hits: u64 = agg.nodes.iter().map(|n| n.cache_peer_hits).sum();
    assert_eq!(misses, 1, "the artifact must compile exactly once cluster-wide");
    assert_eq!(peer_hits, 1);

    fleet.shutdown_all();
}

#[test]
fn killing_a_node_loses_no_requests_and_keeps_answers_identical() {
    let mut fleet = launch(3);
    let router = fast_router(&fleet);
    let mut session = router.session();

    let names =
        ["kill_a", "kill_b", "kill_c", "kill_d", "kill_e", "kill_f", "kill_g", "kill_h"];

    // Warm the whole set through the router and remember the answers.
    let mut warm = Vec::new();
    for (idx, name) in names.iter().enumerate() {
        let (resp, served_by) = session.compile(&inline_request(name, idx)).unwrap();
        warm.push((resp.result.to_json().to_string(), served_by));
    }

    // Kill the node that owns the first artifact — the dead node is
    // guaranteed to be load-bearing for at least one request.
    let victim = router.owner_of(&inline_request(names[0], 0));
    fleet.kill(victim);

    // Every request still succeeds, nothing is served by the corpse,
    // and every answer matches the pre-kill bytes. Artifacts the
    // victim owned recompile (at most once) on a survivor; the rest
    // stay warm on their owners.
    for (idx, (name, (expect, warm_node))) in names.iter().zip(&warm).enumerate() {
        let (resp, served_by) = session
            .compile(&inline_request(name, idx))
            .unwrap_or_else(|e| panic!("{name} failed after killing node {victim}: {e}"));
        assert_ne!(served_by, victim, "{name} served by the killed node");
        assert_eq!(&resp.result.to_json().to_string(), expect, "{name} changed after the kill");
        if *warm_node != victim {
            assert_eq!(
                resp.served.source, "memory",
                "{name} was not owned by the victim and should still be warm"
            );
        }
    }

    // A fresh session must converge too (its health table starts
    // blank and learns about the dead node on first contact).
    let mut fresh = router.session();
    for (idx, (name, (expect, _))) in names.iter().zip(&warm).enumerate() {
        let (resp, served_by) = fresh.compile(&inline_request(name, idx)).unwrap();
        assert_ne!(served_by, victim);
        assert_eq!(&resp.result.to_json().to_string(), expect);
    }

    // The aggregate reports the outage honestly.
    let agg = session.fleet_stats().unwrap();
    assert_eq!(agg.total, 3);
    assert_eq!(agg.alive, 2);
    let dead: Vec<&str> =
        agg.nodes.iter().filter(|n| !n.alive).map(|n| n.node.as_str()).collect();
    assert_eq!(dead, vec![overlap_serve::node_id(victim)]);

    fleet.shutdown_all();
}
