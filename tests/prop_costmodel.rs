//! Property tests for the §5.5 cost model.
//!
//! The gate's estimate is what decides whether a pattern is decomposed at
//! all, so its internal consistency matters beyond any single
//! calibration: decomposition must never be predicted to *reduce*
//! compute, slower links must never make the predicted communication
//! cheaper, and the `beneficial` bit must agree with `net_benefit()`.

// The offline proptest stub expands `proptest!` to nothing, leaving the
// helpers and imports below unused; with the real crate nothing is dead.
#![allow(dead_code, unused_imports)]
use overlap::core::{find_patterns, CostModel, DecomposeOptions};
use overlap::hlo::{Builder, DType, DotDims, Module, ReplicaGroups, Shape};
use overlap::mesh::Machine;
use proptest::prelude::*;

/// AllGather→Einsum module: `x[m,k] · gather(w[k,f/n]) -> [m,f]`.
fn ag_module(n: usize, m: usize, k: usize, f_shard: usize) -> Module {
    let mut b = Builder::new("prop_ag", n);
    let x = b.parameter(Shape::new(DType::BF16, vec![m, k]), "x");
    let w = b.parameter(Shape::new(DType::BF16, vec![k, f_shard]), "w_shard");
    let wf = b.all_gather(w, 1, ReplicaGroups::full(n), "w");
    let y = b.einsum(x, wf, DotDims::matmul(), "y");
    b.build(vec![y])
}

/// Einsum→ReduceScatter module: `rs(x[m,k] · w[k, f·n]) -> [m,f]`.
fn rs_module(n: usize, m: usize, k: usize, f_shard: usize) -> Module {
    let mut b = Builder::new("prop_rs", n);
    let x = b.parameter(Shape::new(DType::BF16, vec![m, k]), "x");
    let w = b.parameter(Shape::new(DType::BF16, vec![k, f_shard * n]), "w");
    let y = b.einsum(x, w, DotDims::matmul(), "y");
    let r = b.reduce_scatter(y, 1, ReplicaGroups::full(n), "y_rs");
    b.build(vec![r])
}

fn dims() -> impl Strategy<Value = (usize, usize, usize, usize)> {
    (
        prop_oneof![Just(2usize), Just(4), Just(8)],
        64usize..512,
        64usize..512,
        16usize..256,
    )
}

fn check_decisions(
    module: &Module,
    machine: &Machine,
) -> Result<(), proptest::test_runner::TestCaseError> {
    let options = DecomposeOptions::default();
    let cm = CostModel::new(machine, options);
    let patterns = find_patterns(module);
    prop_assert!(!patterns.is_empty());

    // Slower links: half the bandwidth, same everything else.
    let slow = machine.clone().with_link_bandwidth(machine.link_bandwidth() / 2.0);
    let cm_slow = CostModel::new(&slow, options);

    for p in &patterns {
        let d = cm.evaluate(module, p);
        // All components are times; none may be negative.
        for (name, v) in [
            ("comp_t", d.comp_t),
            ("comm_t", d.comm_t),
            ("comm_t_ring", d.comm_t_ring),
            ("extra_t", d.extra_t),
            ("comp_d", d.comp_d),
        ] {
            prop_assert!(v >= 0.0 && v.is_finite(), "{name} = {v}");
        }
        // Decomposition never makes the compute side cheaper: partial
        // einsums lose tile fill and pay per-kernel launch overhead.
        prop_assert!(
            d.comp_d >= d.comp_t * (1.0 - 1e-9),
            "comp_d {:.3e} < comp_t {:.3e}",
            d.comp_d,
            d.comp_t
        );
        // The flag is exactly the sign of the net benefit.
        prop_assert_eq!(d.beneficial, d.net_benefit() >= 0.0);

        // Halving the link bandwidth never cheapens predicted
        // communication, for either the synchronous collective or the
        // decomposed ring (evaluated at the same direction mode).
        let s = cm_slow.evaluate_variant(module, p, d.bidirectional);
        prop_assert!(s.comm_t >= d.comm_t * (1.0 - 1e-9));
        prop_assert!(s.comm_t_ring >= d.comm_t_ring * (1.0 - 1e-9));
        // Compute-side estimates do not depend on link bandwidth at all
        // (only the interference term's cap can move, downward never).
        prop_assert!(s.comp_t == d.comp_t);

        // `evaluate` picks the better of the two direction modes.
        let uni = cm.evaluate_variant(module, p, false);
        let bidi = cm.evaluate_variant(module, p, true);
        prop_assert!(d.net_benefit() >= uni.net_benefit() - 1e-15);
        prop_assert!(d.net_benefit() >= bidi.net_benefit() - 1e-15);
    }

    // `select` keeps at most one decision per einsum, and with the gate
    // on, only beneficial ones.
    let gated = cm.select(module, &patterns, true);
    let mut einsums: Vec<_> = gated.iter().map(|d| d.pattern.einsum).collect();
    einsums.sort_unstable();
    einsums.dedup();
    prop_assert_eq!(einsums.len(), gated.len(), "one decision per einsum");
    for d in &gated {
        prop_assert!(d.beneficial);
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn gate_is_consistent_on_allgather_patterns((n, m, k, f) in dims()) {
        let module = ag_module(n, m, k, f);
        let machine = Machine::tpu_v4_like(n);
        check_decisions(&module, &machine)?;
    }

    #[test]
    fn gate_is_consistent_on_reduce_scatter_patterns((n, m, k, f) in dims()) {
        let module = rs_module(n, m, k, f);
        let machine = Machine::tpu_v4_like(n);
        check_decisions(&module, &machine)?;
    }

    #[test]
    fn gate_is_consistent_on_gpu_preset((n, m, k, f) in dims()) {
        let module = ag_module(n, m, k, f);
        let machine = Machine::gpu_cluster_like(n);
        check_decisions(&module, &machine)?;
    }
}
