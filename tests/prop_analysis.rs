//! Properties of the shared `ModuleAnalysis` layer: the tables the
//! builder maintains append-by-append (users, liveness, fusion) must be
//! indistinguishable from a from-scratch recomputation after every pass
//! of the pipeline, the value-numbering decompose must land on the exact
//! module the decompose-then-CSE sequence produces, and the incremental
//! verifier must accept exactly what the full verifier accepts.

use overlap::core::{
    asyncify_with, decompose_each, decompose_each_with, find_patterns_with, fuse_with,
    split_all_reduces_with, CostModel, DecomposeOptions, OverlapOptions,
};
use overlap::hlo::{eliminate_common_subexpressions_with, Module, ModuleAnalysis};
use overlap::mesh::{DeviceMesh, Machine};
use overlap::models::table1_models;
use overlap::sharding::mlp::{fig3_forward, MlpConfig};
use overlap::sim::CostTable;
use proptest::prelude::*;

/// Asserts the maintained tables match `ModuleAnalysis::of` recomputed
/// from scratch on `module`.
fn assert_analysis_fresh(module: &Module, analysis: &ModuleAnalysis, what: &str) {
    let fresh = ModuleAnalysis::of(module);
    assert_eq!(analysis.len(), module.len(), "{what}: analysis length");
    assert_eq!(analysis.users(), fresh.users(), "{what}: users table diverged");
    assert_eq!(analysis.fusion(), fresh.fusion(), "{what}: fusion table diverged");
    assert_eq!(analysis.live(), fresh.live(), "{what}: liveness diverged");
}

/// Drives `module` through every analysis-threaded pass, checking the
/// maintained tables against recomputation after each rewrite, and the
/// incremental verifier against the full one at the ends.
fn check_pipeline_analyses(module: &Module, machine: &Machine, options: &OverlapOptions) {
    module.verify().expect("input verifies");

    // The reassociation pre-pass (identity rebuild on models without
    // all-reduces — the maintained tables must still be exact).
    let (split, split_analysis) = split_all_reduces_with(module);
    assert_analysis_fresh(&split, &split_analysis, "split_all_reduces");

    let mut analysis = ModuleAnalysis::of(module);
    analysis.mark_verified(module);
    let patterns = find_patterns_with(module, &analysis);
    let table = CostTable::with_analysis(module, &analysis, machine).expect("cost table");
    let cost_model = CostModel::with_strategy(machine, &options.strategy);
    let decisions = cost_model.select_with(&table, module, &patterns, true);
    let selected: Vec<_> = decisions
        .iter()
        .map(|d| {
            let opts = DecomposeOptions {
                bidirectional: d.bidirectional,
                ..options.decompose_for(&d.pattern.kind)
            };
            (d.pattern, opts)
        })
        .collect();

    // Decompose: the value-numbering builder maintains the tables while
    // merging duplicates at append time …
    let (decomposed, _summaries, dec_analysis) = decompose_each_with(module, &selected);
    assert_analysis_fresh(&decomposed, &dec_analysis, "decompose");

    // … and must land on the bit-identical module the legacy
    // decompose-then-CSE sequence produces, with the CSE pass's maintained
    // analysis equally exact.
    let (dec_legacy, _) = decompose_each(module, &selected);
    let legacy_analysis = ModuleAnalysis::of(&dec_legacy);
    let (merged, merged_analysis) =
        eliminate_common_subexpressions_with(&dec_legacy, &legacy_analysis);
    assert_analysis_fresh(&merged, &merged_analysis, "cse");
    assert_eq!(
        merged, decomposed,
        "value-numbered decompose must equal decompose + CSE bit-for-bit"
    );

    let (asynced, mut analysis) = asyncify_with(&decomposed);
    assert_analysis_fresh(&asynced, &analysis, "asyncify");

    let final_module = match options.fusion_options() {
        Some(fopts) => {
            let fused = fuse_with(&asynced, &analysis, &fopts);
            analysis.refresh_fusion(&fused);
            assert_analysis_fresh(&fused, &analysis, "fuse");
            fused
        }
        None => asynced,
    };

    // Incremental and full verification agree on the final module.
    let full = final_module.verify();
    let inc = final_module.verify_incremental(&mut analysis);
    assert_eq!(full.is_ok(), inc.is_ok(), "verifier divergence: {full:?} vs {inc:?}");
    full.expect("final module verifies");

    // And from a cold (unverified) analysis as well.
    let mut cold = ModuleAnalysis::of(&final_module);
    assert!(final_module.verify_incremental(&mut cold).is_ok());
    assert_eq!(cold.verified_len(), final_module.len());
}

/// Every Table-1 zoo model keeps exact maintained analyses through the
/// whole pass sequence, under the paper's default options.
#[test]
fn zoo_models_keep_exact_maintained_analyses() {
    let options = OverlapOptions::paper_default();
    for cfg in table1_models() {
        let module = cfg.layer_module();
        let machine = cfg.machine();
        check_pipeline_analyses(&module, &machine, &options);
    }
}

/// One random-MLP draw of the property: build a Fig. 3 MLP on an
/// `mesh_m × mesh_n` mesh and drive it through [`check_pipeline_analyses`].
fn check_fig3_draw(
    mesh_m: usize,
    mesh_n: usize,
    batch_mult: usize,
    feat_mult: usize,
    hid_mult: usize,
    bidirectional: bool,
) {
    let mesh = DeviceMesh::new(vec![mesh_m, mesh_n]);
    let cfg = MlpConfig {
        batch: 12 * batch_mult,
        feature: 12 * feat_mult,
        hidden: 12 * hid_mult,
    };
    let module = fig3_forward(&mesh, cfg).expect("builds");
    let machine = Machine::with_mesh(mesh);
    let ring = if bidirectional {
        overlap::core::RingDirection::Bidirectional
    } else {
        overlap::core::RingDirection::Unidirectional
    };
    let options = OverlapOptions::with_strategy(
        overlap::core::StrategySpec::paper_default().with_ring(ring),
    );
    check_pipeline_analyses(&module, &machine, &options);
}

/// Fixed corner draws of the random-MLP property (the proptest below
/// explores the space; this pins the corners deterministically).
#[test]
fn fig3_mlp_corner_draws_keep_exact_maintained_analyses() {
    check_fig3_draw(2, 2, 1, 1, 1, false);
    check_fig3_draw(2, 2, 1, 1, 1, true);
    check_fig3_draw(3, 2, 2, 1, 2, true);
    check_fig3_draw(3, 3, 2, 2, 2, false);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Random Fig. 3 MLPs (the prop_pipeline generator) keep exact
    /// maintained analyses through the pass sequence too.
    #[test]
    fn random_fig3_mlps_keep_exact_maintained_analyses(
        mesh_m in 2usize..4,
        mesh_n in 2usize..4,
        batch_mult in 1usize..3,
        feat_mult in 1usize..3,
        hid_mult in 1usize..3,
        bidirectional in 0u8..2,
    ) {
        check_fig3_draw(mesh_m, mesh_n, batch_mult, feat_mult, hid_mult, bidirectional == 1);
    }
}
