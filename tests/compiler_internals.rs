//! Cross-crate checks of compiler internals: pass tags, CSE effect on the
//! emitted loops, and simulator determinism.

use overlap::core::{OverlapOptions, OverlapPipeline};
use overlap::hlo::Op;
use overlap::models::{Arch, ModelConfig, PartitionStrategy};
use overlap::sim::simulate_order;

fn cfg() -> ModelConfig {
    ModelConfig {
        name: "internals".into(),
        params: 0.0,
        layers: 1,
        model_dim: 512,
        ff_dim: 2048,
        batch: 512,
        seq_len: 16,
        chips: 16,
        arch: Arch::Decoder,
        strategy: PartitionStrategy::TwoD,
    }
}

#[test]
fn decomposed_instructions_carry_lce_tags() {
    let module = cfg().layer_module();
    let machine = cfg().machine();
    let compiled = OverlapPipeline::new(OverlapOptions {
        disable_cost_gate: true,
        ..OverlapOptions::paper_default()
    })
    .run(&module, &machine)
    .expect("pipeline");

    let mut tagged_starts = 0usize;
    let mut tagged_einsums = 0usize;
    for (_, ins) in compiled.module.iter() {
        match ins.op() {
            Op::CollectivePermuteStart { .. } => {
                assert!(
                    ins.tag().is_some_and(|t| t.starts_with("lce")),
                    "start {} should carry an lce tag",
                    ins.name()
                );
                tagged_starts += 1;
            }
            Op::Einsum(_)
                if ins.tag() == Some("lce.partial_einsum") => {
                    tagged_einsums += 1;
                }
            _ => {}
        }
    }
    assert!(tagged_starts > 0);
    let expected: usize = compiled.summaries.iter().map(|s| s.partial_einsums).sum();
    assert_eq!(tagged_einsums, expected);
}

#[test]
fn cse_merges_rank_tables_across_loops() {
    // Twelve decomposed loops share at most two distinct replica-group
    // layouts (the x-axis rings and the y-axis rings), so after CSE at
    // most two rank tables remain.
    let module = cfg().layer_module();
    let machine = cfg().machine();
    let compiled = OverlapPipeline::new(OverlapOptions {
        disable_cost_gate: true,
        ..OverlapOptions::paper_default()
    })
    .run(&module, &machine)
    .expect("pipeline");
    assert!(compiled.summaries.len() >= 4, "several loops decomposed");
    let tables = compiled
        .module
        .count_live(|i| matches!(i.op(), Op::ConstantTensor { .. }));
    assert!(
        tables <= 2,
        "expected at most 2 rank tables after CSE, found {tables}"
    );
    // And exactly one partition-id read survives.
    assert_eq!(
        compiled.module.count_live(|i| matches!(i.op(), Op::PartitionId)),
        1
    );
}

#[test]
fn simulation_is_deterministic() {
    let module = cfg().layer_module();
    let machine = cfg().machine();
    let compiled = OverlapPipeline::new(OverlapOptions::paper_default())
        .run(&module, &machine)
        .expect("pipeline");
    let a = simulate_order(&compiled.module, &machine, &compiled.order).expect("sim");
    let b = simulate_order(&compiled.module, &machine, &compiled.order).expect("sim");
    assert_eq!(a, b, "same module + order must give identical reports");
}

/// The gate's decomposed-compute estimate must track what the emitted
/// partial einsums actually cost in the simulator's model.
#[test]
fn gate_comp_d_matches_emitted_partials() {
    use overlap::core::{decompose_each, CostModel, DecomposeOptions};
    use overlap::sim::{instruction_cost, InstrCost};

    let module = cfg().layer_module();
    let machine = cfg().machine();
    let options = DecomposeOptions::default();
    let cm = CostModel::new(&machine, options);
    let patterns = overlap::core::find_patterns(&module);
    let decisions = cm.select(&module, &patterns, false);
    for d in decisions.iter().take(4) {
        let opts = DecomposeOptions { bidirectional: d.bidirectional, ..options };
        let (out, _) = decompose_each(&module, &[(d.pattern, opts)]);
        let partial_sum: f64 = out
            .iter()
            .filter(|(_, ins)| ins.tag() == Some("lce.partial_einsum"))
            .map(|(id, _)| match instruction_cost(&out, id, &machine) {
                InstrCost::Compute { seconds, .. } => seconds,
                _ => 0.0,
            })
            .sum();
        assert!(
            d.comp_d >= partial_sum - 1e-12,
            "comp_d {:.3e} below the emitted partial cost {partial_sum:.3e}",
            d.comp_d
        );
        assert!(
            d.comp_d <= partial_sum * (1.0 + machine.dma_interference()) + 1e-12,
            "comp_d {:.3e} above the interference-taxed partial cost {:.3e}",
            d.comp_d,
            partial_sum * (1.0 + machine.dma_interference())
        );
    }
}

#[test]
fn compilation_is_deterministic() {
    let module = cfg().layer_module();
    let machine = cfg().machine();
    let a = OverlapPipeline::new(OverlapOptions::paper_default())
        .run(&module, &machine)
        .expect("pipeline");
    let b = OverlapPipeline::new(OverlapOptions::paper_default())
        .run(&module, &machine)
        .expect("pipeline");
    assert_eq!(a.module, b.module);
    assert_eq!(a.order, b.order);
}
