//! Edge-case equivalence: 3-D torus subgroups, einsums with batch
//! dimensions feeding a ReduceScatter, and an einsum with both an
//! AllGather operand and a ReduceScatter user going through the full
//! pipeline.

use overlap::core::{
    asyncify, decompose, find_patterns, DecomposeOptions, OverlapOptions, OverlapPipeline,
};
use overlap::hlo::{Builder, DType, DotDims, Module, ReplicaGroups, Shape};
use overlap::mesh::{Axis, DeviceMesh, Machine};
use overlap::numerics::{run_spmd, Literal};
use overlap::sim::{simulate, simulate_order};

fn f32s(dims: &[usize]) -> Shape {
    Shape::new(DType::F32, dims.to_vec())
}

fn assert_equivalent(original: &Module, transformed: &Module) {
    let n = original.num_partitions();
    let inputs: Vec<Vec<Literal>> = (0..n)
        .map(|d| {
            original
                .parameters()
                .iter()
                .enumerate()
                .map(|(p, &id)| {
                    Literal::from_fn(original.shape_of(id).clone(), move |i| {
                        ((i * 7 + d * 13 + p * 29) % 23) as f64 / 7.0 - 1.5
                    })
                })
                .collect()
        })
        .collect();
    let expect = run_spmd(original, &inputs).expect("original");
    let got = run_spmd(transformed, &inputs).expect("transformed");
    for (e, g) in expect.iter().zip(&got) {
        for d in 0..n {
            assert!(
                e[d].allclose(&g[d], 1e-9),
                "device {d}: diff {}",
                e[d].max_abs_diff(&g[d])
            );
        }
    }
}

/// Rings along each axis of a 3-D torus (the TPU's physical topology):
/// the rank tables and permute pairs must work for all of them.
#[test]
fn three_d_torus_subgroup_rings() {
    let mesh = DeviceMesh::new(vec![2, 2, 3]);
    let n = mesh.num_devices();
    for axis in 0..3 {
        let groups = mesh.axis_groups(Axis(axis));
        let g = groups.group_size();
        let mut b = Builder::new(format!("axis{axis}"), n);
        let x = b.parameter(f32s(&[4, 6]), "x");
        let ws = b.parameter(f32s(&[6, 2]), "w_shard");
        let w = b.all_gather(ws, 1, groups, "w");
        let e = b.einsum(x, w, DotDims::matmul(), "e");
        let m = b.build(vec![e]);
        assert_eq!(m.shape_of(e).dims(), &[4, 2 * g]);

        let patterns = find_patterns(&m);
        assert_eq!(patterns.len(), 1);
        for bidirectional in [false, true] {
            let opts = DecomposeOptions { bidirectional, ..Default::default() };
            let (out, _) = decompose(&m, &opts, &patterns);
            assert_equivalent(&m, &asyncify(&out));
        }
    }
}

/// An einsum with a batch dimension whose free output dim feeds a
/// ReduceScatter: the decomposition slices the free dim while the batch
/// dimension rides along.
#[test]
fn batched_einsum_reduce_scatter() {
    let n = 4;
    let mut b = Builder::new("batched_rs", n);
    let x = b.parameter(f32s(&[3, 2 * n, 5]), "x");
    let w = b.parameter(f32s(&[3, 5, 4]), "w");
    let e = b.einsum(x, w, DotDims::batch_matmul(), "e");
    // Scatter the LHS free dim (output dim 1).
    let rs = b.reduce_scatter(e, 1, ReplicaGroups::full(n), "rs");
    let m = b.build(vec![rs]);
    let patterns = find_patterns(&m);
    assert_eq!(patterns.len(), 1);
    for opts in [
        DecomposeOptions { bidirectional: false, unroll: false, ..Default::default() },
        DecomposeOptions { bidirectional: false, unroll: true, ..Default::default() },
        DecomposeOptions::default(),
    ] {
        let (out, _) = decompose(&m, &opts, &patterns);
        assert_equivalent(&m, &asyncify(&out));
    }
}

/// An einsum that is both an AllGather consumer and a ReduceScatter
/// producer: the cost model must pick exactly one pattern and the full
/// pipeline must stay equivalent and not slower.
#[test]
fn einsum_with_gather_and_scatter_through_pipeline() {
    let n = 4;
    let mut b = Builder::new("ag_and_rs", n);
    let x = b.parameter(f32s(&[64, 128]), "x");
    let ws = b.parameter(f32s(&[128, 64]), "w_shard");
    let w = b.all_gather(ws, 1, ReplicaGroups::full(n), "w");
    let e = b.einsum(x, w, DotDims::matmul(), "e");
    let rs = b.reduce_scatter(e, 0, ReplicaGroups::full(n), "rs");
    let m = b.build(vec![rs]);

    let patterns = find_patterns(&m);
    assert_eq!(patterns.len(), 2, "AG candidate and RS candidate");

    let machine = Machine::with_mesh(DeviceMesh::ring(n));
    let compiled = OverlapPipeline::new(OverlapOptions {
        disable_cost_gate: true,
        ..OverlapOptions::paper_default()
    })
    .run(&m, &machine)
    .expect("pipeline");
    assert_eq!(compiled.summaries.len(), 1, "one pattern per einsum");
    assert_equivalent(&m, &compiled.module);

    let base = simulate(&m, &machine).expect("baseline");
    let over = simulate_order(&compiled.module, &machine, &compiled.order).expect("sim");
    // Ungated on a toy shape may or may not win, but must stay sane.
    assert!(over.makespan() <= base.makespan() * 2.0);
}

/// Decomposition composes with dead code: a second, unused consumer of a
/// module parameter must survive DCE-free rebuilds untouched.
#[test]
fn decompose_preserves_unrelated_instructions() {
    let n = 2;
    let mut b = Builder::new("unrelated", n);
    let x = b.parameter(f32s(&[4, 8]), "x");
    let ws = b.parameter(f32s(&[8, 4]), "w_shard");
    let w = b.all_gather(ws, 1, ReplicaGroups::full(n), "w");
    let e = b.einsum(x, w, DotDims::matmul(), "e");
    let side = b.neg(x, "side_output");
    let m = b.build(vec![e, side]);
    let patterns = find_patterns(&m);
    let (out, _) = decompose(&m, &DecomposeOptions::default(), &patterns);
    assert_equivalent(&m, &asyncify(&out));
    assert_eq!(out.outputs().len(), 2);
}
