//! End-to-end fuzz: random mesh shapes and MLP sizes go through the Fig. 3
//! builder, the full overlap pipeline (gate disabled so everything
//! decomposes) and the SPMD interpreter; outputs must match the original
//! and the simulator must accept every schedule.

// The offline proptest stub expands `proptest!` to nothing, leaving the
// helpers and imports below unused; with the real crate nothing is dead.
#![allow(dead_code, unused_imports)]
use overlap::core::{OverlapOptions, OverlapPipeline, SchedulerKind};
use overlap::hlo::Module;
use overlap::mesh::{DeviceMesh, Machine};
use overlap::numerics::{run_spmd, Literal};
use overlap::sharding::mlp::{fig3_forward, MlpConfig};
use overlap::sim::simulate_order;
use proptest::prelude::*;

fn inputs_for(module: &Module, seed: u64) -> Vec<Vec<Literal>> {
    (0..module.num_partitions())
        .map(|d| {
            module
                .parameters()
                .iter()
                .enumerate()
                .map(|(p, &id)| {
                    Literal::from_fn(module.shape_of(id).clone(), move |i| {
                        let x = (i as u64 + 1)
                            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                            .wrapping_add(seed + (d * 31 + p * 7) as u64);
                        ((x >> 41) % 64) as f64 / 16.0 - 2.0
                    })
                })
                .collect()
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn random_fig3_mlps_survive_the_pipeline(
        mesh_m in 2usize..4,
        mesh_n in 2usize..4,
        batch_mult in 1usize..3,
        feat_mult in 1usize..3,
        hid_mult in 1usize..3,
        scheduler_pick in 0u8..2,
        seed in 0u64..1_000_000,
    ) {
        let mesh = DeviceMesh::new(vec![mesh_m, mesh_n]);
        // Sizes must divide both axes; lcm(2..4) = 12 keeps it safe.
        let cfg = MlpConfig {
            batch: 12 * batch_mult,
            feature: 12 * feat_mult,
            hidden: 12 * hid_mult,
        };
        let module = fig3_forward(&mesh, cfg).expect("builds");
        let machine = Machine::with_mesh(mesh);
        let scheduler =
            if scheduler_pick == 0 { SchedulerKind::BottomUp } else { SchedulerKind::TopDown };
        let compiled = OverlapPipeline::new(OverlapOptions {
            disable_cost_gate: true,
            scheduler,
            ..OverlapOptions::paper_default()
        })
        .run(&module, &machine)
        .expect("pipeline");
        prop_assert!(!compiled.summaries.is_empty());

        // The schedule simulates (validity) …
        let report =
            simulate_order(&compiled.module, &machine, &compiled.order).expect("simulates");
        prop_assert!(report.makespan() > 0.0);

        // … and the program still computes the same values.
        let inputs = inputs_for(&module, seed);
        let expect = run_spmd(&module, &inputs).expect("original runs");
        let got = run_spmd(&compiled.module, &inputs).expect("compiled runs");
        for d in 0..module.num_partitions() {
            prop_assert!(
                expect[0][d].allclose(&got[0][d], 1e-9),
                "device {d}: diff {}",
                expect[0][d].max_abs_diff(&got[0][d])
            );
        }
    }
}
