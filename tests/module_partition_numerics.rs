//! End-to-end check of the GSPMD-lite module partitioner: a dense module
//! run on one device and its SPMD partition run on N devices must agree —
//! and the partitioned program must still agree after the overlap
//! pipeline decomposes its collectives.

use overlap::core::{OverlapOptions, OverlapPipeline};
use overlap::hlo::{Builder, DType, DotDims, Module, Shape};
use overlap::mesh::{Axis, DeviceMesh, Machine};
use overlap::numerics::{kernels, run_spmd, Literal};
use overlap::sharding::{partition_module, TensorSharding};

fn f32s(dims: &[usize]) -> Shape {
    Shape::new(DType::F32, dims.to_vec())
}

/// Extracts device `pid`'s shard of a global literal under `sharding`.
fn extract_shard(
    global: &Literal,
    sharding: &TensorSharding,
    mesh: &DeviceMesh,
    pid: u32,
) -> Literal {
    let coords = mesh.coords(pid);
    let mut starts = vec![0usize; global.shape().rank()];
    let mut limits = global.shape().dims().to_vec();
    for d in 0..global.shape().rank() {
        if let Some(axis) = sharding.axis_of(d) {
            let parts = mesh.axis_size(axis);
            let size = global.shape().dim(d) / parts;
            starts[d] = coords[axis.0] * size;
            limits[d] = starts[d] + size;
        }
    }
    kernels::slice(global, &starts, &limits)
}

fn global_literal(shape: &Shape, seed: u64) -> Literal {
    Literal::from_fn(shape.clone(), move |i| {
        ((i as u64 * 29 + seed * 7) % 31) as f64 / 9.0 - 1.5
    })
}

/// A dense two-layer MLP with a residual add.
fn dense_model() -> Module {
    let mut b = Builder::new("dense", 1);
    let x = b.parameter(f32s(&[8, 16]), "x");
    let w1 = b.parameter(f32s(&[16, 32]), "w1");
    let w2 = b.parameter(f32s(&[32, 16]), "w2");
    let h = b.einsum(x, w1, DotDims::matmul(), "h");
    let y = b.einsum(h, w2, DotDims::matmul(), "y");
    let out = b.add(y, x, "residual");
    b.build(vec![out])
}

fn check_partitioned_matches_dense(
    mesh: &DeviceMesh,
    shardings: &[TensorSharding],
    also_pipeline: bool,
) {
    let dense = dense_model();
    let globals: Vec<Literal> = dense
        .parameters()
        .iter()
        .enumerate()
        .map(|(p, &id)| global_literal(dense.shape_of(id), p as u64 + 1))
        .collect();
    let dense_out =
        run_spmd(&dense, std::slice::from_ref(&globals)).expect("dense runs on one device");

    let p = partition_module(&dense, mesh, shardings).expect("partitions");
    p.module.verify().unwrap();
    let n = mesh.num_devices();
    let inputs: Vec<Vec<Literal>> = (0..n as u32)
        .map(|pid| {
            globals
                .iter()
                .zip(shardings)
                .map(|(g, s)| extract_shard(g, s, mesh, pid))
                .collect()
        })
        .collect();
    let check_outputs = |module: &Module| {
        let spmd_out = run_spmd(module, &inputs).expect("spmd runs");
        for pid in 0..n as u32 {
            let expect = extract_shard(&dense_out[0][0], &p.output_shardings[0], mesh, pid);
            assert!(
                spmd_out[0][pid as usize].allclose(&expect, 1e-9),
                "device {pid}: diff {}",
                spmd_out[0][pid as usize].max_abs_diff(&expect)
            );
        }
    };
    check_outputs(&p.module);

    if also_pipeline {
        let machine = Machine::with_mesh(mesh.clone());
        let compiled = OverlapPipeline::new(OverlapOptions {
            disable_cost_gate: true,
            ..OverlapOptions::paper_default()
        })
        .run(&p.module, &machine)
        .expect("pipeline");
        assert!(!compiled.summaries.is_empty(), "toy shapes still decompose when ungated");
        check_outputs(&compiled.module);
    }
}

#[test]
fn one_d_weight_sharding_matches_dense() {
    let mesh = DeviceMesh::ring(4);
    let batch = TensorSharding::replicated(2).with_dim(0, Axis(0));
    let row = TensorSharding::replicated(2).with_dim(0, Axis(0));
    check_partitioned_matches_dense(&mesh, &[batch, row.clone(), row], true);
}

#[test]
fn two_d_sharding_matches_dense() {
    let mesh = DeviceMesh::new(vec![2, 2]);
    // x: [batch/y, feature/x]; w1: [feature/y, hidden/x]; w2: [hidden/x, feature/y].
    let x = TensorSharding::new(vec![Some(Axis(1)), Some(Axis(0))]);
    let w1 = TensorSharding::new(vec![Some(Axis(1)), Some(Axis(0))]);
    let w2 = TensorSharding::new(vec![Some(Axis(0)), Some(Axis(1))]);
    // The residual add needs matching shardings; the propagated `y`
    // sharding is [y, x]... which matches x's sharding, so it works.
    check_partitioned_matches_dense(&mesh, &[x, w1, w2], true);
}

#[test]
fn replicated_everything_matches_dense() {
    let mesh = DeviceMesh::ring(2);
    let r = TensorSharding::replicated(2);
    check_partitioned_matches_dense(&mesh, &[r.clone(), r.clone(), r], false);
}
