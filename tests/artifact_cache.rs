//! End-to-end contract of the artifact cache: a hit must be
//! bit-identical to a cold compile — same module bytes, same schedule,
//! same simulated makespan bits — whether the hit comes from the
//! in-memory tier, the disk tier, or a rayon worker racing seven
//! siblings for the same key (`RAYON_NUM_THREADS` > 1).

use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{SystemTime, UNIX_EPOCH};

use overlap::core::{ArtifactCache, Compiled, OverlapOptions, OverlapPipeline};
use overlap::hlo::{Builder, DType, DotDims, Module, ReplicaGroups, Shape};
use overlap::mesh::Machine;
use overlap::models::{Arch, ModelConfig, PartitionStrategy};
use overlap::sim::simulate_order_with;
use overlap_bench::{run_comparisons, run_comparisons_cached};
use overlap_json::ToJson;

fn demo_module(n: usize) -> Module {
    let mut b = Builder::new("cache_e2e", n);
    let x = b.parameter(Shape::new(DType::F32, vec![64, 32]), "x");
    let w = b.parameter(Shape::new(DType::F32, vec![32, 256 / n]), "w_shard");
    let wf = b.all_gather(w, 1, ReplicaGroups::full(n), "w");
    let y = b.einsum(x, wf, DotDims::matmul(), "y");
    b.build(vec![y])
}

/// Bit-level equality of two compile results, including the simulated
/// makespan recomputed from each result's own cost table.
fn assert_bit_identical(cold: &Compiled, hit: &Compiled, machine: &Machine) {
    assert_eq!(cold.module, hit.module);
    assert_eq!(cold.module.identity_fingerprint(), hit.module.identity_fingerprint());
    assert_eq!(cold.order, hit.order);
    assert_eq!(cold.summaries, hit.summaries);
    assert_eq!(cold.decisions, hit.decisions);
    let a = simulate_order_with(&cold.cost_table, &cold.module, machine, &cold.order)
        .expect("cold simulates");
    let b = simulate_order_with(&hit.cost_table, &hit.module, machine, &hit.order)
        .expect("hit simulates");
    assert_eq!(a.makespan().to_bits(), b.makespan().to_bits());
}

fn unique_temp_dir(tag: &str) -> PathBuf {
    static SALT: AtomicU64 = AtomicU64::new(0);
    let nanos = SystemTime::now().duration_since(UNIX_EPOCH).unwrap().as_nanos();
    std::env::temp_dir().join(format!(
        "overlap-{tag}-{}-{nanos}-{}",
        std::process::id(),
        SALT.fetch_add(1, Ordering::Relaxed)
    ))
}

#[test]
fn memory_hit_matches_cold_compile_bit_for_bit() {
    let module = demo_module(8);
    let machine = Machine::tpu_v4_like(8);
    let pipeline = OverlapPipeline::new(OverlapOptions::paper_default());
    let cold = pipeline.run(&module, &machine).expect("cold compile");

    let cache = ArtifactCache::in_memory();
    let first = pipeline.compile_cached(&module, &machine, &cache).expect("fill");
    let hit = pipeline.compile_cached(&module, &machine, &cache).expect("hit");
    assert_bit_identical(&cold, &first, &machine);
    assert_bit_identical(&cold, &hit, &machine);
    assert_eq!(cache.stats().misses, 1);
    assert_eq!(cache.stats().memory_hits, 1);
}

#[test]
fn racing_threads_all_receive_the_cold_artifact() {
    let module = demo_module(8);
    let machine = Machine::tpu_v4_like(8);
    let pipeline = OverlapPipeline::new(OverlapOptions::paper_default());
    let cold = pipeline.run(&module, &machine).expect("cold compile");

    let cache = ArtifactCache::in_memory();
    let results: Vec<Compiled> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..8)
            .map(|_| {
                s.spawn(|| pipeline.compile_cached(&module, &machine, &cache).expect("compiles"))
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("no panic")).collect()
    });
    for got in &results {
        assert_bit_identical(&cold, got, &machine);
    }
    // Single flight: one leader compiled, everyone else waited for it.
    assert_eq!(cache.stats().misses, 1);
    assert_eq!(cache.stats().memory_hits, 7);
}

#[test]
fn rayon_sweep_with_warm_cache_is_byte_identical_to_uncached() {
    // The figure drivers fan the model zoo over rayon workers sharing
    // one cache; under any worker count the serialized sweep must not
    // change by a byte between uncached, cold-cache and warm-cache runs.
    let cfgs: Vec<ModelConfig> = [(8usize, 256usize, 1024usize), (16, 256, 1024), (8, 512, 2048)]
        .into_iter()
        .enumerate()
        .map(|(i, (chips, model_dim, ff_dim))| ModelConfig {
            name: format!("cache_e2e_{i}"),
            params: 1e9,
            layers: 4,
            model_dim,
            ff_dim,
            batch: chips * 2,
            seq_len: 64,
            chips,
            arch: Arch::Decoder,
            strategy: PartitionStrategy::TwoD,
        })
        .collect();
    let uncached = run_comparisons(&cfgs).to_json().to_string();
    let cache = ArtifactCache::in_memory();
    let cold = run_comparisons_cached(&cfgs, &cache).to_json().to_string();
    let warm = run_comparisons_cached(&cfgs, &cache).to_json().to_string();
    assert_eq!(uncached, cold);
    assert_eq!(uncached, warm);
    assert_eq!(cache.stats().misses, cfgs.len() as u64);
    assert_eq!(cache.stats().hits(), cfgs.len() as u64);
}

#[test]
fn disk_tier_round_trips_and_rejects_corruption() {
    let dir = unique_temp_dir("cache-e2e");
    let module = demo_module(8);
    let machine = Machine::tpu_v4_like(8);
    let pipeline = OverlapPipeline::new(OverlapOptions::paper_default());
    let cold = pipeline.run(&module, &machine).expect("cold compile");

    // Fill the disk tier from one "process"...
    let writer = ArtifactCache::with_disk_dir(&dir);
    pipeline.compile_cached(&module, &machine, &writer).expect("fill");
    let files: Vec<_> = fs::read_dir(&dir)
        .expect("cache dir exists")
        .map(|e| e.expect("entry").path())
        .collect();
    assert_eq!(files.len(), 1, "one artifact file per key");

    // ...and hit it from a fresh one (empty memory tier).
    let reader = ArtifactCache::with_disk_dir(&dir);
    let hit = pipeline.compile_cached(&module, &machine, &reader).expect("disk hit");
    assert_bit_identical(&cold, &hit, &machine);
    assert_eq!(reader.stats().disk_hits, 1);
    assert_eq!(reader.stats().misses, 0);

    // A corrupt file must read as a miss (recompile), never an error.
    fs::write(&files[0], "{ definitely not an artifact").expect("corrupt");
    let recovering = ArtifactCache::with_disk_dir(&dir);
    let recompiled =
        pipeline.compile_cached(&module, &machine, &recovering).expect("recovers");
    assert_bit_identical(&cold, &recompiled, &machine);
    assert_eq!(recovering.stats().disk_hits, 0);
    assert_eq!(recovering.stats().misses, 1);

    fs::remove_dir_all(&dir).ok();
}
