//! Properties of the structural fingerprint behind the artifact cache.
//!
//! The cache key must be (1) stable across serde round-trips, (2) stable
//! under renaming (names are reporting metadata; the cache separately
//! guards exact identity before serving a hit), and (3) sensitive to
//! every structural edit — the same corruption catalogue that
//! `tests/serde_roundtrip.rs` feeds to `Module::verify` must also flip
//! the fingerprint, or a corrupt cache file could masquerade as a hit.

use overlap::hlo::{Builder, DType, DotDims, Module, ReplicaGroups, Shape};
use overlap::json::{FromJson, Json, ToJson};
use proptest::prelude::*;

fn demo_module(n: usize, names: [&str; 4]) -> Module {
    let mut b = Builder::new("fp_demo", n);
    let x = b.parameter(Shape::new(DType::F32, vec![64, 32]), names[0]);
    let w = b.parameter(Shape::new(DType::F32, vec![32, 128 / n]), names[1]);
    let wf = b.all_gather(w, 1, ReplicaGroups::full(n), names[2]);
    let y = b.einsum(x, wf, DotDims::matmul(), names[3]);
    b.build(vec![y])
}

#[test]
fn fingerprint_is_stable_across_json_roundtrips() {
    for n in [2usize, 4, 8] {
        let m = demo_module(n, ["x", "w_shard", "w", "y"]);
        let back = Module::from_json_str(&m.to_json().to_string()).expect("decode");
        assert_eq!(m.fingerprint(), back.fingerprint(), "structural key drifted (n={n})");
        assert_eq!(
            m.identity_fingerprint(),
            back.identity_fingerprint(),
            "identity key drifted (n={n})"
        );
    }
}

#[test]
fn fingerprint_ignores_names_but_identity_does_not() {
    let a = demo_module(4, ["x", "w_shard", "w", "y"]);
    let b = demo_module(4, ["act", "wt", "gathered", "out"]);
    assert_eq!(a.fingerprint(), b.fingerprint(), "renaming must not change the cache key");
    assert_ne!(
        a.identity_fingerprint(),
        b.identity_fingerprint(),
        "the hit guard must tell renamed modules apart"
    );
}

#[test]
fn renaming_through_the_wire_preserves_the_structural_key() {
    // Rename via the JSON layer (the path an external producer takes)
    // rather than the builder.
    let m = demo_module(4, ["x", "w_shard", "w", "y"]);
    let mut v = m.to_json();
    v["name"] = Json::from("something_else");
    for i in 0..4 {
        v["instrs"][i]["name"] = Json::from(format!("renamed_{i}"));
    }
    let renamed = Module::from_json(&v).expect("renamed module decodes");
    renamed.verify().expect("renaming keeps the module valid");
    assert_eq!(m.fingerprint(), renamed.fingerprint());
    assert_ne!(m.identity_fingerprint(), renamed.identity_fingerprint());
}

/// Applies `tamper` to the module's JSON and asserts that, whenever the
/// result still decodes, its structural fingerprint differs from the
/// original's. These are exactly the corruption classes
/// `tests/serde_roundtrip.rs` shows `Module::verify` rejecting; the
/// fingerprint must flip on them too so the cache detects stale or
/// corrupt entries by mismatch instead of trusting the file name.
fn assert_fingerprint_flips(tamper: impl FnOnce(&mut Json), what: &str) {
    let m = demo_module(4, ["x", "w_shard", "w", "y"]);
    let fp = m.fingerprint();
    let mut v = m.to_json();
    tamper(&mut v);
    if let Ok(mutated) = Module::from_json(&v) {
        assert_ne!(mutated.fingerprint(), fp, "fingerprint blind to: {what}");
    }
}

#[test]
fn fingerprint_flips_on_dangling_operand() {
    assert_fingerprint_flips(
        |v| v["instrs"][3]["operands"][0] = Json::from(999u64),
        "operand id past the arena end",
    );
}

#[test]
fn fingerprint_flips_on_forward_reference() {
    assert_fingerprint_flips(
        |v| v["instrs"][3]["operands"][0] = Json::from(3u64),
        "self/forward operand reference",
    );
}

#[test]
fn fingerprint_flips_on_shape_edit() {
    assert_fingerprint_flips(
        |v| v["instrs"][2]["shape"]["dims"][1] = Json::from(64u64),
        "all-gather output shape edit",
    );
}

#[test]
fn fingerprint_flips_on_output_rewire() {
    assert_fingerprint_flips(|v| v["outputs"][0] = Json::from(2u64), "entry output rewired");
}

#[test]
fn fingerprint_flips_on_partition_count_change() {
    assert_fingerprint_flips(
        |v| v["num_partitions"] = Json::from(2u64),
        "partition count change",
    );
}

#[test]
fn fingerprint_flips_on_operand_swap() {
    // Swapping einsum operands is structural even though every
    // instruction keeps its own cone hash.
    assert_fingerprint_flips(
        |v| {
            let lhs = v["instrs"][3]["operands"][0].clone();
            let rhs = v["instrs"][3]["operands"][1].clone();
            v["instrs"][3]["operands"][0] = rhs;
            v["instrs"][3]["operands"][1] = lhs;
        },
        "einsum operand swap",
    );
}

#[test]
fn fingerprint_flips_on_wire_annotation() {
    // The precision annotation is structural: a quantized collective
    // computes different bytes, so a cached lossless artifact must not
    // serve a quantized request (or vice versa).
    use overlap::hlo::{Op, WireFormat};
    let m = demo_module(4, ["x", "w_shard", "w", "y"]);
    let ag = m
        .ids()
        .find(|&id| matches!(m.instr(id).op(), Op::AllGather { .. }))
        .expect("collective");
    let fps: Vec<_> = [WireFormat::Bf16, WireFormat::int8(), WireFormat::Int8Block { block: 128 }]
        .into_iter()
        .map(|wire| {
            let mut q = m.clone();
            q.set_wire(ag, wire).expect("annotate");
            q.verify().expect("annotated module stays valid");
            // The annotation must also survive the JSON codec exactly.
            let back = Module::from_json_str(&q.to_json().to_string()).expect("decode");
            assert_eq!(back.instr(ag).op().wire(), wire, "wire lost in the codec");
            assert_eq!(q.fingerprint(), back.fingerprint());
            q.fingerprint()
        })
        .collect();
    assert_ne!(fps[0], m.fingerprint(), "bf16 annotation must flip the key");
    assert_ne!(fps[1], m.fingerprint(), "int8 annotation must flip the key");
    assert_ne!(fps[0], fps[1], "distinct wire formats must get distinct keys");
    assert_ne!(fps[1], fps[2], "distinct int8 block sizes must get distinct keys");
}

#[test]
fn lossless_wire_is_codec_and_fingerprint_invisible() {
    // An explicit lossless annotation is the default: no JSON field, no
    // hash bytes — old cache entries and old serialized modules stay
    // byte-identical.
    use overlap::hlo::{Op, WireFormat};
    let m = demo_module(4, ["x", "w_shard", "w", "y"]);
    let ag = m
        .ids()
        .find(|&id| matches!(m.instr(id).op(), Op::AllGather { .. }))
        .expect("collective");
    let mut q = m.clone();
    q.set_wire(ag, WireFormat::Lossless).expect("annotate");
    assert_eq!(m.fingerprint(), q.fingerprint());
    assert_eq!(m.to_json().to_string(), q.to_json().to_string());
    assert!(!m.to_json().to_string().contains("wire"));
}

#[test]
fn distinct_partitionings_get_distinct_keys() {
    let fps: Vec<_> = [2usize, 4, 8]
        .into_iter()
        .map(|n| demo_module(n, ["x", "w_shard", "w", "y"]).fingerprint())
        .collect();
    assert_ne!(fps[0], fps[1]);
    assert_ne!(fps[1], fps[2]);
    assert_ne!(fps[0], fps[2]);
}

proptest! {
    /// Random draws of the round-trip + rename properties: any
    /// partitioning and any names must round-trip to the same structural
    /// key, and a rename must never change it.
    #[test]
    fn roundtrip_and_rename_properties_hold(
        shards in prop::sample::select(vec![2usize, 4, 8, 16]),
        suffix in "[a-z]{1,8}",
    ) {
        let names = [
            format!("x_{suffix}"),
            format!("w_{suffix}"),
            format!("wf_{suffix}"),
            format!("y_{suffix}"),
        ];
        let named: [&str; 4] =
            [&names[0], &names[1], &names[2], &names[3]];
        let m = demo_module(shards, named);
        let back = Module::from_json_str(&m.to_json().to_string()).unwrap();
        prop_assert_eq!(m.fingerprint(), back.fingerprint());
        prop_assert_eq!(
            m.fingerprint(),
            demo_module(shards, ["a", "b", "c", "d"]).fingerprint()
        );
    }
}
