//! The AllReduce-splitting extension: Megatron-style layers (partial
//! einsum followed by `AllReduce`, §2.2's "instead of" strategy) become
//! decomposable after the §2.1 reassociation, stay numerically exact, and
//! get faster under the pipeline.

use overlap::core::{split_all_reduces, OverlapOptions, OverlapPipeline};
use overlap::hlo::{Builder, DType, DotDims, Module, Op, ReplicaGroups, Shape};
use overlap::mesh::{DeviceMesh, Machine};
use overlap::numerics::{run_spmd, Literal};
use overlap::sim::{simulate, simulate_order};

fn bf16(dims: &[usize]) -> Shape {
    Shape::new(DType::BF16, dims.to_vec())
}

/// Two Megatron layers: column-parallel then row-parallel matmul with an
/// AllReduce after the row-parallel one.
fn megatron_block(n: usize, tokens: usize, d: usize, f: usize) -> Module {
    let mut b = Builder::new("megatron_block", n);
    let x = b.parameter(bf16(&[tokens, d]), "x"); // replicated activations
    let w1 = b.parameter(bf16(&[d, f / n]), "w1"); // column-parallel
    let w2 = b.parameter(bf16(&[f / n, d]), "w2"); // row-parallel
    let h = b.einsum(x, w1, DotDims::matmul(), "h");
    let partial = b.einsum(h, w2, DotDims::matmul(), "partial");
    let out = b.all_reduce(partial, ReplicaGroups::full(n), "out");
    b.build(vec![out])
}

fn assert_equivalent(original: &Module, transformed: &Module) {
    let n = original.num_partitions();
    let inputs: Vec<Vec<Literal>> = (0..n)
        .map(|d| {
            original
                .parameters()
                .iter()
                .enumerate()
                .map(|(p, &id)| {
                    Literal::from_fn(original.shape_of(id).clone(), move |i| {
                        ((i * 11 + d * 5 + p * 3) % 17) as f64 / 8.0 - 1.0
                    })
                })
                .collect()
        })
        .collect();
    let expect = run_spmd(original, &inputs).expect("original");
    let got = run_spmd(transformed, &inputs).expect("transformed");
    for (e, g) in expect.iter().zip(&got) {
        for d in 0..n {
            assert!(
                e[d].allclose(&g[d], 1e-9),
                "device {d}: diff {}",
                e[d].max_abs_diff(&g[d])
            );
        }
    }
}

#[test]
fn split_is_numerically_exact() {
    let m = megatron_block(4, 8, 16, 32);
    let split = split_all_reduces(&m);
    split.verify().unwrap();
    assert_equivalent(&m, &split);
}

#[test]
fn split_plus_pipeline_is_numerically_exact() {
    let m = megatron_block(4, 8, 16, 32);
    let machine = Machine::with_mesh(DeviceMesh::ring(4));
    let compiled = OverlapPipeline::new(OverlapOptions {
        split_all_reduce: true,
        disable_cost_gate: true,
        ..OverlapOptions::paper_default()
    })
    .run(&m, &machine)
    .expect("pipeline");
    assert!(!compiled.summaries.is_empty(), "the split exposes a pattern");
    assert_equivalent(&m, &compiled.module);
}

#[test]
fn split_pipeline_beats_unsplit_on_megatron() {
    // Production-sized Megatron layer where the AllReduce is expensive.
    let n = 8;
    let m = megatron_block(n, 8192, 4096, 16384);
    let machine = Machine::with_mesh(DeviceMesh::ring(n));
    let baseline = simulate(&m, &machine).expect("baseline");

    let unsplit = OverlapPipeline::new(OverlapOptions::paper_default())
        .run(&m, &machine)
        .expect("pipeline");
    assert!(
        unsplit.summaries.is_empty(),
        "without the split there is nothing to decompose"
    );

    let split = OverlapPipeline::new(OverlapOptions {
        split_all_reduce: true,
        ..OverlapOptions::paper_default()
    })
    .run(&m, &machine)
    .expect("pipeline");
    assert!(!split.summaries.is_empty());
    assert_eq!(
        split.module.count_live(|i| matches!(i.op(), Op::AllReduce { .. })),
        0
    );
    let over = simulate_order(&split.module, &machine, &split.order).expect("simulate");
    assert!(
        over.makespan() < baseline.makespan(),
        "overlap {:.4e} vs baseline {:.4e}",
        over.makespan(),
        baseline.makespan()
    );
}
