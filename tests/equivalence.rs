//! Semantic-equivalence tests for the looped collective-einsum rewrite.
//!
//! The paper's transformation claims to be "semantically equivalent to the
//! original collective-computation operation pair" (§1). These tests check
//! that claim mechanically: for every AllGather case (free / contracting /
//! batch partitioned dimension), the ReduceScatter case, every §5.4
//! optimization (unrolling, bidirectional transfer, pad-max concat) and
//! several ring lengths and subgroup layouts, the transformed module must
//! produce the same per-device outputs as the original under the SPMD
//! interpreter.

use overlap::core::{asyncify, decompose, find_patterns, fuse, DecomposeOptions, FusionOptions};
use overlap::hlo::{Builder, DType, DotDims, Module, ReplicaGroups, Shape};
use overlap::mesh::{Axis, DeviceMesh};
use overlap::numerics::{run_spmd, Literal};
use overlap::sharding::mlp::{fig3_forward, MlpConfig};

fn f32s(dims: &[usize]) -> Shape {
    Shape::new(DType::F32, dims.to_vec())
}

/// Deterministic pseudo-random literal (values in roughly [-1, 1]).
fn test_literal(shape: &Shape, seed: u64) -> Literal {
    Literal::from_fn(shape.clone(), move |i| {
        let x = (i as u64 + 1).wrapping_mul(6364136223846793005).wrapping_add(seed);
        
        ((x >> 33) % 2048) as f64 / 1024.0 - 1.0
    })
}

/// Runs `original` and its transformed version on identical random inputs
/// and asserts per-device output equality.
fn assert_equivalent(original: &Module, transformed: &Module, tol: f64) {
    original.verify().expect("original verifies");
    transformed.verify().expect("transformed verifies");
    let n = original.num_partitions();
    let params = original.parameters();
    assert_eq!(params.len(), transformed.parameters().len(), "parameter count preserved");
    let inputs: Vec<Vec<Literal>> = (0..n)
        .map(|d| {
            params
                .iter()
                .enumerate()
                .map(|(p, &id)| {
                    test_literal(original.shape_of(id), (d * 131 + p * 17 + 7) as u64)
                })
                .collect()
        })
        .collect();
    let expect = run_spmd(original, &inputs).expect("original runs");
    let got = run_spmd(transformed, &inputs).expect("transformed runs");
    assert_eq!(expect.len(), got.len(), "output arity");
    for (o, (e_dev, g_dev)) in expect.iter().zip(&got).enumerate() {
        for d in 0..n {
            assert!(
                e_dev[d].allclose(&g_dev[d], tol),
                "output {o} differs on device {d}: max abs diff {}",
                e_dev[d].max_abs_diff(&g_dev[d])
            );
        }
    }
}

fn all_option_combos() -> Vec<DecomposeOptions> {
    let mut v = Vec::new();
    for unroll in [false, true] {
        for bidirectional in [false, true] {
            for pad_max_concat in [false, true] {
                // Chunked windows only engage on the unidirectional
                // all-gather path; infeasible widths fall back to 1, so
                // every combination stays numerically checkable.
                for chunk in [1, 2] {
                    // Exact-equivalence suite: wire stays lossless.
                    v.push(DecomposeOptions {
                        unroll,
                        bidirectional,
                        pad_max_concat,
                        chunk,
                        ..Default::default()
                    });
                }
            }
        }
    }
    v
}

fn check_all_variants(m: &Module) {
    let mut patterns = find_patterns(m);
    assert!(!patterns.is_empty(), "module must contain a decomposable pattern");
    // At most one pattern per einsum (the pipeline's cost gate normally
    // guarantees this); keep the first candidate.
    let mut seen = std::collections::HashSet::new();
    patterns.retain(|p| seen.insert(p.einsum));
    for opts in all_option_combos() {
        let (out, summaries) = decompose(m, &opts, &patterns);
        assert_eq!(summaries.len(), patterns.len(), "every pattern decomposed");
        assert_equivalent(m, &out, 1e-9);
        // The asyncified form must stay equivalent too.
        let asynced = asyncify(&out);
        assert_equivalent(m, &asynced, 1e-9);
    }
}

/// Case 1: the gathered dimension is a free (non-contracting) dimension.
fn ag_free_module(n: usize, gathered_is_lhs: bool) -> Module {
    let mut b = Builder::new("ag_free", n);
    if gathered_is_lhs {
        // LHS [M, K] gathered along M (free).
        let xs = b.parameter(f32s(&[2, 6]), "x_shard");
        let w = b.parameter(f32s(&[6, 5]), "w");
        let x = b.all_gather(xs, 0, ReplicaGroups::full(n), "x");
        let e = b.einsum(x, w, DotDims::matmul(), "e");
        b.build(vec![e])
    } else {
        // RHS [K, N] gathered along N (free).
        let x = b.parameter(f32s(&[4, 6]), "x");
        let ws = b.parameter(f32s(&[6, 3]), "w_shard");
        let w = b.all_gather(ws, 1, ReplicaGroups::full(n), "w");
        let e = b.einsum(x, w, DotDims::matmul(), "e");
        b.build(vec![e])
    }
}

/// Case 2: the gathered dimension is contracting.
fn ag_contracting_module(n: usize, gathered_is_lhs: bool) -> Module {
    let mut b = Builder::new("ag_contract", n);
    if gathered_is_lhs {
        let xs = b.parameter(f32s(&[4, 3]), "x_shard"); // K sharded
        let w = b.parameter(f32s(&[3 * n, 5]), "w");
        let x = b.all_gather(xs, 1, ReplicaGroups::full(n), "x");
        let e = b.einsum(x, w, DotDims::matmul(), "e");
        b.build(vec![e])
    } else {
        let x = b.parameter(f32s(&[4, 3 * n]), "x");
        let ws = b.parameter(f32s(&[3, 5]), "w_shard");
        let w = b.all_gather(ws, 0, ReplicaGroups::full(n), "w");
        let e = b.einsum(x, w, DotDims::matmul(), "e");
        b.build(vec![e])
    }
}

/// Case 3: the gathered dimension is a batch dimension.
fn ag_batch_module(n: usize, gathered_is_lhs: bool) -> Module {
    let mut b = Builder::new("ag_batch", n);
    if gathered_is_lhs {
        let xs = b.parameter(f32s(&[2, 3, 4]), "x_shard"); // B sharded
        let w = b.parameter(f32s(&[2 * n, 4, 5]), "w");
        let x = b.all_gather(xs, 0, ReplicaGroups::full(n), "x");
        let e = b.einsum(x, w, DotDims::batch_matmul(), "e");
        b.build(vec![e])
    } else {
        let x = b.parameter(f32s(&[2 * n, 3, 4]), "x");
        let ws = b.parameter(f32s(&[2, 4, 5]), "w_shard");
        let w = b.all_gather(ws, 0, ReplicaGroups::full(n), "w");
        let e = b.einsum(x, w, DotDims::batch_matmul(), "e");
        b.build(vec![e])
    }
}

/// Einsum → ReduceScatter with the scattered dim owned by one operand.
fn rs_module(n: usize, scatter_lhs_dim: bool) -> Module {
    let mut b = Builder::new("rs", n);
    let x = b.parameter(f32s(&[2 * n, 6]), "x");
    let w = b.parameter(f32s(&[6, 3 * n]), "w");
    let e = b.einsum(x, w, DotDims::matmul(), "e");
    let rs = if scatter_lhs_dim {
        b.reduce_scatter(e, 0, ReplicaGroups::full(n), "rs")
    } else {
        b.reduce_scatter(e, 1, ReplicaGroups::full(n), "rs")
    };
    b.build(vec![rs])
}

#[test]
fn ag_free_dim_all_variants() {
    for n in [2, 3, 4] {
        for lhs in [false, true] {
            check_all_variants(&ag_free_module(n, lhs));
        }
    }
}

#[test]
fn ag_contracting_dim_all_variants() {
    for n in [2, 3, 4] {
        for lhs in [false, true] {
            check_all_variants(&ag_contracting_module(n, lhs));
        }
    }
}

#[test]
fn ag_batch_dim_all_variants() {
    for n in [2, 3, 4] {
        for lhs in [false, true] {
            check_all_variants(&ag_batch_module(n, lhs));
        }
    }
}

#[test]
fn einsum_rs_all_variants() {
    for n in [2, 3, 4, 8] {
        for lhs_dim in [false, true] {
            check_all_variants(&rs_module(n, lhs_dim));
        }
    }
}

#[test]
fn subgroup_rings_on_2d_mesh() {
    // Collectives along one axis of a [2, 4] mesh: each ring is a subgroup
    // of 4 partitions and the rank table is non-trivial.
    let mesh = DeviceMesh::new(vec![2, 4]);
    let n = mesh.num_devices();
    let groups = mesh.axis_groups(Axis(1));

    // AllGather case along the y axis.
    let mut b = Builder::new("sub_ag", n);
    let x = b.parameter(f32s(&[4, 8]), "x");
    let ws = b.parameter(f32s(&[8, 2]), "w_shard");
    let w = b.all_gather(ws, 1, groups.clone(), "w");
    let e = b.einsum(x, w, DotDims::matmul(), "e");
    let m = b.build(vec![e]);
    check_all_variants(&m);

    // ReduceScatter case along the y axis.
    let mut b = Builder::new("sub_rs", n);
    let x = b.parameter(f32s(&[4, 8]), "x");
    let w = b.parameter(f32s(&[8, 12]), "w");
    let e = b.einsum(x, w, DotDims::matmul(), "e");
    let rs = b.reduce_scatter(e, 1, groups, "rs");
    let m = b.build(vec![rs]);
    check_all_variants(&m);
}

#[test]
fn fused_module_stays_equivalent() {
    // Fusion is a grouping annotation; it must not change values, with
    // either heuristic.
    let m = rs_module(4, false);
    let patterns = find_patterns(&m);
    let (out, _) = decompose(&m, &DecomposeOptions::default(), &patterns);
    let asynced = asyncify(&out);
    for overlap_aware in [false, true] {
        let fused = fuse(&asynced, &FusionOptions { overlap_aware });
        assert_equivalent(&m, &fused, 1e-9);
    }
}

#[test]
fn fig3_mlp_pipeline_equivalence() {
    // The full Fig. 3 two-layer MLP on a 2-D mesh: three AllGathers and a
    // ReduceScatter, all decomposed at once.
    let mesh = DeviceMesh::new(vec![2, 2]);
    let m = fig3_forward(&mesh, MlpConfig { batch: 8, feature: 8, hidden: 8 }).unwrap();
    check_all_variants(&m);
}

#[test]
fn attention_layer_decomposes_equivalently() {
    // The full multi-head attention layer (rank-4 activations, batched
    // attention einsums) on a [2, 2] mesh: every decomposable pattern in
    // it must stay numerically exact through the rewrite.
    let cfg = overlap::models::ModelConfig {
        name: "attn_eq".into(),
        params: 0.0,
        layers: 1,
        model_dim: 8,
        ff_dim: 16,
        batch: 4,
        seq_len: 4,
        chips: 4,
        arch: overlap::models::Arch::Decoder,
        strategy: overlap::models::PartitionStrategy::TwoD,
    };
    let m = overlap::models::build_attention_layer(&cfg, 4).unwrap();
    check_all_variants(&m);
}

/// A Table-1-shaped configuration scaled down until `run_spmd` can
/// execute the full stacked forward/backward module in a test.
fn tiny_stacked_config() -> overlap::models::ModelConfig {
    overlap::models::ModelConfig {
        name: "win_eq".into(),
        params: 0.0,
        layers: 2,
        model_dim: 8,
        ff_dim: 16,
        batch: 4,
        seq_len: 4,
        chips: 4,
        arch: overlap::models::Arch::Decoder,
        strategy: overlap::models::PartitionStrategy::TwoD,
    }
}

#[test]
fn windowed_pipeline_compile_stays_equivalent() {
    // The cross-layer scheduling window reorders instructions and widens
    // what the decomposition may overlap, but the compiled module must
    // stay a pure refinement: same per-device outputs as the original
    // stacked forward/backward module at every window width.
    use overlap::core::{OverlapOptions, OverlapPipeline, StrategySpec};
    let cfg = tiny_stacked_config();
    let module = cfg.window_module(2);
    let machine = cfg.machine();
    for window in [1usize, 2] {
        let options = OverlapOptions::with_strategy(
            StrategySpec::paper_default().with_window_layers(window),
        );
        let compiled =
            OverlapPipeline::new(options).run(&module, &machine).expect("windowed compile");
        assert_equivalent(&module, &compiled.module, 1e-9);
    }
}

#[test]
fn window_one_is_byte_identical_on_single_scope_modules() {
    // Every committed figure compiles single-scope (untagged) modules;
    // `window_layers` must leave those artifacts byte-identical, both at
    // the default width of 1 and at any wider setting.
    use overlap::core::{OverlapOptions, OverlapPipeline, StrategySpec};
    let cfg = tiny_stacked_config();
    let module = cfg.layer_module();
    let machine = cfg.machine();
    let compile = |window: usize| {
        let options = OverlapOptions::with_strategy(
            StrategySpec::paper_default().with_window_layers(window),
        );
        OverlapPipeline::new(options).run(&module, &machine).expect("compile")
    };
    let default = OverlapPipeline::new(OverlapOptions::paper_default())
        .run(&module, &machine)
        .expect("default compile");
    for window in [1usize, 4] {
        let windowed = compile(window);
        assert_eq!(default.order, windowed.order, "window {window} must be inert");
        assert_eq!(
            default.module.identity_fingerprint(),
            windowed.module.identity_fingerprint(),
            "window {window} changed the compiled module"
        );
    }
}

#[test]
fn chained_patterns_decompose_together() {
    // Two dependent AG-einsum layers (Fig. 2 style): both decomposed.
    let n = 4;
    let mut b = Builder::new("two_layers", n);
    let x = b.parameter(f32s(&[2, 8]), "x");
    let w1s = b.parameter(f32s(&[8, 3]), "w1_shard");
    let w2s = b.parameter(f32s(&[3, 2]), "w2_shard");
    let w1 = b.all_gather(w1s, 1, ReplicaGroups::full(n), "w1");
    let h = b.einsum(x, w1, DotDims::matmul(), "h");
    let w2 = b.all_gather(w2s, 0, ReplicaGroups::full(n), "w2");
    let y = b.einsum(h, w2, DotDims::matmul(), "y");
    let m = b.build(vec![y]);
    let patterns = find_patterns(&m);
    assert_eq!(patterns.len(), 2);
    check_all_variants(&m);
}
