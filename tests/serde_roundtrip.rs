//! Serialization round-trips and untrusted-input hardening.
//!
//! `overlapc` (and any downstream embedding) exchanges modules as JSON
//! through the workspace's own wire layer (`overlap::json`); these tests
//! pin down that (1) serialization is lossless for both raw and
//! fully-compiled modules, (2) a round-tripped module behaves
//! identically under the simulator and the SPMD interpreter, and
//! (3) `Module::verify` rejects the corruption classes a hostile or
//! buggy producer could introduce (dangling operands, forward
//! references, shape lies, out-of-range outputs).

use overlap::core::{OverlapOptions, OverlapPipeline};
use overlap::hlo::{Builder, DType, DotDims, Module, ReplicaGroups, Shape};
use overlap::json::{FromJson, Json, ToJson};
use overlap::mesh::Machine;
use overlap::numerics::{run_spmd, Literal};
use overlap::sim::{simulate, simulate_order};

fn demo_module(n: usize) -> Module {
    let mut b = Builder::new("roundtrip_demo", n);
    let x = b.parameter(Shape::new(DType::F32, vec![64, 32]), "x");
    let w = b.parameter(Shape::new(DType::F32, vec![32, 128 / n]), "w_shard");
    let wf = b.all_gather(w, 1, ReplicaGroups::full(n), "w");
    let y = b.einsum(x, wf, DotDims::matmul(), "y");
    b.build(vec![y])
}

#[test]
fn module_json_roundtrip_is_lossless() {
    let m = demo_module(4);
    let text = m.to_json().to_string();
    let back = Module::from_json_str(&text).expect("deserialize");
    back.verify().expect("roundtripped module verifies");
    assert_eq!(m, back);
}

#[test]
fn compiled_module_roundtrip_preserves_simulation() {
    // A compiled module exercises the full op vocabulary: async permute
    // pairs, dynamic slices/updates, rank tables, fusion groups.
    let m = demo_module(8);
    let machine = Machine::tpu_v4_like(8);
    let compiled = OverlapPipeline::new(OverlapOptions {
        disable_cost_gate: true,
        ..OverlapOptions::paper_default()
    })
    .run(&m, &machine)
    .expect("pipeline");

    let text = compiled.module.to_json().to_string();
    let back = Module::from_json_str(&text).expect("deserialize");
    back.verify().expect("compiled roundtrip verifies");
    assert_eq!(compiled.module, back);

    let a = simulate_order(&compiled.module, &machine, &compiled.order).expect("sim");
    let b = simulate_order(&back, &machine, &compiled.order).expect("sim");
    assert_eq!(a.makespan(), b.makespan());
}

#[test]
fn roundtrip_preserves_numerics() {
    let m = demo_module(4);
    let text = m.to_json().to_string();
    let back = Module::from_json_str(&text).expect("deserialize");

    let inputs: Vec<Vec<Literal>> = (0..4)
        .map(|d| {
            m.parameters()
                .iter()
                .enumerate()
                .map(|(p, &id)| {
                    Literal::from_fn(m.shape_of(id).clone(), move |i| {
                        ((i * 31 + p * 7 + d) % 13) as f64 / 7.0 - 0.9
                    })
                })
                .collect()
        })
        .collect();
    let expect = run_spmd(&m, &inputs).expect("original");
    let got = run_spmd(&back, &inputs).expect("roundtrip");
    for (e_dev, g_dev) in expect.iter().zip(&got) {
        for (e, g) in e_dev.iter().zip(g_dev) {
            assert!(e.allclose(g, 1e-12));
        }
    }
}

/// Applies `tamper` to the module's JSON value and asserts the result
/// either fails to decode or fails verification.
fn assert_rejected(tamper: impl FnOnce(&mut Json), what: &str) {
    let m = demo_module(4);
    let mut v = m.to_json();
    tamper(&mut v);
    match Module::from_json(&v) {
        Err(_) => {} // rejected at the decode layer: fine
        Ok(back) => {
            assert!(back.verify().is_err(), "verify must reject: {what}");
        }
    }
}

#[test]
fn verify_rejects_dangling_operand() {
    assert_rejected(
        |v| v["instrs"][3]["operands"][0] = Json::from(999u64),
        "operand id past the arena end",
    );
}

#[test]
fn verify_rejects_forward_reference() {
    // The einsum (index 3) referring to itself breaks the topological
    // arena-order invariant.
    assert_rejected(
        |v| v["instrs"][3]["operands"][0] = Json::from(3u64),
        "self/forward operand reference",
    );
}

#[test]
fn verify_rejects_shape_lie() {
    // Claim the AllGather produces half the gathered size.
    assert_rejected(
        |v| v["instrs"][2]["shape"]["dims"][1] = Json::from(64u64),
        "all-gather output shape inconsistent with groups",
    );
}

#[test]
fn verify_rejects_out_of_range_output() {
    assert_rejected(|v| v["outputs"][0] = Json::from(77u64), "output id out of range");
}

#[test]
fn verify_rejects_zero_partitions() {
    // A replica group mentioning partition 7 on a 2-partition module.
    assert_rejected(
        |v| v["num_partitions"] = Json::from(2u64),
        "replica group member outside the partition count",
    );
}

#[test]
fn chrome_trace_is_valid_json() {
    let m = demo_module(8);
    let machine = Machine::tpu_v4_like(8);
    let report = simulate(&m, &machine).expect("sim");
    let trace = report.timeline().to_chrome_trace();
    let parsed = Json::parse(&trace).expect("trace parses");
    let events = parsed
        .as_array()
        .or_else(|| parsed.get("traceEvents").and_then(Json::as_array))
        .expect("trace events array");
    assert!(!events.is_empty());
    for e in events {
        assert!(e.get("name").is_some(), "every event carries a name");
        assert!(e.get("ts").is_some(), "every event carries a timestamp");
    }
}

#[test]
fn report_serializes() {
    let m = demo_module(8);
    let machine = Machine::tpu_v4_like(8);
    let report = simulate(&m, &machine).expect("sim");
    let text = report.to_json().to_string();
    assert!(text.contains("makespan"));
}
