//! Conformance with the paper's illustrative figures: the exact
//! `{source, destination}` pairs of §5.1 and the shard-transfer schedules
//! of Figs. 6, 7, 9 and 10, read directly off the emitted modules.

use overlap::core::{decompose, find_patterns, DecomposeOptions};
use overlap::hlo::{Builder, DType, DotDims, Module, Op, ReplicaGroups, Shape};

fn f32s(dims: &[usize]) -> Shape {
    Shape::new(DType::F32, dims.to_vec())
}

fn ag_module(n: usize) -> Module {
    let mut b = Builder::new("ag", n);
    let x = b.parameter(f32s(&[8, 16]), "x");
    let w = b.parameter(f32s(&[16, 4]), "w");
    let g = b.all_gather(w, 1, ReplicaGroups::full(n), "g");
    let e = b.einsum(x, g, DotDims::matmul(), "e");
    b.build(vec![e])
}

fn rs_module(n: usize) -> Module {
    let mut b = Builder::new("rs", n);
    let x = b.parameter(f32s(&[8, 16]), "x");
    let w = b.parameter(f32s(&[16, 4 * n]), "w");
    let e = b.einsum(x, w, DotDims::matmul(), "e");
    let rs = b.reduce_scatter(e, 1, ReplicaGroups::full(n), "rs");
    b.build(vec![rs])
}

fn permute_pair_lists(m: &Module) -> Vec<Vec<(u32, u32)>> {
    m.iter()
        .filter_map(|(_, ins)| match ins.op() {
            Op::CollectivePermute { pairs, .. } => Some(pairs.clone()),
            _ => None,
        })
        .collect()
}

/// §5.1: "The {source, destination} pairs of a CollectivePermute at each
/// iteration are constructed as {0, N−1}, {1, 0}, {2, 1}, … {N−1, N−2}."
#[test]
fn unidirectional_pairs_match_section_5_1() {
    let n = 4;
    let opts = DecomposeOptions { bidirectional: false, ..Default::default() };
    let expected = vec![(0, 3), (1, 0), (2, 1), (3, 2)];

    let ag = ag_module(n);
    let (out, _) = decompose(&ag, &opts, &find_patterns(&ag));
    let cps = permute_pair_lists(&out);
    assert_eq!(cps.len(), n - 1, "Fig. 6: N-1 transfers for the AllGather case");
    for pairs in &cps {
        assert_eq!(pairs, &expected);
    }

    let rs = rs_module(n);
    let (out, _) = decompose(
        &rs,
        &DecomposeOptions { bidirectional: false, unroll: false, ..Default::default() },
        &find_patterns(&rs),
    );
    let cps = permute_pair_lists(&out);
    assert_eq!(cps.len(), n, "Fig. 7: N transfers for the ReduceScatter case");
    for pairs in &cps {
        assert_eq!(pairs, &expected);
    }
}

/// Fig. 9: bidirectional AllGather — a clockwise prologue shift, then
/// counterclockwise/clockwise pairs alternating in the loop.
#[test]
fn bidirectional_ag_matches_fig_9() {
    let n = 4;
    let ag = ag_module(n);
    let (out, summaries) = decompose(&ag, &DecomposeOptions::default(), &find_patterns(&ag));
    assert!(summaries[0].bidirectional);
    let cps = permute_pair_lists(&out);
    let clockwise = vec![(0u32, 1u32), (1, 2), (2, 3), (3, 0)];
    let counterclockwise = vec![(0u32, 3u32), (1, 0), (2, 1), (3, 2)];
    // Prologue: one clockwise shift.
    assert_eq!(cps[0], clockwise);
    // Loop (m-1 = 1 iteration of transfers): one each way.
    assert_eq!(cps.len(), 3);
    assert!(cps[1..].contains(&counterclockwise));
    assert!(cps[1..].contains(&clockwise));
}

/// Fig. 10: bidirectional ReduceScatter — accumulators travel both ways
/// and the epilogue shifts the clockwise one once more.
#[test]
fn bidirectional_rs_matches_fig_10() {
    let n = 4;
    let rs = rs_module(n);
    let (out, summaries) = decompose(&rs, &DecomposeOptions::default(), &find_patterns(&rs));
    assert!(summaries[0].bidirectional);
    let cps = permute_pair_lists(&out);
    let clockwise = vec![(0u32, 1u32), (1, 2), (2, 3), (3, 0)];
    // Loop transfers: (m-1) per direction; epilogue: one more clockwise.
    assert_eq!(cps.len(), 3);
    assert_eq!(cps.last().unwrap(), &clockwise, "epilogue aligns the clockwise chain");
}

/// Fig. 8: the unrolled (two-chain) ReduceScatter hops two ring positions
/// between contributions and ends with the one-hop alignment epilogue.
#[test]
fn unrolled_rs_matches_fig_8() {
    let n = 4;
    let rs = rs_module(n);
    let opts = DecomposeOptions { bidirectional: false, unroll: true, ..Default::default() };
    let (out, _) = decompose(&rs, &opts, &find_patterns(&rs));
    let cps = permute_pair_lists(&out);
    let two_left = vec![(0u32, 2u32), (1, 3), (2, 0), (3, 1)];
    let one_right = vec![(0u32, 1u32), (1, 2), (2, 3), (3, 0)];
    // Two chains × (m-1)=1 two-hop transfer each, then the epilogue
    // "{0,1}, {1,2}, {2,3}, {3,0}" the §5.4.1 text spells out.
    assert_eq!(cps.len(), 3);
    assert_eq!(cps[0], two_left);
    assert_eq!(cps[1], two_left);
    assert_eq!(cps[2], one_right);
}

/// Fig. 4's accounting: the AllGather case needs one partial einsum and
/// one `DynamicUpdateSlice` per shard, with the final result shape equal
/// to the original einsum's.
#[test]
fn ag_case_accounting_matches_fig_4() {
    for n in [2usize, 4, 8] {
        let ag = ag_module(n);
        let opts = DecomposeOptions { bidirectional: false, ..Default::default() };
        let (out, summaries) = decompose(&ag, &opts, &find_patterns(&ag));
        assert_eq!(summaries[0].partial_einsums, n);
        assert_eq!(
            out.count_live(|i| matches!(i.op(), Op::DynamicUpdateSlice)),
            n,
            "one update per shard"
        );
        assert_eq!(out.shape_of(out.outputs()[0]).dims(), &[8, 4 * n]);
    }
}
