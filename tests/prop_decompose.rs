//! Property-based equivalence: for randomly drawn shapes, partition
//! counts and option combinations, the looped collective-einsum must
//! compute exactly what the original collective + einsum pair computed.

// The offline proptest stub expands `proptest!` to nothing, leaving the
// helpers and imports below unused; with the real crate nothing is dead.
#![allow(dead_code, unused_imports)]
use overlap::core::{asyncify, decompose, find_patterns, DecomposeOptions};
use overlap::hlo::{Builder, DType, DotDims, Module, ReplicaGroups, Shape};
use overlap::numerics::{run_spmd, Literal};
use proptest::prelude::*;

fn f32s(dims: &[usize]) -> Shape {
    Shape::new(DType::F32, dims.to_vec())
}

fn inputs_for(module: &Module, seed: u64) -> Vec<Vec<Literal>> {
    let params = module.parameters();
    (0..module.num_partitions())
        .map(|d| {
            params
                .iter()
                .enumerate()
                .map(|(p, &id)| {
                    Literal::from_fn(module.shape_of(id).clone(), move |i| {
                        let x = (i as u64)
                            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                            .wrapping_add(seed + (d * 97 + p * 13) as u64);
                        ((x >> 40) % 512) as f64 / 128.0 - 2.0
                    })
                })
                .collect()
        })
        .collect()
}

fn check(module: &Module, opts: &DecomposeOptions, seed: u64) -> Result<(), TestCaseError> {
    let patterns = find_patterns(module);
    prop_assert!(!patterns.is_empty());
    let (out, _) = decompose(module, opts, &patterns);
    let asynced = asyncify(&out);
    let inputs = inputs_for(module, seed);
    let expect = run_spmd(module, &inputs).expect("original");
    let got = run_spmd(&asynced, &inputs).expect("decomposed");
    for (e, g) in expect.iter().zip(&got) {
        for d in 0..module.num_partitions() {
            prop_assert!(
                e[d].allclose(&g[d], 1e-9),
                "device {d}: max diff {}",
                e[d].max_abs_diff(&g[d])
            );
        }
    }
    Ok(())
}

fn options() -> impl Strategy<Value = DecomposeOptions> {
    // Chunk widths beyond the feasible range exercise the fall-back rule
    // (the decompose pass silently reverts to chunk 1 and records why).
    (any::<bool>(), any::<bool>(), any::<bool>(), 1usize..=4).prop_map(
        // Wire stays lossless here: this suite asserts *exact*
        // equivalence of the decomposition arithmetic. Quantized-wire
        // error bounds are covered by the numerics-crate tests.
        |(unroll, bidirectional, pad_max_concat, chunk)| DecomposeOptions {
            unroll,
            bidirectional,
            pad_max_concat,
            chunk,
            ..Default::default()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// AllGather case 1 (free dimension) with random sizes and options.
    #[test]
    fn ag_free(
        n in 2usize..6,
        shard in 1usize..4,
        k in 1usize..6,
        rows in 1usize..6,
        opts in options(),
        seed in 0u64..1_000_000,
    ) {
        let mut b = Builder::new("p", n);
        let x = b.parameter(f32s(&[rows, k]), "x");
        let ws = b.parameter(f32s(&[k, shard]), "w");
        let w = b.all_gather(ws, 1, ReplicaGroups::full(n), "wg");
        let e = b.einsum(x, w, DotDims::matmul(), "e");
        let m = b.build(vec![e]);
        check(&m, &opts, seed)?;
    }

    /// AllGather case 2 (contracting dimension).
    #[test]
    fn ag_contracting(
        n in 2usize..6,
        shard in 1usize..4,
        rows in 1usize..6,
        cols in 1usize..6,
        opts in options(),
        seed in 0u64..1_000_000,
    ) {
        let mut b = Builder::new("p", n);
        let xs = b.parameter(f32s(&[rows, shard]), "x");
        let w = b.parameter(f32s(&[shard * n, cols]), "w");
        let x = b.all_gather(xs, 1, ReplicaGroups::full(n), "xg");
        let e = b.einsum(x, w, DotDims::matmul(), "e");
        let m = b.build(vec![e]);
        check(&m, &opts, seed)?;
    }

    /// AllGather case 3 (batch dimension).
    #[test]
    fn ag_batch(
        n in 2usize..5,
        shard in 1usize..3,
        mdim in 1usize..4,
        kdim in 1usize..4,
        ndim in 1usize..4,
        opts in options(),
        seed in 0u64..1_000_000,
    ) {
        let mut b = Builder::new("p", n);
        let xs = b.parameter(f32s(&[shard, mdim, kdim]), "x");
        let w = b.parameter(f32s(&[shard * n, kdim, ndim]), "w");
        let x = b.all_gather(xs, 0, ReplicaGroups::full(n), "xg");
        let e = b.einsum(x, w, DotDims::batch_matmul(), "e");
        let m = b.build(vec![e]);
        check(&m, &opts, seed)?;
    }

    /// Einsum → ReduceScatter with random shard sizes and either output
    /// dimension.
    #[test]
    fn einsum_rs(
        n in 2usize..6,
        rows in 1usize..4,
        k in 1usize..6,
        cols in 1usize..4,
        scatter_dim0 in any::<bool>(),
        opts in options(),
        seed in 0u64..1_000_000,
    ) {
        let mut b = Builder::new("p", n);
        let x = b.parameter(f32s(&[rows * n, k]), "x");
        let w = b.parameter(f32s(&[k, cols * n]), "w");
        let e = b.einsum(x, w, DotDims::matmul(), "e");
        let rs = if scatter_dim0 {
            b.reduce_scatter(e, 0, ReplicaGroups::full(n), "rs")
        } else {
            b.reduce_scatter(e, 1, ReplicaGroups::full(n), "rs")
        };
        let m = b.build(vec![rs]);
        check(&m, &opts, seed)?;
    }
}
