#!/bin/sh
# CI gate: build + tests (tier 1), lint at deny level (including the
# clippy::perf group, denied workspace-wide via [workspace.lints]), keep
# the criterion benches compiling so the harness can't rot, the
# compile-throughput regression gate, and a serve smoke: a real
# `overlapd` on an ephemeral port, concurrent loadgen clients verifying
# byte-identity against direct pipeline runs, then a SIGTERM drain that
# must leave no torn disk-cache entries, a fleet smoke: four `overlapd`
# nodes on one consistent-hash ring, loadgen through the router with
# cluster-wide dedup, SIGKILL of one node with zero failed responses,
# and a deterministic fleet-summary double-run, plus seeded
# fault-injection, tail-latency and strategy-autotune smokes whose
# outputs must be deterministic. Run from the repository root.
#
#   sh scripts/ci.sh
#
# The perf gate binary records results/BENCH_sim.json for trend tracking
# and hard-fails if compiling the largest Table-1 model (GPT_1T) got
# slower than the recorded baseline (results/BENCH_compile_baseline.txt)
# beyond the noise tolerance. Both files are per-machine wall-clock
# artifacts and are gitignored. The baseline file is created on the first
# run; after a deliberate compile-time trade-off, refresh it with
# OVERLAP_COMPILE_BASELINE_UPDATE=1. Set PERFGATE=0 to skip the gate on
# machines with wildly unstable clocks.
set -eu

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --all-targets -- -D warnings

echo "==> cargo bench --no-run (compile gate)"
cargo bench --no-run

if [ "${PERFGATE:-1}" = "1" ]; then
    echo "==> perf + compile-throughput + artifact-cache gate (results/BENCH_sim.json)"
    cargo run --release -p overlap-bench --bin perfgate
    # The serve section must show the event loop actually batched
    # compiles and saw pipelined requests — zero means the new paths
    # silently stopped firing even if latencies still pass.
    for counter in batched pipelined; do
        grep -Eq "\"$counter\": *[1-9]" results/BENCH_sim.json || {
            echo "FAIL: serve bench recorded $counter=0 in results/BENCH_sim.json"; exit 1;
        }
    done
    # Same for the fleet section: zero peer hits means the cache-peering
    # path silently stopped firing.
    grep -Eq '"cluster_peer_hits": *[1-9]' results/BENCH_sim.json || {
        echo "FAIL: fleet bench recorded cluster_peer_hits=0 in results/BENCH_sim.json"; exit 1;
    }
fi

echo "==> artifact-cache disk tier: second run of a driver must be all hits"
cache_dir=".overlap-cache-ci.$$"
rm -rf "$cache_dir"
OVERLAP_CACHE_DIR="$cache_dir" cargo run --release -q -p overlap-bench --bin inference >/dev/null
warm_out=$(OVERLAP_CACHE_DIR="$cache_dir" cargo run --release -q -p overlap-bench --bin inference)
rm -rf "$cache_dir"
echo "$warm_out" | grep "^cache:" || { echo "FAIL: warm run printed no cache stats"; exit 1; }
case "$warm_out" in
    *"misses=0"*) ;;
    *) echo "FAIL: second run missed the on-disk artifact cache"; exit 1 ;;
esac

echo "==> serve smoke: overlapd + loadgen, byte-identical, dedup, clean drain"
port_file=".overlapd-ci-port.$$"
serve_cache=".overlap-serve-ci.$$"
serve_log=".overlapd-ci-log.$$"
rm -rf "$port_file" "$serve_cache" "$serve_log"
cargo run --release -q -p overlap-bench --bin overlapd -- \
    --addr 127.0.0.1:0 --workers 8 --queue-depth 32 \
    --port-file "$port_file" --cache-dir "$serve_cache" 2>"$serve_log" &
overlapd_pid=$!
tries=0
while [ ! -s "$port_file" ]; do
    tries=$((tries + 1))
    [ "$tries" -le 300 ] || { echo "FAIL: overlapd never wrote its port file"; cat "$serve_log"; exit 1; }
    kill -0 "$overlapd_pid" 2>/dev/null || { echo "FAIL: overlapd died during startup"; cat "$serve_log"; exit 1; }
    sleep 0.1
done
addr="127.0.0.1:$(cat "$port_file")"
# Every client walks every model twice — the first round compiles
# (disk+memory cold), the second must be all cache hits; every response
# must be byte-identical to a direct pipeline run, and the pipeline must
# run at most once per model (single-flight dedup).
cargo run --release -q -p overlap-bench --bin overlap-client -- "$addr" \
    loadgen --clients 8 --models GPT_32B,GPT_64B,GPT_128B --repeat 2 --expect-dedup || {
    echo "FAIL: serve loadgen"; kill "$overlapd_pid" 2>/dev/null; cat "$serve_log"; exit 1;
}
# Pipelined run against the warm daemon: each connection keeps 4
# requests in flight; responses must still arrive in request order and
# stay byte-identical (the client checks both).
cargo run --release -q -p overlap-bench --bin overlap-client -- "$addr" \
    loadgen --clients 8 --models GPT_32B,GPT_64B,GPT_128B --repeat 2 --pipeline 4 || {
    echo "FAIL: pipelined serve loadgen"; kill "$overlapd_pid" 2>/dev/null; cat "$serve_log"; exit 1;
}
kill -TERM "$overlapd_pid"
wait "$overlapd_pid" || { echo "FAIL: overlapd exited nonzero after SIGTERM"; cat "$serve_log"; exit 1; }
grep -q "drained cleanly" "$serve_log" || {
    echo "FAIL: overlapd did not report a clean drain"; cat "$serve_log"; exit 1;
}
if ls "$serve_cache"/*.tmp >/dev/null 2>&1; then
    echo "FAIL: torn artifact-cache entries left behind by the drain"; exit 1
fi
rm -rf "$port_file" "$serve_cache" "$serve_log"

echo "==> fleet smoke: 4 overlapd nodes, sharded routing, SIGKILL failover, clean drain"
# Fixed $$-derived ports: every member must know the full address list
# before binding, so ephemeral ports cannot work here.
fleet_base=$((21000 + $$ % 20000))
fleet_models="GPT_32B,GPT_64B,GPT_128B"

# launch_fleet BASE_PORT SUFFIX: starts 4 daemons on BASE_PORT..+3 with
# fresh caches and waits until every one has written its port file.
# Sets $fleet_addrs and $fleet_pids (index-ordered).
launch_fleet() {
    fleet_addrs=""
    for i in 0 1 2 3; do
        fleet_addrs="$fleet_addrs${fleet_addrs:+,}127.0.0.1:$(($1 + i))"
    done
    fleet_pids=""
    for i in 0 1 2 3; do
        rm -rf ".overlap-fleet-$2-cache.$$.$i" ".overlap-fleet-$2-port.$$.$i"
        cargo run --release -q -p overlap-bench --bin overlapd -- \
            --addr "127.0.0.1:$(($1 + i))" --workers 4 --queue-depth 32 \
            --port-file ".overlap-fleet-$2-port.$$.$i" \
            --cache-dir ".overlap-fleet-$2-cache.$$.$i" \
            --fleet-node "$i" --fleet-peers "$fleet_addrs" \
            2>".overlap-fleet-$2-log.$$.$i" &
        fleet_pids="$fleet_pids $!"
    done
    for i in 0 1 2 3; do
        tries=0
        while [ ! -s ".overlap-fleet-$2-port.$$.$i" ]; do
            tries=$((tries + 1))
            if [ "$tries" -gt 300 ]; then
                echo "FAIL: fleet node $i never came up"
                cat ".overlap-fleet-$2-log.$$.$i"
                kill $fleet_pids 2>/dev/null || true
                exit 1
            fi
            for p in $fleet_pids; do
                kill -0 "$p" 2>/dev/null || {
                    echo "FAIL: a fleet daemon died during startup"
                    cat ".overlap-fleet-$2-log.$$."*
                    kill $fleet_pids 2>/dev/null || true
                    exit 1
                }
            done
            sleep 0.1
        done
    done
}

launch_fleet "$fleet_base" a
# Cold pass through the router: every response byte-identical to a
# direct pipeline run, each model compiled on exactly one node
# cluster-wide (--expect-dedup), and the race-invariant summary saved
# for the determinism comparison below.
cargo run --release -q -p overlap-bench --bin overlap-client -- "$fleet_addrs" \
    loadgen --clients 4 --models "$fleet_models" --repeat 2 --expect-dedup \
    --fleet-summary results/fleet_summary.json || {
    echo "FAIL: fleet loadgen (cold)"; cat ".overlap-fleet-a-log.$$."*; kill $fleet_pids 2>/dev/null; exit 1;
}
# SIGKILL one node mid-run: start a longer warm loadgen, hard-kill
# node 0 while it runs (for this model set the ring puts most traffic
# on node 0, so the corpse is load-bearing), and require zero failed
# responses — the router must eject it and fail over down the ring.
cargo run --release -q -p overlap-bench --bin overlap-client -- "$fleet_addrs" \
    loadgen --clients 4 --models "$fleet_models" --repeat 200 &
fleet_loadgen_pid=$!
sleep 1
fleet_victim=$(echo $fleet_pids | cut -d' ' -f1)
kill -9 "$fleet_victim"
wait "$fleet_loadgen_pid" || {
    echo "FAIL: loadgen lost responses after SIGKILL of fleet node 0"
    cat ".overlap-fleet-a-log.$$."*; kill $fleet_pids 2>/dev/null; exit 1;
}
# A post-kill pass over the full list (the dead address included) must
# also fully succeed: survivors own the victim's artifacts now.
cargo run --release -q -p overlap-bench --bin overlap-client -- "$fleet_addrs" \
    loadgen --clients 4 --models "$fleet_models" --repeat 2 || {
    echo "FAIL: fleet loadgen with a dead node"; kill $fleet_pids 2>/dev/null; exit 1;
}
# The cluster aggregate must report the outage: 3 of 4 alive.
fleet_agg=$(cargo run --release -q -p overlap-bench --bin overlap-client -- "$fleet_addrs" fleet-stats) || {
    echo "FAIL: fleet-stats with a dead node"; kill $fleet_pids 2>/dev/null; exit 1;
}
echo "$fleet_agg" | grep -q '"alive": 3' || {
    echo "FAIL: fleet-stats did not report 3/4 alive"; echo "$fleet_agg"; kill $fleet_pids 2>/dev/null; exit 1;
}
# Survivors drain cleanly on SIGTERM; the SIGKILLed node is exempt.
fleet_i=0
for p in $fleet_pids; do
    if [ "$fleet_i" != 0 ]; then kill -TERM "$p" 2>/dev/null || true; fi
    fleet_i=$((fleet_i + 1))
done
fleet_i=0
for p in $fleet_pids; do
    if [ "$fleet_i" != 0 ]; then
        wait "$p" || { echo "FAIL: fleet node $fleet_i exited nonzero after SIGTERM"; cat ".overlap-fleet-a-log.$$.$fleet_i"; exit 1; }
        grep -q "drained cleanly" ".overlap-fleet-a-log.$$.$fleet_i" || {
            echo "FAIL: fleet node $fleet_i did not report a clean drain"; cat ".overlap-fleet-a-log.$$.$fleet_i"; exit 1;
        }
        if ls ".overlap-fleet-a-cache.$$.$fleet_i"/*.tmp >/dev/null 2>&1; then
            echo "FAIL: torn artifact-cache entries on fleet node $fleet_i"; exit 1
        fi
    fi
    fleet_i=$((fleet_i + 1))
done

# Determinism: an identical cold run against a second fresh fleet (new
# ports, new caches) must produce a byte-identical summary — routing
# tables, response/match counts and per-node compile counts are pure
# functions of the request set and the fleet size.
launch_fleet $((fleet_base + 10)) b
cargo run --release -q -p overlap-bench --bin overlap-client -- "$fleet_addrs" \
    loadgen --clients 4 --models "$fleet_models" --repeat 2 --expect-dedup \
    --fleet-summary results/fleet_summary.json.second || {
    echo "FAIL: fleet loadgen (determinism rerun)"; cat ".overlap-fleet-b-log.$$."*; kill $fleet_pids 2>/dev/null; exit 1;
}
kill -TERM $fleet_pids 2>/dev/null || true
for p in $fleet_pids; do wait "$p" || { echo "FAIL: determinism fleet drain"; exit 1; }; done
cmp -s results/fleet_summary.json results/fleet_summary.json.second || {
    echo "FAIL: fleet summaries differ between identical cold runs"
    diff results/fleet_summary.json results/fleet_summary.json.second || true
    exit 1
}
rm -f results/fleet_summary.json results/fleet_summary.json.second
rm -rf .overlap-fleet-a-cache.$$.* .overlap-fleet-a-port.$$.* .overlap-fleet-a-log.$$.* \
       .overlap-fleet-b-cache.$$.* .overlap-fleet-b-port.$$.* .overlap-fleet-b-log.$$.*

echo "==> fault-injection smoke sweep: seeded faults, no panic, deterministic"
smoke_one=$(OVERLAP_FAULT_SMOKE=1 OVERLAP_FAULT_SEED=7 OVERLAP_CACHE=0 \
    cargo run --release -q -p overlap-bench --bin fig_faults)
cp results/fig_faults_smoke.json results/fig_faults_smoke.json.first
smoke_two=$(OVERLAP_FAULT_SMOKE=1 OVERLAP_FAULT_SEED=7 OVERLAP_CACHE=0 \
    cargo run --release -q -p overlap-bench --bin fig_faults)
[ "$smoke_one" = "$smoke_two" ] || {
    echo "FAIL: fault sweep stdout differs between identically-seeded runs"; exit 1;
}
cmp -s results/fig_faults_smoke.json results/fig_faults_smoke.json.first || {
    echo "FAIL: fault sweep JSON differs between identically-seeded runs"; exit 1;
}
rm -f results/fig_faults_smoke.json.first
echo "$smoke_one" | grep -q "fallbacks=" || {
    echo "FAIL: fault sweep reported no fallback counts"; exit 1;
}

echo "==> quant smoke sweep: seeded precision sweep, deterministic, gate-accuracy oracle"
quant_one=$(OVERLAP_QUANT_SMOKE=1 OVERLAP_QUANT_SEED=7 OVERLAP_CACHE=0 \
    cargo run --release -q -p overlap-bench --bin fig_quant)
cp results/fig_quant_smoke.json results/fig_quant_smoke.json.first
quant_two=$(OVERLAP_QUANT_SMOKE=1 OVERLAP_QUANT_SEED=7 OVERLAP_CACHE=0 \
    cargo run --release -q -p overlap-bench --bin fig_quant)
[ "$quant_one" = "$quant_two" ] || {
    echo "FAIL: quant sweep stdout differs between identically-seeded runs"; exit 1;
}
cmp -s results/fig_quant_smoke.json results/fig_quant_smoke.json.first || {
    echo "FAIL: quant sweep JSON differs between identically-seeded runs"; exit 1;
}
rm -f results/fig_quant_smoke.json.first
echo "$quant_one" | grep -q "err<=" || {
    echo "FAIL: quant sweep reported no error bounds"; exit 1;
}
# gate_accuracy doubles as the quantization error oracle (it exits
# nonzero if any measured error beats its documented bound) and must be
# deterministic: two runs on the small proxy model, byte-identical JSON.
cargo run --release -q -p overlap-bench --bin gate_accuracy GPT_32B >/dev/null
cp results/gate_accuracy.json results/gate_accuracy.json.first
cargo run --release -q -p overlap-bench --bin gate_accuracy GPT_32B >/dev/null
cmp -s results/gate_accuracy.json results/gate_accuracy.json.first || {
    echo "FAIL: gate_accuracy differs between identical runs"; exit 1;
}
rm -f results/gate_accuracy.json.first
grep -q '"model": "GPT_32B"' results/gate_accuracy.json || {
    echo "FAIL: gate_accuracy JSON does not record its model"; exit 1;
}
# Restore the committed GPT_256B baseline artifact.
git checkout -- results/gate_accuracy.json 2>/dev/null || true

echo "==> tail smoke sweep: seeded windows-vs-straggler draws, deterministic"
tail_one=$(OVERLAP_TAIL_SMOKE=1 OVERLAP_FAULT_SEED=7 OVERLAP_CACHE=0 \
    cargo run --release -q -p overlap-bench --bin fig_tail)
cp results/fig_tail_smoke.json results/fig_tail_smoke.json.first
tail_two=$(OVERLAP_TAIL_SMOKE=1 OVERLAP_FAULT_SEED=7 OVERLAP_CACHE=0 \
    cargo run --release -q -p overlap-bench --bin fig_tail)
[ "$tail_one" = "$tail_two" ] || {
    echo "FAIL: tail sweep stdout differs between identically-seeded runs"; exit 1;
}
cmp -s results/fig_tail_smoke.json results/fig_tail_smoke.json.first || {
    echo "FAIL: tail sweep JSON differs between identically-seeded runs"; exit 1;
}
rm -f results/fig_tail_smoke.json.first
echo "$tail_one" | grep -q "p99" || {
    echo "FAIL: tail sweep reported no p99 percentiles"; exit 1;
}

echo "==> autotune smoke: seeded strategy search, deterministic leaderboard, warm cache"
tune_cache=".overlap-autotune-ci.$$"
rm -rf "$tune_cache"
tune_one=$(OVERLAP_AUTOTUNE_SMOKE=1 OVERLAP_FAULT_SEED=7 OVERLAP_CACHE_DIR="$tune_cache" \
    cargo run --release -q -p overlap-bench --bin overlap-autotune)
cp results/fig_autotune_smoke.json results/fig_autotune_smoke.json.first
tune_two=$(OVERLAP_AUTOTUNE_SMOKE=1 OVERLAP_FAULT_SEED=7 OVERLAP_CACHE_DIR="$tune_cache" \
    cargo run --release -q -p overlap-bench --bin overlap-autotune)
rm -rf "$tune_cache"
# The leaderboard JSON must be byte-identical across identically-seeded
# runs (stdout is not compared — the cache counters legitimately differ
# between the cold and the warm pass).
cmp -s results/fig_autotune_smoke.json results/fig_autotune_smoke.json.first || {
    echo "FAIL: autotune leaderboard differs between identically-seeded runs"; exit 1;
}
rm -f results/fig_autotune_smoke.json.first
echo "$tune_one" | grep -q "pruned statically" || {
    echo "FAIL: autotune reported no static pruning"; exit 1;
}
# The second run replays the identical grid against the same disk cache,
# so every compile must be served (the search is cache-oracle-driven).
echo "$tune_two" | grep "^cache:" || { echo "FAIL: warm autotune printed no cache stats"; exit 1; }
case "$tune_two" in
    *"misses=0"*) ;;
    *) echo "FAIL: warm autotune run missed the on-disk artifact cache"; exit 1 ;;
esac

echo "CI gate passed."
