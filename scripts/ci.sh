#!/bin/sh
# CI gate: build + tests (tier 1), lint at deny level (including the
# clippy::perf group, denied workspace-wide via [workspace.lints]), keep
# the criterion benches compiling so the harness can't rot, the
# compile-throughput regression gate, and a serve smoke: a real
# `overlapd` on an ephemeral port, concurrent loadgen clients verifying
# byte-identity against direct pipeline runs, then a SIGTERM drain that
# must leave no torn disk-cache entries, plus seeded fault-injection,
# tail-latency and strategy-autotune smokes whose outputs must be
# deterministic. Run from the repository root.
#
#   sh scripts/ci.sh
#
# The perf gate binary records results/BENCH_sim.json for trend tracking
# and hard-fails if compiling the largest Table-1 model (GPT_1T) got
# slower than the recorded baseline (results/BENCH_compile_baseline.txt)
# beyond the noise tolerance. Both files are per-machine wall-clock
# artifacts and are gitignored. The baseline file is created on the first
# run; after a deliberate compile-time trade-off, refresh it with
# OVERLAP_COMPILE_BASELINE_UPDATE=1. Set PERFGATE=0 to skip the gate on
# machines with wildly unstable clocks.
set -eu

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --all-targets -- -D warnings

echo "==> cargo bench --no-run (compile gate)"
cargo bench --no-run

if [ "${PERFGATE:-1}" = "1" ]; then
    echo "==> perf + compile-throughput + artifact-cache gate (results/BENCH_sim.json)"
    cargo run --release -p overlap-bench --bin perfgate
    # The serve section must show the event loop actually batched
    # compiles and saw pipelined requests — zero means the new paths
    # silently stopped firing even if latencies still pass.
    for counter in batched pipelined; do
        grep -Eq "\"$counter\": *[1-9]" results/BENCH_sim.json || {
            echo "FAIL: serve bench recorded $counter=0 in results/BENCH_sim.json"; exit 1;
        }
    done
fi

echo "==> artifact-cache disk tier: second run of a driver must be all hits"
cache_dir=".overlap-cache-ci.$$"
rm -rf "$cache_dir"
OVERLAP_CACHE_DIR="$cache_dir" cargo run --release -q -p overlap-bench --bin inference >/dev/null
warm_out=$(OVERLAP_CACHE_DIR="$cache_dir" cargo run --release -q -p overlap-bench --bin inference)
rm -rf "$cache_dir"
echo "$warm_out" | grep "^cache:" || { echo "FAIL: warm run printed no cache stats"; exit 1; }
case "$warm_out" in
    *"misses=0"*) ;;
    *) echo "FAIL: second run missed the on-disk artifact cache"; exit 1 ;;
esac

echo "==> serve smoke: overlapd + loadgen, byte-identical, dedup, clean drain"
port_file=".overlapd-ci-port.$$"
serve_cache=".overlap-serve-ci.$$"
serve_log=".overlapd-ci-log.$$"
rm -rf "$port_file" "$serve_cache" "$serve_log"
cargo run --release -q -p overlap-bench --bin overlapd -- \
    --addr 127.0.0.1:0 --workers 8 --queue-depth 32 \
    --port-file "$port_file" --cache-dir "$serve_cache" 2>"$serve_log" &
overlapd_pid=$!
tries=0
while [ ! -s "$port_file" ]; do
    tries=$((tries + 1))
    [ "$tries" -le 300 ] || { echo "FAIL: overlapd never wrote its port file"; cat "$serve_log"; exit 1; }
    kill -0 "$overlapd_pid" 2>/dev/null || { echo "FAIL: overlapd died during startup"; cat "$serve_log"; exit 1; }
    sleep 0.1
done
addr="127.0.0.1:$(cat "$port_file")"
# Every client walks every model twice — the first round compiles
# (disk+memory cold), the second must be all cache hits; every response
# must be byte-identical to a direct pipeline run, and the pipeline must
# run at most once per model (single-flight dedup).
cargo run --release -q -p overlap-bench --bin overlap-client -- "$addr" \
    loadgen --clients 8 --models GPT_32B,GPT_64B,GPT_128B --repeat 2 --expect-dedup || {
    echo "FAIL: serve loadgen"; kill "$overlapd_pid" 2>/dev/null; cat "$serve_log"; exit 1;
}
# Pipelined run against the warm daemon: each connection keeps 4
# requests in flight; responses must still arrive in request order and
# stay byte-identical (the client checks both).
cargo run --release -q -p overlap-bench --bin overlap-client -- "$addr" \
    loadgen --clients 8 --models GPT_32B,GPT_64B,GPT_128B --repeat 2 --pipeline 4 || {
    echo "FAIL: pipelined serve loadgen"; kill "$overlapd_pid" 2>/dev/null; cat "$serve_log"; exit 1;
}
kill -TERM "$overlapd_pid"
wait "$overlapd_pid" || { echo "FAIL: overlapd exited nonzero after SIGTERM"; cat "$serve_log"; exit 1; }
grep -q "drained cleanly" "$serve_log" || {
    echo "FAIL: overlapd did not report a clean drain"; cat "$serve_log"; exit 1;
}
if ls "$serve_cache"/*.tmp >/dev/null 2>&1; then
    echo "FAIL: torn artifact-cache entries left behind by the drain"; exit 1
fi
rm -rf "$port_file" "$serve_cache" "$serve_log"

echo "==> fault-injection smoke sweep: seeded faults, no panic, deterministic"
smoke_one=$(OVERLAP_FAULT_SMOKE=1 OVERLAP_FAULT_SEED=7 OVERLAP_CACHE=0 \
    cargo run --release -q -p overlap-bench --bin fig_faults)
cp results/fig_faults_smoke.json results/fig_faults_smoke.json.first
smoke_two=$(OVERLAP_FAULT_SMOKE=1 OVERLAP_FAULT_SEED=7 OVERLAP_CACHE=0 \
    cargo run --release -q -p overlap-bench --bin fig_faults)
[ "$smoke_one" = "$smoke_two" ] || {
    echo "FAIL: fault sweep stdout differs between identically-seeded runs"; exit 1;
}
cmp -s results/fig_faults_smoke.json results/fig_faults_smoke.json.first || {
    echo "FAIL: fault sweep JSON differs between identically-seeded runs"; exit 1;
}
rm -f results/fig_faults_smoke.json.first
echo "$smoke_one" | grep -q "fallbacks=" || {
    echo "FAIL: fault sweep reported no fallback counts"; exit 1;
}

echo "==> tail smoke sweep: seeded windows-vs-straggler draws, deterministic"
tail_one=$(OVERLAP_TAIL_SMOKE=1 OVERLAP_FAULT_SEED=7 OVERLAP_CACHE=0 \
    cargo run --release -q -p overlap-bench --bin fig_tail)
cp results/fig_tail_smoke.json results/fig_tail_smoke.json.first
tail_two=$(OVERLAP_TAIL_SMOKE=1 OVERLAP_FAULT_SEED=7 OVERLAP_CACHE=0 \
    cargo run --release -q -p overlap-bench --bin fig_tail)
[ "$tail_one" = "$tail_two" ] || {
    echo "FAIL: tail sweep stdout differs between identically-seeded runs"; exit 1;
}
cmp -s results/fig_tail_smoke.json results/fig_tail_smoke.json.first || {
    echo "FAIL: tail sweep JSON differs between identically-seeded runs"; exit 1;
}
rm -f results/fig_tail_smoke.json.first
echo "$tail_one" | grep -q "p99" || {
    echo "FAIL: tail sweep reported no p99 percentiles"; exit 1;
}

echo "==> autotune smoke: seeded strategy search, deterministic leaderboard, warm cache"
tune_cache=".overlap-autotune-ci.$$"
rm -rf "$tune_cache"
tune_one=$(OVERLAP_AUTOTUNE_SMOKE=1 OVERLAP_FAULT_SEED=7 OVERLAP_CACHE_DIR="$tune_cache" \
    cargo run --release -q -p overlap-bench --bin overlap-autotune)
cp results/fig_autotune_smoke.json results/fig_autotune_smoke.json.first
tune_two=$(OVERLAP_AUTOTUNE_SMOKE=1 OVERLAP_FAULT_SEED=7 OVERLAP_CACHE_DIR="$tune_cache" \
    cargo run --release -q -p overlap-bench --bin overlap-autotune)
rm -rf "$tune_cache"
# The leaderboard JSON must be byte-identical across identically-seeded
# runs (stdout is not compared — the cache counters legitimately differ
# between the cold and the warm pass).
cmp -s results/fig_autotune_smoke.json results/fig_autotune_smoke.json.first || {
    echo "FAIL: autotune leaderboard differs between identically-seeded runs"; exit 1;
}
rm -f results/fig_autotune_smoke.json.first
echo "$tune_one" | grep -q "pruned statically" || {
    echo "FAIL: autotune reported no static pruning"; exit 1;
}
# The second run replays the identical grid against the same disk cache,
# so every compile must be served (the search is cache-oracle-driven).
echo "$tune_two" | grep "^cache:" || { echo "FAIL: warm autotune printed no cache stats"; exit 1; }
case "$tune_two" in
    *"misses=0"*) ;;
    *) echo "FAIL: warm autotune run missed the on-disk artifact cache"; exit 1 ;;
esac

echo "CI gate passed."
