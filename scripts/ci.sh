#!/bin/sh
# CI gate: build + tests (tier 1), lint at deny level, and keep the
# criterion benches compiling so the harness can't rot. Run from the
# repository root.
#
#   sh scripts/ci.sh
#
# Optional: PERFGATE=1 sh scripts/ci.sh additionally runs the perf gate
# binary, which records results/BENCH_sim.json for trend tracking.
set -eu

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --all-targets -- -D warnings

echo "==> cargo bench --no-run (compile gate)"
cargo bench --no-run

if [ "${PERFGATE:-0}" = "1" ]; then
    echo "==> perf gate (results/BENCH_sim.json)"
    cargo run --release -p overlap-bench --bin perfgate
fi

echo "CI gate passed."
