#!/bin/sh
# CI gate: build + tests (tier 1), lint at deny level (including the
# clippy::perf group, denied workspace-wide via [workspace.lints]), keep
# the criterion benches compiling so the harness can't rot, and the
# compile-throughput regression gate. Run from the repository root.
#
#   sh scripts/ci.sh
#
# The perf gate binary records results/BENCH_sim.json for trend tracking
# and hard-fails if compiling the largest Table-1 model (GPT_1T) got
# slower than the recorded baseline (results/BENCH_compile_baseline.txt)
# beyond the noise tolerance. Both files are per-machine wall-clock
# artifacts and are gitignored. The baseline file is created on the first
# run; after a deliberate compile-time trade-off, refresh it with
# OVERLAP_COMPILE_BASELINE_UPDATE=1. Set PERFGATE=0 to skip the gate on
# machines with wildly unstable clocks.
set -eu

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --all-targets -- -D warnings

echo "==> cargo bench --no-run (compile gate)"
cargo bench --no-run

if [ "${PERFGATE:-1}" = "1" ]; then
    echo "==> perf + compile-throughput + artifact-cache gate (results/BENCH_sim.json)"
    cargo run --release -p overlap-bench --bin perfgate
fi

echo "==> artifact-cache disk tier: second run of a driver must be all hits"
cache_dir=".overlap-cache-ci.$$"
rm -rf "$cache_dir"
OVERLAP_CACHE_DIR="$cache_dir" cargo run --release -q -p overlap-bench --bin inference >/dev/null
warm_out=$(OVERLAP_CACHE_DIR="$cache_dir" cargo run --release -q -p overlap-bench --bin inference)
rm -rf "$cache_dir"
echo "$warm_out" | grep "^cache:" || { echo "FAIL: warm run printed no cache stats"; exit 1; }
case "$warm_out" in
    *"misses=0"*) ;;
    *) echo "FAIL: second run missed the on-disk artifact cache"; exit 1 ;;
esac

echo "==> fault-injection smoke sweep: seeded faults, no panic, deterministic"
smoke_one=$(OVERLAP_FAULT_SMOKE=1 OVERLAP_FAULT_SEED=7 OVERLAP_CACHE=0 \
    cargo run --release -q -p overlap-bench --bin fig_faults)
cp results/fig_faults_smoke.json results/fig_faults_smoke.json.first
smoke_two=$(OVERLAP_FAULT_SMOKE=1 OVERLAP_FAULT_SEED=7 OVERLAP_CACHE=0 \
    cargo run --release -q -p overlap-bench --bin fig_faults)
[ "$smoke_one" = "$smoke_two" ] || {
    echo "FAIL: fault sweep stdout differs between identically-seeded runs"; exit 1;
}
cmp -s results/fig_faults_smoke.json results/fig_faults_smoke.json.first || {
    echo "FAIL: fault sweep JSON differs between identically-seeded runs"; exit 1;
}
rm -f results/fig_faults_smoke.json.first
echo "$smoke_one" | grep -q "fallbacks=" || {
    echo "FAIL: fault sweep reported no fallback counts"; exit 1;
}

echo "CI gate passed."
