//! Inspect what the compiler pipeline does to a module: instruction
//! statistics before/after decomposition, peak-memory profile of the
//! schedule, a GraphViz dump and a Chrome-tracing timeline.
//!
//! ```sh
//! cargo run --release --example inspect_module
//! # then open /tmp/overlap_module.dot with graphviz and
//! # /tmp/overlap_trace.json with https://ui.perfetto.dev
//! ```

use overlap::core::{OverlapOptions, OverlapPipeline};
use overlap::hlo::{module_stats, to_dot, Builder, DType, DotDims, ReplicaGroups, Shape};
use overlap::mesh::{DeviceMesh, Machine};
use overlap::sim::{memory_profile, simulate_order};

fn main() {
    let n = 4;
    let mut b = Builder::new("inspect", n);
    let x = b.parameter(Shape::new(DType::BF16, vec![4096, 4096]), "x");
    let w = b.parameter(Shape::new(DType::BF16, vec![4096, 4096 / n]), "w_shard");
    let wg = b.all_gather(w, 1, ReplicaGroups::full(n), "w");
    let y = b.einsum(x, wg, DotDims::matmul(), "y");
    let module = b.build(vec![y]);

    let before = module_stats(&module);
    println!("before: {} live instructions, {:.1} GFLOP, {:.1} MB of collective operands",
        before.live,
        before.einsum_flops as f64 / 1e9,
        before.collective_bytes as f64 / 1e6);

    let machine = Machine::with_mesh(DeviceMesh::ring(n));
    let compiled = OverlapPipeline::new(OverlapOptions::paper_default())
        .run(&module, &machine)
        .expect("pipeline");

    let after = module_stats(&compiled.module);
    println!("after:  {} live instructions; op mix:", after.live);
    for (op, count) in &after.op_counts {
        println!("    {op:<26} {count}");
    }

    let baseline_mem = memory_profile(&module, &module.arena_order());
    let sched_mem = memory_profile(&compiled.module, &compiled.order);
    println!(
        "\npeak live bytes: baseline {:.1} MB -> scheduled {:.1} MB",
        baseline_mem.peak_bytes as f64 / 1e6,
        sched_mem.peak_bytes as f64 / 1e6
    );

    let report =
        simulate_order(&compiled.module, &machine, &compiled.order).expect("simulate");
    println!("\nsimulated timeline ({:.3} ms):", report.makespan() * 1e3);
    println!("{}", report.timeline().render(76));

    std::fs::write("/tmp/overlap_module.dot", to_dot(&compiled.module))
        .expect("write dot file");
    std::fs::write("/tmp/overlap_trace.json", report.timeline().to_chrome_trace())
        .expect("write trace file");
    println!("\nwrote /tmp/overlap_module.dot and /tmp/overlap_trace.json");
}
