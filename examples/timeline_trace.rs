//! Recreates the illustrative timelines of Figs. 4 and 5: the 2-way
//! `AllGather → Einsum` and `Einsum → ReduceScatter` examples, original
//! vs. overlapped.
//!
//! ```sh
//! cargo run --release --example timeline_trace
//! ```

use overlap::core::{OverlapOptions, OverlapPipeline};
use overlap::hlo::{Builder, DType, DotDims, Module, ReplicaGroups, Shape};
use overlap::mesh::{DeviceMesh, Machine};
use overlap::sim::{simulate, simulate_order};

fn show(title: &str, module: &Module, machine: &Machine) {
    println!("==== {title} ====");
    let baseline = simulate(module, machine).expect("baseline");
    println!("original   ({:.3} ms):", baseline.makespan() * 1e3);
    println!("{}", baseline.timeline().render(72));
    // Figs. 4/5 show the plain unidirectional loop.
    let compiled = OverlapPipeline::new(OverlapOptions::with_strategy(
        overlap::core::StrategySpec::paper_default()
            .with_ring(overlap::core::RingDirection::Unidirectional),
    ))
    .run(module, machine)
    .expect("pipeline");
    let overlapped =
        simulate_order(&compiled.module, machine, &compiled.order).expect("simulate");
    println!("overlapped ({:.3} ms):", overlapped.makespan() * 1e3);
    println!("{}", overlapped.timeline().render(72));
    println!(
        "speedup {:.2}x\n",
        baseline.makespan() / overlapped.makespan()
    );
}

fn main() {
    let n = 2;
    let machine = Machine::with_mesh(DeviceMesh::ring(n));

    // Fig. 4: AllGather(A) -> Einsum(A, B).
    let ag_einsum = {
        let mut b = Builder::new("fig4", n);
        let a_shard = b.parameter(Shape::new(DType::BF16, vec![2048, 4096]), "A_shard");
        let bb = b.parameter(Shape::new(DType::BF16, vec![4096, 4096]), "B");
        let a = b.all_gather(a_shard, 0, ReplicaGroups::full(n), "A");
        let c = b.einsum(a, bb, DotDims::matmul(), "C");
        b.build(vec![c])
    };
    show("Fig. 4: AllGather -> Einsum (2-way)", &ag_einsum, &machine);

    // Fig. 5: Einsum(A, B) -> ReduceScatter(C).
    let einsum_rs = {
        let mut b = Builder::new("fig5", n);
        let a = b.parameter(Shape::new(DType::BF16, vec![4096, 4096]), "A");
        let bb = b.parameter(Shape::new(DType::BF16, vec![4096, 4096]), "B");
        let c = b.einsum(a, bb, DotDims::matmul(), "C");
        let rs = b.reduce_scatter(c, 0, ReplicaGroups::full(n), "C_scattered");
        b.build(vec![rs])
    };
    show("Fig. 5: Einsum -> ReduceScatter (2-way)", &einsum_rs, &machine);
}
