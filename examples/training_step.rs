//! Capstone: compile a full training step the way the paper's stack does.
//!
//! 1. Write the model **densely** (as if on one device).
//! 2. Differentiate it with the reverse-mode autodiff — this is where the
//!    backward `Einsum → ReduceScatter` patterns come from.
//! 3. Partition the forward+backward graph over the mesh with the
//!    GSPMD-lite module partitioner (§2.2's collectives appear).
//! 4. Run the overlap pipeline (§5) and simulate baseline vs. overlapped.
//! 5. Cross-check numerically on the SPMD interpreter.
//!
//! ```sh
//! cargo run --release --example training_step
//! ```

use overlap::core::{OverlapOptions, OverlapPipeline};
use overlap::hlo::{gradients, Builder, DType, DotDims, Op, Shape};
use overlap::mesh::{Axis, DeviceMesh, Machine};
use overlap::numerics::{run_spmd, Literal};
use overlap::sharding::{partition_module, TensorSharding};
use overlap::sim::{simulate, simulate_order};

fn main() {
    // 1. Dense two-layer MLP (f32 keeps the numeric check exact; the
    //    figures use bf16 shapes for byte accounting only).
    let build = |tokens: usize, d: usize, f: usize| {
        let mut b = Builder::new("mlp", 1);
        let x = b.parameter(Shape::new(DType::F32, vec![tokens, d]), "x");
        let w1 = b.parameter(Shape::new(DType::F32, vec![d, f]), "w1");
        let w2 = b.parameter(Shape::new(DType::F32, vec![f, d]), "w2");
        let h = b.einsum(x, w1, DotDims::matmul(), "h");
        let y = b.einsum(h, w2, DotDims::matmul(), "y");
        (b.build(vec![y]), y, w1, w2)
    };
    let (dense, y, w1, w2) = build(16384, 2048, 8192);

    // 2. Autodiff: gradients of <seed, y> w.r.t. both weights.
    let grad = gradients(&dense, y, &[w1, w2]).expect("differentiable");
    println!(
        "autodiff: {} -> {} instructions ({} einsums)",
        dense.len(),
        grad.module.len(),
        grad.module.count_live(|i| matches!(i.op(), Op::Einsum(_))),
    );

    // 3. Partition over a ring of 8: batch-sharded activations,
    //    row-sharded weights (Fig. 2's strategy); the seed cotangent is
    //    batch-sharded like the output.
    let mesh = DeviceMesh::ring(8);
    let batch = TensorSharding::replicated(2).with_dim(0, Axis(0));
    let row = TensorSharding::replicated(2).with_dim(0, Axis(0));
    let shardings =
        vec![batch.clone(), row.clone(), row.clone(), batch.clone()];
    let spmd = partition_module(&grad.module, &mesh, &shardings).expect("partitions");
    println!(
        "partitioned: {} all-gathers, {} reduce-scatters",
        spmd.module.count_live(|i| matches!(i.op(), Op::AllGather { .. })),
        spmd.module.count_live(|i| matches!(i.op(), Op::ReduceScatter { .. })),
    );

    // 4. Overlap pipeline + simulation.
    let machine = Machine::with_mesh(mesh.clone());
    let baseline = simulate(&spmd.module, &machine).expect("baseline");
    let compiled = OverlapPipeline::new(OverlapOptions::paper_default())
        .run(&spmd.module, &machine)
        .expect("pipeline");
    let overlapped =
        simulate_order(&compiled.module, &machine, &compiled.order).expect("simulate");
    println!(
        "step time: {:.3} ms -> {:.3} ms ({:.2}x), {} patterns decomposed",
        baseline.makespan() * 1e3,
        overlapped.makespan() * 1e3,
        baseline.makespan() / overlapped.makespan(),
        compiled.summaries.len(),
    );

    // 5. Numeric cross-check on an interpreter-sized copy of the same
    //    program (same structure, smaller dims): the compiled SPMD
    //    program computes the same gradients as the partitioned one.
    let (small_dense, sy, sw1, sw2) = build(64, 32, 64);
    let small_grad = gradients(&small_dense, sy, &[sw1, sw2]).expect("differentiable");
    let spmd = partition_module(&small_grad.module, &mesh, &shardings).expect("partitions");
    let compiled = OverlapPipeline::new(OverlapOptions {
        disable_cost_gate: true,
        ..OverlapOptions::paper_default()
    })
    .run(&spmd.module, &machine)
    .expect("pipeline");
    let n = mesh.num_devices();
    let inputs: Vec<Vec<Literal>> = (0..n)
        .map(|dev| {
            spmd.module
                .parameters()
                .iter()
                .enumerate()
                .map(|(p, &id)| {
                    Literal::from_fn(spmd.module.shape_of(id).clone(), move |i| {
                        ((i * 31 + dev * 17 + p * 7) % 13) as f64 / 6.0 - 1.0
                    })
                })
                .collect()
        })
        .collect();
    let want = run_spmd(&spmd.module, &inputs).expect("partitioned runs");
    let got = run_spmd(&compiled.module, &inputs).expect("compiled runs");
    let mut max_diff = 0.0f64;
    for (w, g) in want.iter().zip(&got) {
        for dev in 0..n {
            max_diff = max_diff.max(w[dev].max_abs_diff(&g[dev]));
        }
    }
    println!("max |partitioned - overlapped| across gradients: {max_diff:.2e}");
    assert!(max_diff < 1e-9);
    println!("training step compiled, overlapped and verified on {n} simulated devices");
}
