//! §7.1 in miniature: a 2-way partitioned recommendation-style inference
//! tower, baseline vs. overlapped latency.
//!
//! ```sh
//! cargo run --release --example inference_latency
//! ```

use overlap::core::{OverlapOptions, OverlapPipeline};
use overlap::hlo::{Builder, DType, DotDims, ReplicaGroups, Shape};
use overlap::mesh::{DeviceMesh, Machine};
use overlap::sim::{simulate, simulate_order};

fn main() {
    let n = 2;
    let (batch, width, layers) = (1376, 8192, 6);
    let mut b = Builder::new("recommendation", n);
    let mut x = b.parameter(Shape::new(DType::BF16, vec![batch, width]), "requests");
    for l in 0..layers {
        let w = b.parameter(
            Shape::new(DType::BF16, vec![width, width / n]),
            &format!("w{l}"),
        );
        let wg = b.all_gather(w, 1, ReplicaGroups::full(n), &format!("w{l}_full"));
        x = b.einsum(x, wg, DotDims::matmul(), &format!("layer{l}"));
    }
    let module = b.build(vec![x]);

    let machine = Machine::with_mesh(DeviceMesh::ring(n));
    let baseline = simulate(&module, &machine).expect("baseline");
    let compiled = OverlapPipeline::new(OverlapOptions::paper_default())
        .run(&module, &machine)
        .expect("pipeline");
    let overlapped =
        simulate_order(&compiled.module, &machine, &compiled.order).expect("simulate");

    println!("request batch {batch}, width {width}, {layers} layers, {n}-way partitioned");
    println!("baseline latency:   {:>8.3} ms", baseline.makespan() * 1e3);
    println!("overlapped latency: {:>8.3} ms", overlapped.makespan() * 1e3);
    println!(
        "improvement:        {:>8.2}x",
        baseline.makespan() / overlapped.makespan()
    );
}
