//! A laptop-scale weak-scaling sweep: a GPT-style layer grows with the
//! mesh and the overlap pipeline keeps the communication hidden
//! (the Fig. 13 experiment in miniature).
//!
//! ```sh
//! cargo run --release --example weak_scaling
//! ```

use overlap::core::{OverlapOptions, OverlapPipeline};
use overlap::models::{Arch, ModelConfig, PartitionStrategy};
use overlap::sim::{simulate, simulate_order};

fn config(chips: usize, model_dim: usize) -> ModelConfig {
    ModelConfig {
        name: format!("gpt_mini_{chips}"),
        params: 0.0,
        layers: 4,
        model_dim,
        ff_dim: 4 * model_dim,
        batch: chips * 8,
        seq_len: 64,
        chips,
        arch: Arch::Decoder,
        strategy: PartitionStrategy::TwoD,
    }
}

fn main() {
    println!("{:<14} {:>6} {:>12} {:>12} {:>9}", "config", "chips", "baseline", "overlap", "speedup");
    for (chips, dim) in [(4, 512), (8, 1024), (16, 1024), (32, 2048), (64, 2048)] {
        let cfg = config(chips, dim);
        let module = cfg.layer_module();
        let machine = cfg.machine();
        let base = simulate(&module, &machine).expect("baseline");
        let compiled = OverlapPipeline::new(OverlapOptions::paper_default())
            .run(&module, &machine)
            .expect("pipeline");
        let over =
            simulate_order(&compiled.module, &machine, &compiled.order).expect("simulate");
        println!(
            "{:<14} {:>6} {:>9.3} ms {:>9.3} ms {:>8.2}x",
            cfg.name,
            chips,
            base.makespan() * 1e3 * cfg.layers as f64,
            over.makespan() * 1e3 * cfg.layers as f64,
            base.makespan() / over.makespan(),
        );
    }
}
