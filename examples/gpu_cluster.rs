//! §7.2's portability claim: "the idea can also be applied to other
//! hardware ML systems, such as GPU clusters connected via high-bandwidth
//! and low-latency NVLink Network interconnects." Runs the Table 2 GPT
//! family on the NVLink-like machine preset.
//!
//! ```sh
//! cargo run --release --example gpu_cluster
//! ```

use overlap::core::{OverlapOptions, OverlapPipeline};
use overlap::mesh::Machine;
use overlap::models::table2_models;
use overlap::sim::{simulate, simulate_order};

fn main() {
    println!("GPT family on the GPU-cluster (NVLink-like) machine preset\n");
    println!("{:<10} {:>6} {:>12} {:>10} {:>8}", "model", "chips", "base comm%", "util", "speedup");
    for cfg in table2_models() {
        let module = cfg.layer_module();
        // square_ish(chips) matches the model's own 2-D mesh layout.
        let machine = Machine::gpu_cluster_like(cfg.chips);
        let baseline = simulate(&module, &machine).expect("baseline");
        let compiled = OverlapPipeline::new(OverlapOptions::paper_default())
            .run(&module, &machine)
            .expect("pipeline");
        let over =
            simulate_order(&compiled.module, &machine, &compiled.order).expect("simulate");
        println!(
            "{:<10} {:>6} {:>11.1}% {:>9.1}% {:>7.2}x",
            cfg.name,
            cfg.chips,
            100.0 * baseline.comm_fraction(),
            100.0 * over.flops_utilization(machine.peak_flops()),
            baseline.makespan() / over.makespan(),
        );
    }
}
