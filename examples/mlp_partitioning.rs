//! The paper's running example: the two-layer MLP of Figs. 2 and 3.
//!
//! Builds both partitioning strategies, prints the HLO with the inserted
//! collectives, and verifies numerically (via the SPMD interpreter) that
//! the decomposed program computes exactly what the original does.
//!
//! ```sh
//! cargo run --release --example mlp_partitioning
//! ```

use overlap::core::{asyncify, decompose, find_patterns, DecomposeOptions};
use overlap::hlo::Op;
use overlap::mesh::DeviceMesh;
use overlap::numerics::{run_spmd, Literal};
use overlap::sharding::mlp::{fig2_forward, fig3_forward, MlpConfig};

fn main() {
    let cfg = MlpConfig { batch: 8, feature: 16, hidden: 32 };

    // ---- Fig. 2: 1-D partitioning over a ring of 4 ----
    let ring = DeviceMesh::ring(4);
    let fig2 = fig2_forward(&ring, cfg).expect("fig2 builds");
    println!("=== Fig. 2 (1-D, {ring}) ===");
    println!(
        "all-gathers: {}, reduce-scatters: {}, einsums: {}",
        fig2.count_live(|i| matches!(i.op(), Op::AllGather { .. })),
        fig2.count_live(|i| matches!(i.op(), Op::ReduceScatter { .. })),
        fig2.count_live(|i| matches!(i.op(), Op::Einsum(_))),
    );

    // ---- Fig. 3: 2-D partitioning over a [2, 4] mesh ----
    let mesh = DeviceMesh::new(vec![2, 4]);
    let fig3 = fig3_forward(&mesh, cfg).expect("fig3 builds");
    println!("\n=== Fig. 3 (2-D, {mesh}) ===");
    println!("{fig3}");

    // ---- Decompose and check numerical equivalence ----
    let mut patterns = find_patterns(&fig3);
    println!("\ndecomposable patterns found: {}", patterns.len());
    // An einsum can have two candidate collectives (both operands
    // gathered); decompose at most one per einsum, as the cost gate would.
    let mut seen = std::collections::HashSet::new();
    patterns.retain(|p| seen.insert(p.einsum));
    let (decomposed, summaries) = decompose(&fig3, &DecomposeOptions::default(), &patterns);
    let asynced = asyncify(&decomposed);
    for s in &summaries {
        println!(
            "  {}: {} partial einsums, {} permutes",
            s.einsum, s.partial_einsums, s.permutes
        );
    }

    let n = fig3.num_partitions();
    let inputs: Vec<Vec<Literal>> = (0..n)
        .map(|d| {
            fig3.parameters()
                .iter()
                .enumerate()
                .map(|(p, &id)| {
                    Literal::from_fn(fig3.shape_of(id).clone(), move |i| {
                        ((i + 3 * d + 7 * p) % 13) as f64 / 13.0 - 0.5
                    })
                })
                .collect()
        })
        .collect();
    let expect = run_spmd(&fig3, &inputs).expect("original runs");
    let got = run_spmd(&asynced, &inputs).expect("decomposed runs");
    let mut max_diff = 0.0f64;
    for d in 0..n {
        max_diff = max_diff.max(expect[0][d].max_abs_diff(&got[0][d]));
    }
    println!("\nmax |original - decomposed| across all devices: {max_diff:.2e}");
    assert!(max_diff < 1e-9, "the transformation must be semantically equivalent");
    println!("semantic equivalence verified on {n} simulated devices");
}
