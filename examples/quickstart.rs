//! Quickstart: decompose one `AllGather → Einsum` pair and watch the
//! transfer disappear behind the computation.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use overlap::core::{OverlapOptions, OverlapPipeline};
use overlap::hlo::{Builder, DType, DotDims, ReplicaGroups, Shape};
use overlap::mesh::{DeviceMesh, Machine};
use overlap::sim::{simulate, simulate_order};

fn main() {
    // Four devices in a ring; an [8192, 4096] activation multiplies a
    // [4096, 4096] weight whose shards live one per device (Fig. 2's
    // weight-gather pattern).
    let n = 4;
    let mut b = Builder::new("quickstart", n);
    let x = b.parameter(Shape::new(DType::BF16, vec![8192, 4096]), "activation");
    let w = b.parameter(Shape::new(DType::BF16, vec![4096, 4096 / n]), "weight_shard");
    let w_full = b.all_gather(w, 1, ReplicaGroups::full(n), "weight");
    let y = b.einsum(x, w_full, DotDims::matmul(), "y");
    let module = b.build(vec![y]);

    let machine = Machine::with_mesh(DeviceMesh::ring(n));

    // Baseline: the AllGather blocks, the einsum waits.
    let baseline = simulate(&module, &machine).expect("baseline simulation");
    println!("baseline   : {:>8.3} ms", baseline.makespan() * 1e3);
    println!("{}\n", baseline.timeline().render(76));

    // Overlapped: looped collective-einsum + async permutes + scheduling.
    let compiled = OverlapPipeline::new(OverlapOptions::paper_default())
        .run(&module, &machine)
        .expect("pipeline");
    let overlapped =
        simulate_order(&compiled.module, &machine, &compiled.order).expect("simulation");
    println!("overlapped : {:>8.3} ms", overlapped.makespan() * 1e3);
    println!("{}\n", overlapped.timeline().render(76));

    for s in &compiled.summaries {
        println!(
            "decomposed {}: ring of {} partitions, {} partial einsums, {} permutes{}",
            s.einsum,
            s.group_size,
            s.partial_einsums,
            s.permutes,
            if s.bidirectional { ", bidirectional" } else { "" },
        );
    }
    println!(
        "\nspeedup: {:.2}x  (communication hidden: {:.1}%)",
        baseline.makespan() / overlapped.makespan(),
        100.0 * overlapped.hidden_async_time()
            / (overlapped.hidden_async_time() + overlapped.exposed_async_time()).max(1e-12),
    );
}
