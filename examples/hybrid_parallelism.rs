//! §7.3 in practice: how the overlap technique shifts the optimal split
//! between pipeline and intra-layer (tensor) parallelism.
//!
//! For a fixed 64-chip budget we sweep pipeline depth × tensor width
//! (GPipe-style synchronous pipeline, flushed per batch) and measure each
//! stage with the real simulator — once with baseline synchronous
//! collectives and once with the overlap pipeline. Cheaper intra-layer
//! communication favours wider tensor groups (fewer stages, fewer pipeline
//! bubbles), which is exactly the trade-off shift §7.3 describes.
//!
//! ```sh
//! cargo run --release --example hybrid_parallelism
//! ```

use overlap::core::{OverlapOptions, OverlapPipeline};
use overlap::models::hybrid::sweep_hybrid;
use overlap::models::{Arch, ModelConfig, PartitionStrategy};
use overlap::sim::{simulate, simulate_order};

fn main() {
    let cfg = ModelConfig {
        name: "hybrid_demo".into(),
        params: 0.0,
        layers: 16,
        model_dim: 2048,
        ff_dim: 8192,
        batch: 512,
        seq_len: 64,
        chips: 64,
        arch: Arch::Decoder,
        strategy: PartitionStrategy::TwoD,
    };
    let microbatches = 8;

    let baseline = sweep_hybrid(&cfg, microbatches, |c, m| {
        Ok(simulate(&c.layer_module(), m).expect("baseline sim").makespan())
    })
    .expect("baseline sweep");

    let overlapped = sweep_hybrid(&cfg, microbatches, |c, m| {
        let compiled = OverlapPipeline::new(OverlapOptions::paper_default())
            .run(&c.layer_module(), m)?;
        Ok(simulate_order(&compiled.module, m, &compiled.order)
            .expect("overlapped sim")
            .makespan())
    })
    .expect("overlapped sweep");

    println!("{} on {} chips, {microbatches} microbatches/batch\n", cfg.name, cfg.chips);
    println!(
        "{:>7} {:>8} {:>8} | {:>12} {:>12}",
        "stages", "tensor", "bubble", "base step", "overlap step"
    );
    for (b, o) in baseline.points.iter().zip(&overlapped.points) {
        println!(
            "{:>7} {:>8} {:>7.0}% | {:>9.3} ms {:>9.3} ms",
            b.stages,
            b.tensor_chips,
            100.0 * b.bubble_fraction,
            b.step_time * 1e3,
            o.step_time * 1e3,
        );
    }
    println!(
        "\noptimal split: baseline {} stages x {} chips; overlapped {} stages x {} chips",
        baseline.best().stages,
        baseline.best().tensor_chips,
        overlapped.best().stages,
        overlapped.best().tensor_chips,
    );
    println!(
        "best step time: {:.3} ms -> {:.3} ms ({:.2}x)",
        baseline.best().step_time * 1e3,
        overlapped.best().step_time * 1e3,
        baseline.best().step_time / overlapped.best().step_time,
    );
}
