//! Umbrella crate for the *overlap* workspace: a from-scratch reproduction
//! of "Overlap Communication with Dependent Computation via Decomposition
//! in Large Deep Learning Models" (ASPLOS 2023).
//!
//! This crate re-exports every workspace crate under a stable prefix so
//! examples and downstream users can depend on a single package:
//!
//! * [`hlo`] — the dataflow IR,
//! * [`json`] — the zero-dependency JSON wire layer and the stable
//!   fingerprint hasher behind the artifact cache,
//! * [`mesh`] — device meshes, interconnect model, collective cost math,
//! * [`sharding`] — SPMD sharding specs and the einsum partitioner,
//! * [`numerics`] — tensor literals and the multi-device interpreter,
//! * [`sim`] — the discrete-event performance simulator,
//! * [`core`] — the paper's contribution: looped collective-einsum
//!   decomposition, latency-hiding schedulers and the cost-model gate,
//! * [`models`] — the evaluation model zoo (Tables 1 and 2).
//!
//! # Quickstart
//!
//! ```
//! use overlap::core::{OverlapOptions, OverlapPipeline};
//! use overlap::hlo::{Builder, DType, DotDims, ReplicaGroups, Shape};
//! use overlap::mesh::Machine;
//! use overlap::sim::simulate;
//!
//! // A 4-way partitioned AllGather -> Einsum pair.
//! let n = 4;
//! let mut b = Builder::new("quickstart", n);
//! let x = b.parameter(Shape::new(DType::F32, vec![64, 256]), "activation");
//! let w = b.parameter(Shape::new(DType::F32, vec![64, 512]), "weight_shard");
//! let wg = b.all_gather(w, 0, ReplicaGroups::full(n), "weight");
//! let y = b.einsum(x, wg, DotDims::new(vec![], vec![(1, 0)]).unwrap(), "y");
//! let module = b.build(vec![y]);
//!
//! let machine = Machine::tpu_v4_like(n);
//! let pipeline = OverlapPipeline::new(OverlapOptions::default());
//! let compiled = pipeline.run(&module, &machine).unwrap();
//! let baseline = simulate(&module, &machine).unwrap();
//! let overlapped = simulate(&compiled.module, &machine).unwrap();
//! assert!(overlapped.makespan() <= baseline.makespan());
//! ```

pub use overlap_core as core;
pub use overlap_hlo as hlo;
pub use overlap_json as json;
pub use overlap_mesh as mesh;
pub use overlap_models as models;
pub use overlap_numerics as numerics;
pub use overlap_sharding as sharding;
pub use overlap_sim as sim;
